//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this shim replaces serde's
//! serializer/deserializer architecture with a concrete [`Value`] tree: types
//! implement [`Serialize`] by producing a `Value` and [`Deserialize`] by reading
//! one back. The companion `serde_derive` shim generates both impls for plain
//! structs with named fields and for enums with unit variants — the only shapes
//! this workspace derives.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always stored as `f64`; integers are printed without a
    /// fractional part).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Extracts a string value.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }

    /// Extracts a number value.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(Error(format!("expected number, found {}", other.kind()))),
        }
    }

    /// Human-readable name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the serialization tree.
pub trait Serialize {
    /// Produces the value-tree representation of `self`.
    fn serialize(&self) -> Value;
}

/// Conversion back from the serialization tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_number {
    ($($ty:ty),*) => {
        $(
            impl Serialize for $ty {
                fn serialize(&self) -> Value {
                    Value::Number(*self as f64)
                }
            }

            impl Deserialize for $ty {
                fn deserialize(value: &Value) -> Result<Self, Error> {
                    Ok(value.as_f64()? as $ty)
                }
            }
        )*
    };
}

impl_number!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializing into `&'static str` requires giving the string a static
    /// lifetime; the shim leaks the (small, test-only) allocation, which upstream
    /// serde cannot express at all for owned input.
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(Box::leak(value.as_str()?.to_string().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize(&self) -> Value {
                    Value::Array(vec![$(self.$idx.serialize()),+])
                }
            }

            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn deserialize(value: &Value) -> Result<Self, Error> {
                    match value {
                        Value::Array(items) => {
                            let expected = [$($idx),+].len();
                            if items.len() != expected {
                                return Err(Error(format!(
                                    "expected {expected}-tuple, found array of {}",
                                    items.len()
                                )));
                            }
                            Ok(($($name::deserialize(&items[$idx])?,)+))
                        }
                        other => Err(Error(format!("expected array, found {}", other.kind()))),
                    }
                }
            }
        )*
    };
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));
