//! Offline stand-in for the `serde_json` crate: serializes the serde shim's
//! [`Value`] tree to JSON text, parses JSON text back, and provides the [`json!`]
//! constructor macro.

pub use serde::{Error, Value};

/// Converts any serializable value into a [`Value`] tree (used by [`json!`]).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy behaviour.
        "null".to_string()
    }
}

fn write_value(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_inner);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                out.push_str(&pad_inner);
                escape_into(key, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes a value as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), 0, &mut out);
    Ok(out)
}

/// Serializes a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // The pretty printer is the only writer; compact output just strips the
    // layout by re-walking the tree.
    fn compact(value: &Value, out: &mut String) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&number_to_string(*n)),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    compact(item, out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    compact(item, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    compact(&value.serialize(), &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.error("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    T::deserialize(&value)
}

/// Builds a [`Value`] from JSON-like syntax; values are arbitrary serializable
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_array_entries!(items; $($tt)*);
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut fields: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_entries!(fields; $($tt)*);
        $crate::Value::Object(fields)
    }};
    ($($expr:tt)+) => { $crate::to_value(&($($expr)+)) };
}

/// Internal: accumulates `key: value` pairs of a [`json!`] object.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($fields:ident;) => {};
    ($fields:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_object_entries!($fields; $($($rest)*)?);
    };
    ($fields:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_object_entries!($fields; $($($rest)*)?);
    };
    ($fields:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::Value::Null));
        $crate::json_object_entries!($fields; $($($rest)*)?);
    };
    ($fields:ident; $key:literal : $($rest:tt)*) => {
        $crate::json_object_value!($fields; $key; []; $($rest)*);
    };
}

/// Internal: munches one expression value up to a top-level comma.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_value {
    ($fields:ident; $key:literal; [$($acc:tt)*]; , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::to_value(&($($acc)*))));
        $crate::json_object_entries!($fields; $($rest)*);
    };
    ($fields:ident; $key:literal; [$($acc:tt)*];) => {
        $fields.push(($key.to_string(), $crate::to_value(&($($acc)*))));
    };
    ($fields:ident; $key:literal; [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($fields; $key; [$($acc)* $next]; $($rest)*);
    };
}

/// Internal: accumulates elements of a [`json!`] array.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_entries {
    ($items:ident;) => {};
    ($items:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_array_entries!($items; $($($rest)*)?);
    };
    ($items:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_array_entries!($items; $($($rest)*)?);
    };
    ($items:ident; null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_array_entries!($items; $($($rest)*)?);
    };
    ($items:ident; $($rest:tt)*) => {
        $crate::json_array_value!($items; []; $($rest)*);
    };
}

/// Internal: munches one array element up to a top-level comma.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_value {
    ($items:ident; [$($acc:tt)*]; , $($rest:tt)*) => {
        $items.push($crate::to_value(&($($acc)*)));
        $crate::json_array_entries!($items; $($rest)*);
    };
    ($items:ident; [$($acc:tt)*];) => {
        $items.push($crate::to_value(&($($acc)*)));
    };
    ($items:ident; [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_array_value!($items; [$($acc)* $next]; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::vec_init_then_push)]
    fn roundtrip_object() {
        let value = json!({
            "name": "cora",
            "nodes": 2485usize,
            "stats": { "homophily": 0.81, "ok": true, "missing": null },
            "list": [1.0, 2.0, 3.5],
        });
        let text = to_string_pretty(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&5usize).unwrap(), "5");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nbreak \"quoted\" \\slash\ttab".to_string();
        let text = to_string(&original).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn parses_nested_json() {
        let value: Value = from_str(r#"{"a": [1, {"b": "c"}], "d": -2.5e1}"#).unwrap();
        assert_eq!(value.get_field("d").unwrap().as_f64().unwrap(), -25.0);
    }
}
