//! Offline stand-in for the `rayon` crate.
//!
//! Provides the `par_iter().map(..).collect()` shape the workspace's hot loops
//! use, built on `std::thread::scope`. Work is split into one contiguous chunk
//! per available core; results are reassembled in input order, so a parallel map
//! is observably identical to its serial counterpart whenever the mapped
//! function is deterministic per item.

use std::marker::PhantomData;

/// Rayon-style import surface: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// The number of worker threads a parallel call will use for `len` items.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Order-preserving parallel map over a slice: one scoped thread per chunk.
fn par_map_chunks<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(f).collect();
    }
    let threads = current_num_threads().min(n);
    let chunk = n.div_ceil(threads);
    let mut per_chunk: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        per_chunk = handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect();
    });
    per_chunk.into_iter().flatten().collect()
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every item; the closure must be shareable across threads.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _result: PhantomData,
        }
    }

    /// Number of items the iterator will yield.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`], ready to collect.
pub struct ParMap<'a, T, R, F> {
    items: &'a [T],
    f: F,
    _result: PhantomData<fn() -> R>,
}

impl<'a, T, R, F> ParMap<'a, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_chunks(self.items, &self.f).into_iter().collect()
    }
}

/// Extension trait giving `&self`-based containers a `par_iter`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator borrowing the container's items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.5).collect();
        let serial: Vec<f64> = items.iter().map(|x| x.sin().exp()).collect();
        let parallel: Vec<f64> = items.par_iter().map(|x| x.sin().exp()).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7usize];
        let out: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
