//! Offline stand-in for the `rayon` crate.
//!
//! Provides the `par_iter().map(..).collect()` shape the workspace's hot loops
//! use, built on `std::thread::scope`. Scheduling is a **self-scheduling work
//! queue**: workers repeatedly claim the next unprocessed index from a shared
//! atomic counter, so a handful of expensive items (a high-degree victim, a
//! slow sweep cell) no longer idles the workers that drew cheap chunks under
//! the previous static chunking. Results are reassembled in input order, so a
//! parallel map is observably identical to its serial counterpart whenever the
//! mapped function is deterministic per item.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rayon-style import surface: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// The number of worker threads a parallel call will use for `len` items.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Order-preserving parallel map over a slice, scheduled through a shared
/// atomic work queue: each worker claims the next index with `fetch_add` until
/// the queue drains, then the `(index, result)` pairs are merged back into
/// input order. Skewed per-item costs therefore balance themselves — a worker
/// that drew a cheap item immediately claims another one instead of waiting
/// for the slowest static chunk.
fn par_map_queue<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(f).collect();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        per_worker = handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect();
    });
    let mut indexed: Vec<(usize, R)> = per_worker.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every item; the closure must be shareable across threads.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _result: PhantomData,
        }
    }

    /// Number of items the iterator will yield.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`], ready to collect.
pub struct ParMap<'a, T, R, F> {
    items: &'a [T],
    f: F,
    _result: PhantomData<fn() -> R>,
}

impl<'a, T, R, F> ParMap<'a, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_queue(self.items, &self.f).into_iter().collect()
    }
}

/// Extension trait giving `&self`-based containers a `par_iter`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator borrowing the container's items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.5).collect();
        let serial: Vec<f64> = items.iter().map(|x| x.sin().exp()).collect();
        let parallel: Vec<f64> = items.par_iter().map(|x| x.sin().exp()).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn skewed_item_costs_preserve_input_order() {
        // The work queue assigns items dynamically; heavily skewed costs must
        // not leak scheduling order into the output.
        let items: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                if x % 13 == 0 {
                    // A few items are ~orders of magnitude more expensive.
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
                x * x
            })
            .collect();
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7usize];
        let out: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
