//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 block cipher as a deterministic PRNG under the
//! upstream type name [`ChaCha8Rng`]. Output is deterministic per seed but not
//! bit-compatible with upstream `rand_chacha` (which the workspace never relies
//! on — only self-consistency across runs and threads matters).

use rand::{split_mix_64, RngCore, SeedableRng};

/// The ChaCha8-based pseudo-random generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key expanded from the seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k" — the standard ChaCha constant words.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // One double round: column round + diagonal round (8 rounds total).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = split_mix_64(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds overlap too much");
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|&f| (0.0..1.0).contains(&f)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
