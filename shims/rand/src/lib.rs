//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this shim
//! provides exactly the subset of the `rand 0.8` API the workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic for a given seed but
//! are not bit-compatible with upstream `rand`.

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform random `usize` in `[0, bound)`. Usable through `?Sized` borrows,
/// unlike the generic [`Rng::gen_range`].
fn index_below<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    debug_assert!(bound > 0);
    (rng.next_u64() % bound as u64) as usize
}

/// A uniform random `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + index_below(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// The user-facing random-value API, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (upstream expands the seed with
    /// SplitMix64; this shim does the same).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod seq {
    //! Sequence-related randomness: in-place shuffling.

    use super::{index_below, Rng};

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index_below(rng, i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// SplitMix64 step, shared with `rand_chacha`'s seed expansion.
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(0);
        for _ in 0..100 {
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = Step(u64::MAX - 50);
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Step(7);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
