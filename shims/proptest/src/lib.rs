//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: range strategies,
//! tuple strategies, `collection::vec`, `prop_map`, the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a seed derived from the test
//! name, so failures reproduce deterministically. There is no shrinking: the
//! failing input is printed as generated.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The per-case RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// How a property-test case ends early.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property failed; the test panics with this message.
    Fail(String),
    /// `prop_assume!` rejected the input; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// Builds a rejection.
    pub fn reject(message: String) -> Self {
        TestCaseError::Reject(message)
    }
}

/// Configuration of one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl Config {
    /// A config running `cases` cases (upstream `ProptestConfig::with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy!((A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// A strategy producing one fixed value (upstream `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification of a generated collection: fixed or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 >= self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a hash of the test name; the per-test RNG seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `case` until `config.cases` accepted executions, panicking on failure.
pub fn run_cases(name: &str, config: Config, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let mut rng = TestRng::seed_from_u64(seed_from_name(name));
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64) * 64;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!("{name}: too many prop_assume! rejections ({rejected}) for {accepted} accepted cases");
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{name}: property failed after {accepted} cases: {message}");
            }
        }
    }
}

pub mod prelude {
    //! The upstream-compatible glob import: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestCaseError};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config); $($rest)*);
    };
    (@with_config ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::Config = $config;
                $crate::run_cases(stringify!($name), config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)*
                    let case = move || -> std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property test, reporting the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case when its generated input does not satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in -2.0f64..2.0, n in 0usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(n < 10);
        }

        #[test]
        fn vec_and_map_compose(v in collection::vec((0usize..5, 0usize..5), 1..8).prop_map(|pairs| {
            pairs.into_iter().map(|(a, b)| a + b).collect::<Vec<_>>()
        })) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&s| s <= 8));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        crate::run_cases("failures_panic", crate::Config::with_cases(8), |_rng| {
            Err(crate::TestCaseError::fail("forced".to_string()))
        });
    }
}
