//! Offline stand-in for `serde_derive`.
//!
//! With no registry access there is no `syn`/`quote`, so these derive macros
//! parse the item with the bare `proc_macro` API and emit the generated impls by
//! formatting Rust source and re-parsing it. Supported shapes (the only ones the
//! workspace derives):
//!
//! * structs with named fields (serialized as a JSON object in field order);
//! * enums whose variants are all unit variants (serialized as the variant name).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed item.
enum Item {
    /// Struct name plus named fields in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum name plus unit-variant names in declaration order.
    Enum { name: String, variants: Vec<String> },
}

/// Consumes leading outer attributes (`#[...]`, including doc comments).
fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> usize {
    while pos + 1 < tokens.len() {
        match (&tokens[pos], &tokens[pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g)) if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket => {
                pos += 2;
            }
            _ => break,
        }
    }
    pos
}

/// Consumes an optional visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(pos) {
        if ident.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

fn ident_at(tokens: &[TokenTree], pos: usize) -> Option<String> {
    match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => Some(ident.to_string()),
        _ => None,
    }
}

/// Splits a brace-group body into named fields: `attrs* vis? name : type ,`.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        pos = skip_attributes(body, pos);
        pos = skip_visibility(body, pos);
        if pos >= body.len() {
            break;
        }
        let name =
            ident_at(body, pos).ok_or_else(|| format!("expected field name, found {:?}", body[pos].to_string()))?;
        pos += 1;
        match body.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        // Parens/brackets/braces arrive as single groups, so only `<`/`>` need
        // explicit depth tracking.
        let mut angle_depth = 0usize;
        while pos < body.len() {
            match &body[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Splits a brace-group body into unit variants: `attrs* name ,`.
fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        pos = skip_attributes(body, pos);
        if pos >= body.len() {
            break;
        }
        let name =
            ident_at(body, pos).ok_or_else(|| format!("expected variant name, found {:?}", body[pos].to_string()))?;
        pos += 1;
        match body.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(other) => {
                return Err(format!(
                    "variant `{name}` is not a unit variant (found {:?}); the serde shim only derives unit enums",
                    other.to_string()
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_attributes(&tokens, 0);
    pos = skip_visibility(&tokens, pos);
    let keyword = ident_at(&tokens, pos).ok_or("expected `struct` or `enum`")?;
    pos += 1;
    let name = ident_at(&tokens, pos).ok_or("expected type name")?;
    pos += 1;
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream().into_iter().collect::<Vec<_>>(),
        _ => {
            return Err(format!(
                "the serde shim can only derive braced items without generics; `{name}` is not one"
            ))
        }
    };
    match keyword.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(&body)?,
        }),
        other => Err(format!("cannot derive serde impls for `{other}` items")),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Derives the shim's `serde::Serialize` for named-field structs and unit enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("fields.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants.iter().map(|v| format!("{name}::{v} => {v:?},\n")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the shim's `serde::Deserialize` for named-field structs and unit enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(value.get_field({f:?})?)?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value.as_str()? {{\n\
                             {arms}\
                             other => Err(::serde::Error(format!(\n\
                                 \"unknown {name} variant `{{other}}`\"\n\
                             ))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
