//! The opt-in single-precision training loop behind [`Precision::F32`].
//!
//! Same model, same Adam, same early-stopping schedule as [`crate::train`] —
//! but the whole per-epoch compute (forward, backward, optimizer state) runs at
//! `f32` through [`geattack_tensor::fp32`], halving the memory bandwidth the
//! epoch loop is bound by. The tape engine is f64-only, so this path is a
//! hand-written forward/backward for the fixed 2-layer GCN architecture; the
//! fitted parameters of the best validation epoch are widened back to f64, so
//! everything downstream (attacks, explainers, reports) is unchanged in shape.
//!
//! No bit-identity claim: f32 results track the f64 path only approximately and
//! are excluded from the report-identity contract (see [`Precision`]).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::{DataSplit, Graph};
use geattack_tensor::{MatrixF32, SparseMatrixF32};

use crate::gcn::{Gcn, GcnParams};
use crate::train::{EpochStats, Precision, TrainConfig, TrainedGcn};

/// Adam at f32, mirroring [`geattack_tensor::Adam`] update-for-update.
struct AdamF32 {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: i32,
    m: Vec<MatrixF32>,
    v: Vec<MatrixF32>,
}

impl AdamF32 {
    fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn step(&mut self, params: &mut [MatrixF32], grads: &[MatrixF32]) {
        assert_eq!(params.len(), grads.len(), "adam: param/grad count mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| MatrixF32::zeros(p.rows(), p.cols())).collect();
            self.v = params.iter().map(|p| MatrixF32::zeros(p.rows(), p.cols())).collect();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            assert_eq!(p.shape(), g.shape(), "adam: shape mismatch");
            for i in 0..p.as_slice().len() {
                let gv = g.as_slice()[i] + self.weight_decay * p.as_slice()[i];
                let mv = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gv;
                let vv = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gv * gv;
                m.as_mut_slice()[i] = mv;
                v.as_mut_slice()[i] = vv;
                let m_hat = mv / b1t;
                let v_hat = vv / b2t;
                p.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Sum over rows, producing a `1 x cols` row (bias gradients).
fn colsum(m: &MatrixF32) -> MatrixF32 {
    let mut out = MatrixF32::zeros(1, m.cols());
    for i in 0..m.rows() {
        for (o, &v) in out.row_mut(0).iter_mut().zip(m.row(i)) {
            *o += v;
        }
    }
    out
}

/// Adds a `1 x cols` bias row to every row of `m` in place.
fn add_row_broadcast(m: &mut MatrixF32, bias: &MatrixF32) {
    for i in 0..m.rows() {
        for (o, &b) in m.row_mut(i).iter_mut().zip(bias.row(0)) {
            *o += b;
        }
    }
}

/// In-place row-wise log-softmax with the usual max shift.
fn log_softmax_rows_inplace(m: &mut MatrixF32) {
    for i in 0..m.rows() {
        let row = m.row_mut(i);
        let mx = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v -= mx;
            sum += v.exp();
        }
        let ln = sum.ln();
        for v in row.iter_mut() {
            *v -= ln;
        }
    }
}

/// Masked mean negative log-likelihood over `nodes`.
fn masked_nll(log_probs: &MatrixF32, nodes: &[usize], labels: &[usize]) -> f32 {
    let mut s = 0.0f32;
    for (&i, &y) in nodes.iter().zip(labels) {
        s -= log_probs.row(i)[y];
    }
    s / nodes.len() as f32
}

pub(crate) fn train_f32(graph: &Graph, split: &DataSplit, config: &TrainConfig) -> TrainedGcn {
    assert!(!split.train.is_empty(), "training split is empty");
    debug_assert_eq!(config.precision, Precision::F32);
    let _span = geattack_telemetry::span_labeled(
        geattack_telemetry::Level::Phase,
        "gnn.train.f32",
        format!("n={} epochs<={}", graph.num_nodes(), config.epochs),
    );
    // Same seeded init as the f64 path, then narrowed once.
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let model = Gcn::new(graph.num_features(), config.hidden, graph.num_classes(), &mut rng);
    let mut params: Vec<MatrixF32> = model.params().to_vec().iter().map(MatrixF32::from_f64).collect();
    let mut optimizer = AdamF32::new(config.lr as f32, config.weight_decay as f32);

    let a64 = geattack_graph::normalized_adjacency_csr(graph).matrix;
    let a = SparseMatrixF32::from_f64(&a64);
    // Ã is symmetric, but the backward pass is written against the transpose so
    // the loop stays correct if an asymmetric normalization ever lands.
    let at = SparseMatrixF32::from_f64(&a64.transpose());
    let x = MatrixF32::from_f64(graph.features());
    let xt = x.transpose();

    let train_labels: Vec<usize> = split.train.iter().map(|&i| graph.label(i)).collect();
    let val_labels: Vec<usize> = split.val.iter().map(|&i| graph.label(i)).collect();
    let n = graph.num_nodes();
    let c = graph.num_classes();

    let mut history = Vec::with_capacity(config.epochs);
    let mut best_val = f64::INFINITY;
    let mut best_params = params.clone();
    let mut epochs_since_best = 0usize;

    for epoch in 0..config.epochs {
        let _epoch_span =
            geattack_telemetry::span_labeled(geattack_telemetry::Level::Detail, "gnn.epoch.f32", epoch.to_string());
        let (w1, b1, w2, b2) = (&params[0], &params[1], &params[2], &params[3]);

        // Forward: Z = Ã·relu(Ã·X·W₁ + b₁)·W₂ + b₂, then row log-softmax.
        let xw = x.matmul(w1);
        let mut p1 = a.spmm(&xw);
        add_row_broadcast(&mut p1, b1);
        let mut h = p1.clone();
        for v in h.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let hw = h.matmul(w2);
        let mut z = a.spmm(&hw);
        add_row_broadcast(&mut z, b2);
        let mut log_probs = z;
        log_softmax_rows_inplace(&mut log_probs);

        let train_loss_value = masked_nll(&log_probs, &split.train, &train_labels) as f64;
        let val_loss = if split.val.is_empty() {
            train_loss_value
        } else {
            masked_nll(&log_probs, &split.val, &val_labels) as f64
        };

        // Backward. dZ = (softmax(Z) - onehot(y)) / m on train rows, 0 elsewhere.
        let mut dz = MatrixF32::zeros(n, c);
        let inv_m = 1.0 / split.train.len() as f32;
        for (&i, &y) in split.train.iter().zip(&train_labels) {
            let lp = log_probs.row(i);
            let dr = dz.row_mut(i);
            for (cc, d) in dr.iter_mut().enumerate() {
                *d = (lp[cc].exp() - if cc == y { 1.0 } else { 0.0 }) * inv_m;
            }
        }
        let db2 = colsum(&dz);
        let dhw = at.spmm(&dz);
        let dw2 = h.transpose().matmul(&dhw);
        let mut dp1 = dhw.matmul(&w2.transpose());
        for (d, &pre) in dp1.as_mut_slice().iter_mut().zip(p1.as_slice()) {
            if pre <= 0.0 {
                *d = 0.0;
            }
        }
        let db1 = colsum(&dp1);
        let dxw = at.spmm(&dp1);
        let dw1 = xt.matmul(&dxw);

        optimizer.step(&mut params, &[dw1, db1, dw2, db2]);

        history.push(EpochStats {
            epoch,
            train_loss: train_loss_value,
            val_loss,
        });

        if val_loss < best_val - 1e-6 {
            best_val = val_loss;
            best_params = params.clone();
            epochs_since_best = 0;
        } else {
            epochs_since_best += 1;
            if let Some(p) = config.patience {
                if epochs_since_best >= p {
                    break;
                }
            }
        }
    }

    let fitted = GcnParams::from_vec(best_params.iter().map(MatrixF32::to_f64).collect());
    TrainedGcn {
        model: Gcn::from_params(fitted),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;
    use crate::train::train;
    use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
    use geattack_graph::stratified_split;

    fn f32_config(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            patience: None,
            precision: Precision::F32,
            ..Default::default()
        }
    }

    #[test]
    fn f32_training_reduces_loss_and_stays_finite() {
        let cfg = GeneratorConfig::at_scale(0.08, 1);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(&graph, &split, &f32_config(60));
        let first = trained.history.first().unwrap().train_loss;
        let last = trained.history.last().unwrap().train_loss;
        assert!(
            last < first * 0.7,
            "f32 training loss did not decrease: {first} -> {last}"
        );
        for p in trained.model.params().to_vec() {
            assert!(!p.has_non_finite(), "f32-trained parameters must be finite");
        }
        // Widened parameters keep the f64 shapes.
        assert_eq!(trained.model.params().w1.shape(), (graph.num_features(), 16));
        assert_eq!(trained.model.params().w2.shape(), (16, graph.num_classes()));
    }

    #[test]
    fn f32_training_tracks_f64_accuracy() {
        let cfg = GeneratorConfig::at_scale(0.1, 2);
        let graph = load(DatasetName::Citeseer, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let f64_trained = train(&graph, &split, &TrainConfig::default());
        let f32_trained = train(
            &graph,
            &split,
            &TrainConfig {
                precision: Precision::F32,
                ..Default::default()
            },
        );
        let acc64 = accuracy(&f64_trained.model, &graph, &split.test);
        let acc32 = accuracy(&f32_trained.model, &graph, &split.test);
        assert!(
            acc32 > acc64 - 0.1,
            "f32 accuracy {acc32:.3} fell far below f64 accuracy {acc64:.3}"
        );
    }

    #[test]
    fn f32_early_stopping_still_triggers() {
        let cfg = GeneratorConfig::at_scale(0.08, 5);
        let graph = load(DatasetName::Acm, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(
            &graph,
            &split,
            &TrainConfig {
                epochs: 500,
                patience: Some(5),
                precision: Precision::F32,
                ..Default::default()
            },
        );
        assert!(trained.history.len() < 500, "early stopping never triggered at f32");
    }
}
