//! # geattack-gnn
//!
//! Graph convolutional network models, training and evaluation for the GEAttack
//! reproduction: the differentiable two-layer GCN that is attacked ([`gcn`]), its
//! training loop ([`train`]), evaluation helpers ([`eval`]) and the linearized
//! surrogate model used by the Nettack baseline ([`surrogate`]).

pub mod batched;
pub mod eval;
pub mod gcn;
pub mod surrogate;
pub mod train;
mod train_f32;

pub use batched::BatchedForward;
pub use eval::{accuracy, node_predictions, predicted_class, NodePrediction};
pub use gcn::{Gcn, GcnParamVars, GcnParams};
pub use surrogate::{Surrogate, SurrogateConfig};
pub use train::{train, train_dense_oracle, train_sparse, EpochStats, Precision, TrainConfig, TrainedGcn};
