//! The linearized surrogate GCN used by Nettack.
//!
//! Nettack (Zügner et al., KDD 2018) attacks a *surrogate* model
//! `Z = softmax(Ã² X W)` — a two-layer GCN with the non-linearity removed — because
//! the surrogate's logits are linear in the adjacency entries, which makes scoring
//! candidate edge flips cheap. This module trains that surrogate on the clean graph.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::{DataSplit, Graph};
use geattack_tensor::{grad::grad_values, init, nn, Adam, Matrix, Optimizer, SparseMatrix, Tape};

/// Hyper-parameters for surrogate training.
#[derive(Clone, Debug)]
pub struct SurrogateConfig {
    /// Number of Adam epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Weight decay.
    pub weight_decay: f64,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            lr: 0.01,
            weight_decay: 5e-4,
            seed: 0,
        }
    }
}

/// A trained linearized GCN surrogate `Z = Ã² X W`.
#[derive(Clone, Debug)]
pub struct Surrogate {
    /// Combined weight matrix (`d x C`).
    pub w: Matrix,
}

/// `Ã·(Ã·X)` for a raw 0/1 adjacency in CSR form — the surrogate's propagated
/// features without ever materializing the dense two-hop matrix.
fn two_hop_features(raw_adjacency: &SparseMatrix, features: &Matrix) -> Matrix {
    let a_norm = geattack_graph::normalize_sparse(raw_adjacency).matrix;
    a_norm.spmm(&a_norm.spmm(features))
}

impl Surrogate {
    /// Trains the surrogate on the labelled nodes of `split`.
    pub fn train(graph: &Graph, split: &DataSplit, config: &SurrogateConfig) -> Self {
        assert!(!split.train.is_empty(), "training split is empty");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut w = init::glorot_uniform(graph.num_features(), graph.num_classes(), &mut rng);
        let mut optimizer = Adam::new(config.lr).with_weight_decay(config.weight_decay);

        // Two-hop propagation as Ã·(Ã·X): two SpMMs at O(nnz·d) instead of the
        // dense Ã² materialization at O(n·nnz + n²·d).
        let a2x = two_hop_features(&graph.csr().to_sparse(), graph.features());
        let labels: Vec<usize> = split.train.iter().map(|&i| graph.label(i)).collect();

        for _ in 0..config.epochs {
            let tape = Tape::new();
            let a2x_v = tape.constant(a2x.clone());
            let w_v = tape.input(w.clone());
            let logits = tape.matmul(a2x_v, w_v);
            let log_probs = nn::log_softmax_rows(&tape, logits);
            let loss = nn::masked_nll(&tape, log_probs, &split.train, &labels, graph.num_classes());
            let grads = grad_values(&tape, loss, &[w_v]);
            let mut params = vec![w];
            optimizer.step(&mut params, &grads);
            w = params.pop().unwrap();
        }
        Self { w }
    }

    /// Surrogate logits `Ã² X W` for an arbitrary (possibly perturbed) raw
    /// sparse adjacency, computed as `Ã·(Ã·(X W))` on the sparse core.
    pub fn logits(&self, raw_adjacency: &SparseMatrix, features: &Matrix) -> Matrix {
        let a_norm = geattack_graph::normalize_sparse(raw_adjacency).matrix;
        let xw = features.matmul(&self.w);
        a_norm.spmm(&a_norm.spmm(&xw))
    }

    /// `X W` — precomputable part of the surrogate logits, useful when scoring many
    /// candidate perturbations of the same graph.
    pub fn xw(&self, features: &Matrix) -> Matrix {
        features.matmul(&self.w)
    }

    /// Surrogate accuracy on a node set (sanity check that the surrogate is a
    /// reasonable stand-in for the real GCN).
    pub fn accuracy(&self, graph: &Graph, nodes: &[usize]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        let logits = self.logits(&graph.csr().to_sparse(), graph.features());
        let correct = nodes
            .iter()
            .filter(|&&i| logits.argmax_row(i) == graph.label(i))
            .count();
        correct as f64 / nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
    use geattack_graph::stratified_split;

    #[test]
    fn surrogate_learns_synthetic_dataset() {
        let cfg = GeneratorConfig::at_scale(0.08, 2);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let surrogate = Surrogate::train(&graph, &split, &SurrogateConfig::default());
        let acc = surrogate.accuracy(&graph, &split.test);
        let chance = 1.0 / graph.num_classes() as f64;
        assert!(acc > chance + 0.15, "surrogate accuracy {acc:.3} too close to chance");
    }

    #[test]
    fn logits_shape_and_determinism() {
        let cfg = GeneratorConfig::at_scale(0.06, 3);
        let graph = load(DatasetName::Citeseer, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let config = SurrogateConfig {
            epochs: 30,
            ..Default::default()
        };
        let a = Surrogate::train(&graph, &split, &config);
        let b = Surrogate::train(&graph, &split, &config);
        assert!(a.w.approx_eq(&b.w, 0.0), "surrogate training must be deterministic");
        let logits = a.logits(&graph.csr().to_sparse(), graph.features());
        assert_eq!(logits.shape(), (graph.num_nodes(), graph.num_classes()));
    }

    #[test]
    fn adding_edge_changes_target_logits() {
        let cfg = GeneratorConfig::at_scale(0.06, 4);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let surrogate = Surrogate::train(
            &graph,
            &split,
            &SurrogateConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        let base = surrogate.logits(&graph.csr().to_sparse(), graph.features());
        // Add an edge incident to node 0 and confirm its logits move.
        let mut perturbed = graph.clone();
        let other = (0..graph.num_nodes())
            .find(|&j| j != 0 && !graph.has_edge(0, j))
            .unwrap();
        perturbed.add_edge(0, other);
        let after = surrogate.logits(&perturbed.csr().to_sparse(), perturbed.features());
        let delta: f64 = base.row(0).iter().zip(after.row(0)).map(|(a, b)| (a - b).abs()).sum();
        assert!(delta > 1e-9, "surrogate logits must respond to adjacency edits");
    }
}
