//! Evaluation utilities: accuracy, prediction margins and per-node predictions.

use geattack_graph::Graph;
use geattack_tensor::Matrix;

use crate::gcn::Gcn;

/// Classification accuracy of `model` on the listed nodes.
pub fn accuracy(model: &Gcn, graph: &Graph, nodes: &[usize]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let predictions = model.predict_labels(graph);
    let correct = nodes.iter().filter(|&&i| predictions[i] == graph.label(i)).count();
    correct as f64 / nodes.len() as f64
}

/// Per-node prediction record used for victim selection and attack evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodePrediction {
    /// Node id.
    pub node: usize,
    /// Predicted class.
    pub predicted: usize,
    /// Ground-truth class.
    pub label: usize,
    /// Probability assigned to the ground-truth class.
    pub true_class_prob: f64,
    /// Classification margin: probability of the true class minus the largest
    /// probability among the other classes. Positive means correctly classified
    /// with confidence; the paper selects victims with the 10 highest and 10 lowest
    /// margins plus random nodes.
    pub margin: f64,
}

/// Computes [`NodePrediction`]s for the listed nodes.
pub fn node_predictions(model: &Gcn, graph: &Graph, nodes: &[usize]) -> Vec<NodePrediction> {
    let probs = model.predict_proba(graph);
    nodes.iter().map(|&i| prediction_from_probs(&probs, graph, i)).collect()
}

/// Computes a single node's prediction record from a precomputed probability matrix.
pub fn prediction_from_probs(probs: &Matrix, graph: &Graph, node: usize) -> NodePrediction {
    let label = graph.label(node);
    let row = probs.row(node);
    let predicted = probs.argmax_row(node);
    let true_class_prob = row[label];
    let best_other = row
        .iter()
        .enumerate()
        .filter(|&(c, _)| c != label)
        .map(|(_, &p)| p)
        .fold(f64::NEG_INFINITY, f64::max);
    NodePrediction {
        node,
        predicted,
        label,
        true_class_prob,
        margin: true_class_prob - best_other,
    }
}

/// Predicted class of a single node (convenience wrapper).
pub fn predicted_class(model: &Gcn, graph: &Graph, node: usize) -> usize {
    model.predict_proba(graph).argmax_row(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_graph() -> Graph {
        let mut adj = Matrix::zeros(4, 4);
        for &(u, v) in &[(0usize, 1usize), (2, 3)] {
            adj[(u, v)] = 1.0;
            adj[(v, u)] = 1.0;
        }
        let feats = Matrix::from_fn(4, 2, |i, j| if (i < 2) == (j == 0) { 1.0 } else { 0.0 });
        Graph::new(adj, feats, vec![0, 0, 1, 1], 2)
    }

    #[test]
    fn accuracy_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = toy_graph();
        let gcn = Gcn::new(2, 4, 2, &mut rng);
        let acc = accuracy(&gcn, &g, &[0, 1, 2, 3]);
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(accuracy(&gcn, &g, &[]), 0.0);
    }

    #[test]
    fn margin_sign_matches_correctness() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = toy_graph();
        let gcn = Gcn::new(2, 4, 2, &mut rng);
        for p in node_predictions(&gcn, &g, &[0, 1, 2, 3]) {
            if p.predicted == p.label {
                assert!(p.margin >= 0.0, "correct prediction must have non-negative margin");
            } else {
                assert!(p.margin <= 0.0, "wrong prediction must have non-positive margin");
            }
            assert!((0.0..=1.0).contains(&p.true_class_prob));
        }
    }

    #[test]
    fn predicted_class_consistent_with_predictions() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = toy_graph();
        let gcn = Gcn::new(2, 4, 2, &mut rng);
        let preds = node_predictions(&gcn, &g, &[2]);
        assert_eq!(preds[0].predicted, predicted_class(&gcn, &g, 2));
    }
}
