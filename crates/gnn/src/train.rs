//! Full-batch GCN training with validation-based early stopping.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::{DataSplit, Graph};
use geattack_tensor::{grad::grad_values, nn, Adam, Matrix, Optimizer, SparseMatrix, Tape, Var};

use crate::gcn::{Gcn, GcnParamVars, GcnParams};

/// Floating-point precision of the training arithmetic.
///
/// [`Precision::F64`] (the default) is the repo's report-grade path: every
/// value is pinned bit-for-bit against the dense oracle. [`Precision::F32`] is
/// the opt-in bandwidth-saving path — same architecture, optimizer and
/// early-stopping schedule run through the `f32` kernels
/// ([`geattack_tensor::fp32`]), with the fitted parameters widened back to f64.
/// It carries **no** bit-identity guarantee and is excluded from the
/// report-identity contract; pick it for throughput, not for reproduction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Double precision (default; byte-exact report path).
    #[default]
    F64,
    /// Single precision (opt-in; ~2× lower memory bandwidth per epoch).
    F32,
}

/// Hyper-parameters for GCN training (defaults follow the DeepRobust/Kipf setup
/// the paper builds on: 16 hidden units, Adam with lr 0.01, weight decay 5e-4,
/// 200 epochs with early stopping).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Early-stopping patience measured in epochs without validation improvement
    /// (`None` disables early stopping).
    pub patience: Option<usize>,
    /// RNG seed for parameter initialization.
    pub seed: u64,
    /// Arithmetic precision of the training loop (f64 unless opted out).
    pub precision: Precision,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 200,
            lr: 0.01,
            weight_decay: 5e-4,
            patience: Some(30),
            seed: 0,
            precision: Precision::F64,
        }
    }
}

/// Per-epoch record of the training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Training cross-entropy.
    pub train_loss: f64,
    /// Validation cross-entropy.
    pub val_loss: f64,
}

/// Result of [`train`]: the fitted model plus its loss history.
#[derive(Clone, Debug)]
pub struct TrainedGcn {
    /// The trained model (parameters of the best validation epoch).
    pub model: Gcn,
    /// Loss curve over epochs actually run.
    pub history: Vec<EpochStats>,
}

/// How the full-graph normalized adjacency enters the per-epoch tape. The two
/// representations are bit-identical in every value they produce (the SpMM
/// kernel replays the dense matmul's exact accumulation order), so the choice is
/// purely a cost decision: O(nnz·f) against O(n²·f) per layer.
enum AdjacencyRepr {
    Sparse(SparseMatrix),
    Dense(Matrix),
}

impl AdjacencyRepr {
    fn log_probs(&self, tape: &Tape, model: &Gcn, x: Var, params: &GcnParamVars) -> Var {
        match self {
            AdjacencyRepr::Dense(m) => {
                let a_norm = tape.constant(m.clone());
                model.log_probs(tape, a_norm, x, params)
            }
            AdjacencyRepr::Sparse(s) => {
                let a_norm = tape.sparse_constant(s.clone());
                model.log_probs_sparse(tape, a_norm, x, params)
            }
        }
    }
}

/// Trains a two-layer GCN on `graph` using the labelled nodes in `split.train`,
/// early-stopping on `split.val`.
///
/// Training runs on the CSR SpMM core by default; the `dense-oracle` feature
/// flips the default to the dense adjacency (results are bit-identical, see
/// [`train_dense_oracle`]).
pub fn train(graph: &Graph, split: &DataSplit, config: &TrainConfig) -> TrainedGcn {
    if config.precision == Precision::F32 {
        return crate::train_f32::train_f32(graph, split, config);
    }
    #[cfg(feature = "dense-oracle")]
    let repr = AdjacencyRepr::Dense(geattack_graph::normalized_adjacency(graph));
    #[cfg(not(feature = "dense-oracle"))]
    let repr = AdjacencyRepr::Sparse(geattack_graph::normalized_adjacency_csr(graph).matrix);
    train_with_repr(graph, split, config, repr)
}

/// [`train`] forced onto the sparse path (equivalence tests; always f64 — the
/// f32 opt-in applies to [`train`] only).
pub fn train_sparse(graph: &Graph, split: &DataSplit, config: &TrainConfig) -> TrainedGcn {
    let repr = AdjacencyRepr::Sparse(geattack_graph::normalized_adjacency_csr(graph).matrix);
    train_with_repr(graph, split, config, repr)
}

/// [`train`] forced onto the dense path — the oracle the sparse path is pinned
/// against bit-for-bit.
pub fn train_dense_oracle(graph: &Graph, split: &DataSplit, config: &TrainConfig) -> TrainedGcn {
    let repr = AdjacencyRepr::Dense(geattack_graph::normalized_adjacency(graph));
    train_with_repr(graph, split, config, repr)
}

fn train_with_repr(graph: &Graph, split: &DataSplit, config: &TrainConfig, repr: AdjacencyRepr) -> TrainedGcn {
    assert!(!split.train.is_empty(), "training split is empty");
    let _span = geattack_telemetry::span_labeled(
        geattack_telemetry::Level::Phase,
        "gnn.train",
        format!("n={} epochs<={}", graph.num_nodes(), config.epochs),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut model = Gcn::new(graph.num_features(), config.hidden, graph.num_classes(), &mut rng);
    let mut optimizer = Adam::new(config.lr).with_weight_decay(config.weight_decay);

    let x_value = graph.features().clone();
    let train_labels: Vec<usize> = split.train.iter().map(|&i| graph.label(i)).collect();
    let val_labels: Vec<usize> = split.val.iter().map(|&i| graph.label(i)).collect();

    let mut history = Vec::with_capacity(config.epochs);
    let mut best_val = f64::INFINITY;
    let mut best_params = model.params().clone();
    let mut epochs_since_best = 0usize;

    for epoch in 0..config.epochs {
        let _epoch_span =
            geattack_telemetry::span_labeled(geattack_telemetry::Level::Detail, "gnn.epoch", epoch.to_string());
        let tape = Tape::new();
        let x = tape.constant(x_value.clone());
        let params = model.insert_params(&tape);
        let log_probs = repr.log_probs(&tape, &model, x, &params);
        let train_loss = nn::masked_nll(&tape, log_probs, &split.train, &train_labels, graph.num_classes());

        let val_loss = if split.val.is_empty() {
            tape.value(train_loss).scalar()
        } else {
            tape.value(nn::masked_nll(
                &tape,
                log_probs,
                &split.val,
                &val_labels,
                graph.num_classes(),
            ))
            .scalar()
        };
        let train_loss_value = tape.value(train_loss).scalar();

        let grads = grad_values(&tape, train_loss, &params.to_vec());
        let mut param_values: Vec<Matrix> = model.params().to_vec();
        optimizer.step(&mut param_values, &grads);
        model.set_params(GcnParams::from_vec(param_values));

        history.push(EpochStats {
            epoch,
            train_loss: train_loss_value,
            val_loss,
        });

        if val_loss < best_val - 1e-6 {
            best_val = val_loss;
            best_params = model.params().clone();
            epochs_since_best = 0;
        } else {
            epochs_since_best += 1;
            if let Some(p) = config.patience {
                if epochs_since_best >= p {
                    break;
                }
            }
        }
    }

    model.set_params(best_params);
    TrainedGcn { model, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;
    use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
    use geattack_graph::stratified_split;

    #[test]
    fn training_reduces_loss_on_toy_dataset() {
        let cfg = GeneratorConfig::at_scale(0.08, 1);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(
            &graph,
            &split,
            &TrainConfig {
                epochs: 60,
                patience: None,
                ..Default::default()
            },
        );
        let first = trained.history.first().unwrap().train_loss;
        let last = trained.history.last().unwrap().train_loss;
        assert!(last < first * 0.7, "training loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn trained_gcn_beats_chance_on_test_nodes() {
        let cfg = GeneratorConfig::at_scale(0.1, 2);
        let graph = load(DatasetName::Citeseer, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(&graph, &split, &TrainConfig::default());
        let acc = accuracy(&trained.model, &graph, &split.test);
        let chance = 1.0 / graph.num_classes() as f64;
        assert!(
            acc > chance + 0.2,
            "test accuracy {acc:.3} barely above chance {chance:.3}"
        );
    }

    #[test]
    fn early_stopping_limits_epochs() {
        let cfg = GeneratorConfig::at_scale(0.08, 5);
        let graph = load(DatasetName::Acm, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(
            &graph,
            &split,
            &TrainConfig {
                epochs: 500,
                patience: Some(5),
                ..Default::default()
            },
        );
        assert!(trained.history.len() < 500, "early stopping never triggered");
    }

    #[test]
    fn sparse_training_is_bit_identical_to_dense_oracle() {
        let cfg = GeneratorConfig::at_scale(0.06, 12);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let config = TrainConfig {
            epochs: 25,
            patience: Some(10),
            ..Default::default()
        };
        let sparse = train_sparse(&graph, &split, &config);
        let dense = train_dense_oracle(&graph, &split, &config);
        // Identical epoch count (identical early-stopping decisions), identical
        // loss curves and identical final parameters — to the bit.
        assert_eq!(sparse.history.len(), dense.history.len());
        for (a, b) in sparse.history.iter().zip(&dense.history) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            assert_eq!(a.val_loss.to_bits(), b.val_loss.to_bits());
        }
        for (a, b) in sparse.model.params().to_vec().iter().zip(dense.model.params().to_vec()) {
            assert!(a.approx_eq(&b, 0.0), "sparse and dense training diverged");
        }
    }

    #[test]
    fn training_is_deterministic_for_seed() {
        let cfg = GeneratorConfig::at_scale(0.06, 9);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let config = TrainConfig {
            epochs: 20,
            patience: None,
            ..Default::default()
        };
        let a = train(&graph, &split, &config);
        let b = train(&graph, &split, &config);
        assert!(a.model.params().w1.approx_eq(&b.model.params().w1, 0.0));
        assert_eq!(a.history.len(), b.history.len());
    }
}
