//! One shared forward pass serving every victim.
//!
//! The attack/evaluation loops repeatedly need, for one *fixed* (graph, weights)
//! pair, quantities that all fall out of a single GCN forward: class
//! probabilities per victim, hard predictions, and the first-layer embeddings
//! PGExplainer builds edge features from. Before this existed every consumer
//! called [`Gcn::predict_proba`] or [`Gcn::node_embeddings`] itself, re-running
//! the full `Ã·(X·W₁)` product per victim. [`BatchedForward`] runs the forward
//! **once**, sharing the first layer between the hidden and logit heads, and
//! serves all rows from the cached matrices.
//!
//! Bit-identity: the recorded op sequence per output is exactly the one the
//! single-purpose entry points replay, so [`BatchedForward::probs`] equals
//! [`Gcn::predict_proba`] and [`BatchedForward::hidden`] equals
//! [`Gcn::node_embeddings`] bit-for-bit (pinned by tests in both feature
//! configs). Routing a call site through a `BatchedForward` can therefore never
//! change a report byte — only how often the kernels run.

use geattack_graph::Graph;
use geattack_tensor::{nn, Matrix, Tape};

use crate::gcn::Gcn;

/// The cached result of one full-graph GCN forward pass.
#[derive(Clone, Debug)]
pub struct BatchedForward {
    hidden: Matrix,
    probs: Matrix,
}

impl BatchedForward {
    /// Runs the forward once for `(model, graph)` and caches both heads.
    pub fn new(model: &Gcn, graph: &Graph) -> Self {
        let _span = geattack_telemetry::span_labeled(
            geattack_telemetry::Level::Detail,
            "gnn.batched_forward",
            format!("n={}", graph.num_nodes()),
        );
        let tape = Tape::new();
        let x = tape.constant(graph.features().clone());
        let params = model.insert_params_frozen(&tape);
        let (hidden, logits) = model.graph_hidden_and_logits(&tape, graph, x, &params);
        let probs = nn::softmax_rows(&tape, logits);
        Self {
            hidden: tape.value(hidden),
            probs: tape.value(probs),
        }
    }

    /// First-layer embeddings `σ(Ã X W₁ + b₁)` (`n x hidden`); bit-identical to
    /// [`Gcn::node_embeddings`].
    pub fn hidden(&self) -> &Matrix {
        &self.hidden
    }

    /// Class probabilities (`n x C`); bit-identical to [`Gcn::predict_proba`].
    pub fn probs(&self) -> &Matrix {
        &self.probs
    }

    /// Probability row of one node.
    pub fn probs_row(&self, node: usize) -> &[f64] {
        self.probs.row(node)
    }

    /// Hard prediction for one node (argmax of its probability row).
    pub fn predicted_class(&self, node: usize) -> usize {
        self.probs.argmax_row(node)
    }

    /// Hard predictions for every node; bit-identical to [`Gcn::predict_labels`].
    pub fn predict_labels(&self) -> Vec<usize> {
        (0..self.probs.rows()).map(|i| self.probs.argmax_row(i)).collect()
    }

    /// Number of nodes the forward covered.
    pub fn num_nodes(&self) -> usize {
        self.probs.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_graph() -> Graph {
        let mut adj = Matrix::zeros(6, 6);
        for &(u, v) in &[(0usize, 1usize), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            adj[(u, v)] = 1.0;
            adj[(v, u)] = 1.0;
        }
        let feats = Matrix::from_fn(6, 4, |i, j| if (i < 3) == (j < 2) { 1.0 } else { 0.0 });
        Graph::new(adj, feats, vec![0, 0, 0, 1, 1, 1], 2)
    }

    #[test]
    fn batched_forward_is_bit_identical_to_per_call_forwards() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = toy_graph();
        let gcn = Gcn::new(4, 8, 2, &mut rng);
        let forward = BatchedForward::new(&gcn, &g);
        assert_eq!(forward.probs().as_slice(), gcn.predict_proba(&g).as_slice());
        assert_eq!(forward.hidden().as_slice(), gcn.node_embeddings(&g).as_slice());
        assert_eq!(forward.predict_labels(), gcn.predict_labels(&g));
        for i in 0..g.num_nodes() {
            assert_eq!(forward.predicted_class(i), gcn.predict_proba(&g).argmax_row(i));
        }
        assert_eq!(forward.num_nodes(), 6);
    }
}
