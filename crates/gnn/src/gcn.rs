//! The two-layer graph convolutional network used throughout the paper.
//!
//! `f_θ(A, X) = softmax( Ã · σ( Ã X W₁ + b₁ ) W₂ + b₂ )` with
//! `Ã = D^{-1/2}(A + I)D^{-1/2}` (Kipf & Welling, 2017). The forward pass is
//! expressed on a [`Tape`], so attacks can differentiate the output with respect to
//! the adjacency matrix, the explainer's edge mask, or both.

use rand::Rng;

use geattack_graph::Graph;
use geattack_tensor::{init, nn, Matrix, SparseVar, Tape, Var};

/// Trainable parameters of a two-layer GCN.
#[derive(Clone, Debug)]
pub struct GcnParams {
    /// First-layer weights (`in_features x hidden`).
    pub w1: Matrix,
    /// First-layer bias (`1 x hidden`).
    pub b1: Matrix,
    /// Second-layer weights (`hidden x n_classes`).
    pub w2: Matrix,
    /// Second-layer bias (`1 x n_classes`).
    pub b2: Matrix,
}

impl GcnParams {
    /// Glorot-initialized parameters.
    pub fn init(in_features: usize, hidden: usize, n_classes: usize, rng: &mut impl Rng) -> Self {
        Self {
            w1: init::glorot_uniform(in_features, hidden, rng),
            b1: Matrix::zeros(1, hidden),
            w2: init::glorot_uniform(hidden, n_classes, rng),
            b2: Matrix::zeros(1, n_classes),
        }
    }

    /// Parameters as a flat list (the order expected by [`GcnParams::from_vec`]).
    pub fn to_vec(&self) -> Vec<Matrix> {
        vec![self.w1.clone(), self.b1.clone(), self.w2.clone(), self.b2.clone()]
    }

    /// Rebuilds parameters from the flat list produced by [`GcnParams::to_vec`].
    pub fn from_vec(mut params: Vec<Matrix>) -> Self {
        assert_eq!(params.len(), 4, "expected 4 parameter matrices");
        let b2 = params.pop().unwrap();
        let w2 = params.pop().unwrap();
        let b1 = params.pop().unwrap();
        let w1 = params.pop().unwrap();
        Self { w1, b1, w2, b2 }
    }
}

/// Architecture description plus parameters of a two-layer GCN.
#[derive(Clone, Debug)]
pub struct Gcn {
    params: GcnParams,
    in_features: usize,
    hidden: usize,
    n_classes: usize,
}

/// Tape handles to one set of GCN parameters (used during training).
#[derive(Clone, Copy, Debug)]
pub struct GcnParamVars {
    /// First-layer weights.
    pub w1: Var,
    /// First-layer bias.
    pub b1: Var,
    /// Second-layer weights.
    pub w2: Var,
    /// Second-layer bias.
    pub b2: Var,
}

impl GcnParamVars {
    /// Handles as a flat list matching [`GcnParams::to_vec`].
    pub fn to_vec(&self) -> Vec<Var> {
        vec![self.w1, self.b1, self.w2, self.b2]
    }
}

impl Gcn {
    /// Creates a GCN with freshly initialized parameters.
    pub fn new(in_features: usize, hidden: usize, n_classes: usize, rng: &mut impl Rng) -> Self {
        assert!(hidden > 0 && n_classes > 1 && in_features > 0, "invalid GCN dimensions");
        Self {
            params: GcnParams::init(in_features, hidden, n_classes, rng),
            in_features,
            hidden,
            n_classes,
        }
    }

    /// Creates a GCN from existing parameters.
    pub fn from_params(params: GcnParams) -> Self {
        let in_features = params.w1.rows();
        let hidden = params.w1.cols();
        let n_classes = params.w2.cols();
        Self {
            params,
            in_features,
            hidden,
            n_classes,
        }
    }

    /// Input feature dimensionality.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Hidden dimensionality.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }

    /// Read access to the parameters.
    pub fn params(&self) -> &GcnParams {
        &self.params
    }

    /// Replaces the parameters (e.g. after an optimizer step).
    pub fn set_params(&mut self, params: GcnParams) {
        assert_eq!(params.w1.shape(), (self.in_features, self.hidden));
        assert_eq!(params.w2.shape(), (self.hidden, self.n_classes));
        self.params = params;
    }

    /// Records the parameters on `tape` as trainable inputs.
    pub fn insert_params(&self, tape: &Tape) -> GcnParamVars {
        GcnParamVars {
            w1: tape.input(self.params.w1.clone()),
            b1: tape.input(self.params.b1.clone()),
            w2: tape.input(self.params.w2.clone()),
            b2: tape.input(self.params.b2.clone()),
        }
    }

    /// Records the parameters on `tape` as constants (frozen model — the evasion
    /// attack setting of the paper).
    pub fn insert_params_frozen(&self, tape: &Tape) -> GcnParamVars {
        GcnParamVars {
            w1: tape.constant(self.params.w1.clone()),
            b1: tape.constant(self.params.b1.clone()),
            w2: tape.constant(self.params.w2.clone()),
            b2: tape.constant(self.params.b2.clone()),
        }
    }

    /// Differentiable forward pass producing logits (`n x C`), given an already
    /// normalized adjacency `a_norm` and features `x` recorded on `tape`.
    pub fn logits(&self, tape: &Tape, a_norm: Var, x: Var, params: &GcnParamVars) -> Var {
        let h = self.hidden_layer(tape, a_norm, x, params);
        let h2 = tape.matmul(a_norm, tape.matmul(h, params.w2));
        tape.add(h2, tape.row_broadcast(params.b2, h2.rows()))
    }

    /// Differentiable first-layer embeddings `σ(Ã X W₁ + b₁)` (`n x hidden`).
    pub fn hidden_layer(&self, tape: &Tape, a_norm: Var, x: Var, params: &GcnParamVars) -> Var {
        let xw = tape.matmul(x, params.w1);
        let axw = tape.matmul(a_norm, xw);
        let pre = tape.add(axw, tape.row_broadcast(params.b1, axw.rows()));
        tape.relu(pre)
    }

    /// Differentiable log-probabilities (`n x C`).
    pub fn log_probs(&self, tape: &Tape, a_norm: Var, x: Var, params: &GcnParamVars) -> Var {
        let logits = self.logits(tape, a_norm, x, params);
        nn::log_softmax_rows(tape, logits)
    }

    /// Differentiable forward pass that starts from a **raw** adjacency variable
    /// and performs the GCN normalization on the tape, so gradients with respect to
    /// raw edge insertions are available (used by FGA / IG-Attack / GEAttack).
    pub fn log_probs_from_raw_adj(&self, tape: &Tape, a_raw: Var, x: Var, params: &GcnParamVars) -> Var {
        let xw1 = tape.matmul(x, params.w1);
        self.log_probs_from_raw_adj_projected(tape, a_raw, xw1, params)
    }

    /// [`Gcn::log_probs_from_raw_adj`] with the first-layer feature projection
    /// `X·W₁` already computed. The projection depends on neither the adjacency
    /// nor any explainer mask, so optimization loops that rebuild the forward
    /// pass every epoch (GNNExplainer, PGExplainer, GEAttack's inner steps)
    /// hoist it out — the values (and the gradients with respect to the
    /// adjacency or mask) are bit-identical, only the redundant `k·d·h` matmul
    /// per epoch disappears.
    pub fn log_probs_from_raw_adj_projected(&self, tape: &Tape, a_raw: Var, xw1: Var, params: &GcnParamVars) -> Var {
        let a_norm = nn::gcn_normalize(tape, a_raw);
        let pre = tape.add(tape.matmul(a_norm, xw1), tape.row_broadcast(params.b1, a_norm.rows()));
        let h = tape.relu(pre);
        let h2 = tape.matmul(a_norm, tape.matmul(h, params.w2));
        let logits = tape.add(h2, tape.row_broadcast(params.b2, h2.rows()));
        nn::log_softmax_rows(tape, logits)
    }

    // ---- sparse forward paths ---------------------------------------------------
    //
    // The SpMM kernel replays the dense matmul's exact accumulation order, so the
    // `_sparse` variants below produce bit-identical values to their dense
    // counterparts while costing O(nnz·f) instead of O(n²·f) per layer.

    /// [`Gcn::logits`] with the normalized adjacency as a sparse operand.
    pub fn logits_sparse(&self, tape: &Tape, a_norm: SparseVar, x: Var, params: &GcnParamVars) -> Var {
        let h = self.hidden_layer_sparse(tape, a_norm, x, params);
        let h2 = tape.spmm(a_norm, tape.matmul(h, params.w2));
        tape.add(h2, tape.row_broadcast(params.b2, h2.rows()))
    }

    /// [`Gcn::hidden_layer`] with the normalized adjacency as a sparse operand.
    pub fn hidden_layer_sparse(&self, tape: &Tape, a_norm: SparseVar, x: Var, params: &GcnParamVars) -> Var {
        let xw = tape.matmul(x, params.w1);
        let axw = tape.spmm(a_norm, xw);
        let pre = tape.add(axw, tape.row_broadcast(params.b1, axw.rows()));
        tape.relu(pre)
    }

    /// [`Gcn::log_probs`] with the normalized adjacency as a sparse operand.
    pub fn log_probs_sparse(&self, tape: &Tape, a_norm: SparseVar, x: Var, params: &GcnParamVars) -> Var {
        let logits = self.logits_sparse(tape, a_norm, x, params);
        nn::log_softmax_rows(tape, logits)
    }

    /// [`Gcn::log_probs_sparse`] with the feature projection `X·W₁` supplied by
    /// the caller (it does not depend on the adjacency, so greedy attack loops
    /// compute it once and reuse it across every gradient call). Bit-identical
    /// to [`Gcn::log_probs_sparse`].
    pub fn log_probs_sparse_projected(&self, tape: &Tape, a_norm: SparseVar, xw1: Var, params: &GcnParamVars) -> Var {
        let axw = tape.spmm(a_norm, xw1);
        let pre = tape.add(axw, tape.row_broadcast(params.b1, axw.rows()));
        let h = tape.relu(pre);
        let h2 = tape.spmm(a_norm, tape.matmul(h, params.w2));
        let logits = tape.add(h2, tape.row_broadcast(params.b2, h2.rows()));
        nn::log_softmax_rows(tape, logits)
    }

    /// Class probabilities for every node of a concrete graph (no gradients).
    pub fn predict_proba(&self, graph: &Graph) -> Matrix {
        let tape = Tape::new();
        let x = tape.constant(graph.features().clone());
        let params = self.insert_params_frozen(&tape);
        let logits = self.graph_logits(&tape, graph, x, &params);
        let probs = nn::softmax_rows(&tape, logits);
        tape.value(probs)
    }

    /// Hard label predictions for every node of a concrete graph.
    pub fn predict_labels(&self, graph: &Graph) -> Vec<usize> {
        let probs = self.predict_proba(graph);
        (0..graph.num_nodes()).map(|i| probs.argmax_row(i)).collect()
    }

    /// First-layer node embeddings of a concrete graph (used by PGExplainer to
    /// build edge features).
    pub fn node_embeddings(&self, graph: &Graph) -> Matrix {
        let tape = Tape::new();
        let x = tape.constant(graph.features().clone());
        let params = self.insert_params_frozen(&tape);
        let h = self.graph_hidden(&tape, graph, x, &params);
        tape.value(h)
    }

    /// Full-graph logits through the compiled-in adjacency representation
    /// (sparse by default, dense under the `dense-oracle` feature — the two are
    /// bit-identical).
    fn graph_logits(&self, tape: &Tape, graph: &Graph, x: Var, params: &GcnParamVars) -> Var {
        #[cfg(feature = "dense-oracle")]
        {
            let a_norm = tape.constant(geattack_graph::normalized_adjacency(graph));
            self.logits(tape, a_norm, x, params)
        }
        #[cfg(not(feature = "dense-oracle"))]
        {
            let a_norm = tape.sparse_constant(geattack_graph::normalized_adjacency_csr(graph).matrix);
            self.logits_sparse(tape, a_norm, x, params)
        }
    }

    /// Full-graph hidden layer **and** logits off one shared first-layer product:
    /// the hidden activations `σ(Ã X W₁ + b₁)` are computed once and feed both
    /// return values, instead of [`Gcn::predict_proba`] and
    /// [`Gcn::node_embeddings`] each paying the first layer separately. The op
    /// sequence per output is identical to the single-purpose paths, so both
    /// values are bit-identical to them — this is what `BatchedForward` records.
    pub(crate) fn graph_hidden_and_logits(
        &self,
        tape: &Tape,
        graph: &Graph,
        x: Var,
        params: &GcnParamVars,
    ) -> (Var, Var) {
        #[cfg(feature = "dense-oracle")]
        {
            let a_norm = tape.constant(geattack_graph::normalized_adjacency(graph));
            let h = self.hidden_layer(tape, a_norm, x, params);
            let h2 = tape.matmul(a_norm, tape.matmul(h, params.w2));
            let logits = tape.add(h2, tape.row_broadcast(params.b2, h2.rows()));
            (h, logits)
        }
        #[cfg(not(feature = "dense-oracle"))]
        {
            let a_norm = tape.sparse_constant(geattack_graph::normalized_adjacency_csr(graph).matrix);
            let h = self.hidden_layer_sparse(tape, a_norm, x, params);
            let h2 = tape.spmm(a_norm, tape.matmul(h, params.w2));
            let logits = tape.add(h2, tape.row_broadcast(params.b2, h2.rows()));
            (h, logits)
        }
    }

    /// Full-graph hidden layer through the compiled-in adjacency representation.
    fn graph_hidden(&self, tape: &Tape, graph: &Graph, x: Var, params: &GcnParamVars) -> Var {
        #[cfg(feature = "dense-oracle")]
        {
            let a_norm = tape.constant(geattack_graph::normalized_adjacency(graph));
            self.hidden_layer(tape, a_norm, x, params)
        }
        #[cfg(not(feature = "dense-oracle"))]
        {
            let a_norm = tape.sparse_constant(geattack_graph::normalized_adjacency_csr(graph).matrix);
            self.hidden_layer_sparse(tape, a_norm, x, params)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_tensor::grad::grad_values;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_graph() -> Graph {
        // Two triangles joined by one edge; labels follow the triangles.
        let mut adj = Matrix::zeros(6, 6);
        for &(u, v) in &[(0usize, 1usize), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            adj[(u, v)] = 1.0;
            adj[(v, u)] = 1.0;
        }
        let feats = Matrix::from_fn(6, 4, |i, j| if (i < 3) == (j < 2) { 1.0 } else { 0.0 });
        Graph::new(adj, feats, vec![0, 0, 0, 1, 1, 1], 2)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = toy_graph();
        let gcn = Gcn::new(4, 8, 2, &mut rng);
        let probs = gcn.predict_proba(&g);
        assert_eq!(probs.shape(), (6, 2));
        for i in 0..6 {
            let s: f64 = probs.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert_eq!(gcn.predict_labels(&g).len(), 6);
        assert_eq!(gcn.node_embeddings(&g).shape(), (6, 8));
    }

    #[test]
    fn sparse_prediction_is_bit_identical_to_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = toy_graph();
        let gcn = Gcn::new(4, 8, 2, &mut rng);

        // Dense reference forward, built explicitly on the dense tape path.
        let tape = Tape::new();
        let a_norm = tape.constant(geattack_graph::normalized_adjacency(&g));
        let x = tape.constant(g.features().clone());
        let params = gcn.insert_params_frozen(&tape);
        let dense_logits = tape.value(gcn.logits(&tape, a_norm, x, &params));
        let dense_hidden = tape.value(gcn.hidden_layer(&tape, a_norm, x, &params));

        // Sparse forward on the same parameters.
        let tape = Tape::new();
        let a_sparse = tape.sparse_constant(geattack_graph::normalized_adjacency_csr(&g).matrix);
        let x = tape.constant(g.features().clone());
        let params = gcn.insert_params_frozen(&tape);
        let sparse_logits = tape.value(gcn.logits_sparse(&tape, a_sparse, x, &params));
        let sparse_hidden = tape.value(gcn.hidden_layer_sparse(&tape, a_sparse, x, &params));

        assert_eq!(sparse_logits.as_slice(), dense_logits.as_slice());
        assert_eq!(sparse_hidden.as_slice(), dense_hidden.as_slice());
        assert_eq!(gcn.node_embeddings(&g).as_slice(), dense_hidden.as_slice());
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = GcnParams::init(5, 3, 2, &mut rng);
        let back = GcnParams::from_vec(p.to_vec());
        assert!(back.w1.approx_eq(&p.w1, 0.0));
        assert!(back.b2.approx_eq(&p.b2, 0.0));
        let gcn = Gcn::from_params(p);
        assert_eq!(gcn.in_features(), 5);
        assert_eq!(gcn.hidden(), 3);
        assert_eq!(gcn.num_classes(), 2);
    }

    #[test]
    fn gradient_wrt_parameters_is_nonzero() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = toy_graph();
        let gcn = Gcn::new(4, 8, 2, &mut rng);
        let tape = Tape::new();
        let a_norm = tape.constant(geattack_graph::normalized_adjacency(&g));
        let x = tape.constant(g.features().clone());
        let params = gcn.insert_params(&tape);
        let lp = gcn.log_probs(&tape, a_norm, x, &params);
        let loss = nn::masked_nll(&tape, lp, &[0, 3], &[0, 1], 2);
        let grads = grad_values(&tape, loss, &params.to_vec());
        assert_eq!(grads.len(), 4);
        assert!(grads[0].frobenius_norm() > 0.0, "w1 gradient must be non-zero");
        assert!(grads[2].frobenius_norm() > 0.0, "w2 gradient must be non-zero");
    }

    #[test]
    fn gradient_wrt_raw_adjacency_matches_finite_diff() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = toy_graph();
        let gcn = Gcn::new(4, 8, 2, &mut rng);
        let target = 0usize;
        let class = 1usize;

        let f = |adj: &Matrix| -> f64 {
            let tape = Tape::new();
            let a = tape.input(adj.clone());
            let x = tape.constant(g.features().clone());
            let params = gcn.insert_params_frozen(&tape);
            let lp = gcn.log_probs_from_raw_adj(&tape, a, x, &params);
            tape.value(nn::node_class_nll(&tape, lp, target, class, 2)).scalar()
        };

        let dense_adj = g.to_dense();
        let tape = Tape::new();
        let a = tape.input(dense_adj.clone());
        let x = tape.constant(g.features().clone());
        let params = gcn.insert_params_frozen(&tape);
        let lp = gcn.log_probs_from_raw_adj(&tape, a, x, &params);
        let loss = nn::node_class_nll(&tape, lp, target, class, 2);
        let grad_a = grad_values(&tape, loss, &[a]).remove(0);

        // Check a handful of entries against central differences.
        let eps = 1e-5;
        for &(i, j) in &[(0usize, 3usize), (0, 5), (1, 4), (2, 3)] {
            let mut p = dense_adj.clone();
            p[(i, j)] += eps;
            let mut m = dense_adj.clone();
            m[(i, j)] -= eps;
            let numeric = (f(&p) - f(&m)) / (2.0 * eps);
            assert!(
                (grad_a[(i, j)] - numeric).abs() < 1e-5,
                "adjacency gradient mismatch at ({i},{j}): {} vs {numeric}",
                grad_a[(i, j)]
            );
        }
    }
}
