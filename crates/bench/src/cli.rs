//! The one shared command-line parser behind every binary in this crate.
//!
//! All eight `reproduce_*` binaries and `geattack-sweep` accept the same flag
//! set (`--seed`, `--scale`, `--quick`/`--full`, `--serial`, `--runs`,
//! `--victims`, `--dataset`); the parsing, the usage message and the
//! flag-to-[`PipelineConfig`] translation live here so a new binary never
//! copy-pastes an argument loop again. Binaries that take positional arguments
//! (the sweep's spec path) call [`Options::parse_with_positionals`]; the rest
//! use [`Options::from_args`]. The sweep-only distribution flags (`--shard`,
//! `--cache-dir`, `--dry-run`, `--list-families`) are parsed via
//! [`Options::parse_sweep`] and rejected — with a pointed message, not a
//! generic "unknown option" — everywhere else.

use geattack_core::pipeline::{GraphSource, PipelineConfig};
use geattack_core::sweep::Shard;
use geattack_graph::datasets::{DatasetName, GeneratorConfig};

/// Command-line options shared by all reproduction binaries and the sweep
/// runner.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// `Some(true)` after `--full` (paper scale), `Some(false)` after `--quick`
    /// (the reduced default, stated explicitly), `None` when neither flag was
    /// given — the sweep runner needs the distinction to know whether to
    /// override the spec's profile.
    pub full: Option<bool>,
    /// Number of independent seeds/runs to aggregate (`--runs`); `None` means
    /// the binary's default of 2.
    pub runs: Option<usize>,
    /// Number of victims per run (overrides the per-mode default when set).
    pub victims: Option<usize>,
    /// Dataset scale override.
    pub scale: Option<f64>,
    /// Base seed.
    pub seed: u64,
    /// Force the single-threaded pipeline path (`--serial`), for timing
    /// comparisons and debugging.
    pub serial: bool,
    /// Restrict a multi-dataset binary to one dataset (`--dataset NAME`).
    pub dataset: Option<DatasetName>,
    /// Run only one shard of the sweep grid (`--shard I/N`, zero-based).
    pub shard: Option<Shard>,
    /// Memoize prepared experiments under this directory (`--cache-dir DIR`).
    pub cache_dir: Option<String>,
    /// Size budget for the cache directory in MiB (`--cache-budget-mb N`):
    /// after each write the oldest-mtime entries are pruned until the cache
    /// fits.
    pub cache_budget_mb: Option<u64>,
    /// Write an NDJSON span trace to this path (`--telemetry PATH`): one line
    /// per closed cell/phase-level span. Never affects the report bytes.
    pub telemetry: Option<String>,
    /// Print the enumerated cell plan instead of running (`--dry-run`).
    pub dry_run: bool,
    /// Print the scenario family registry and exit (`--list-families`).
    pub list_families: bool,
}

/// The result of parsing a command line that may carry positional arguments.
#[derive(Clone, Debug)]
pub struct ParsedArgs {
    /// The shared flag set.
    pub options: Options,
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
}

const FLAG_USAGE: &str = "[--quick|--full] [--runs N] [--victims N] [--scale F] [--seed N] [--serial] [--dataset NAME]";
const SWEEP_FLAG_USAGE: &str =
    "[--shard I/N] [--cache-dir DIR] [--cache-budget-mb N] [--telemetry PATH] [--dry-run] [--list-families]";

impl Options {
    /// Parses options from `std::env::args()`, rejecting positional arguments.
    /// Unknown flags abort with a usage message so typos do not silently run
    /// the wrong experiment.
    pub fn from_args() -> Self {
        let parsed = parse(std::env::args().skip(1), false, "", false);
        parsed.options
    }

    /// Parses options plus positional arguments (e.g. the sweep spec path);
    /// `positional_usage` is appended to the usage message.
    pub fn parse_with_positionals(positional_usage: &str) -> ParsedArgs {
        parse(std::env::args().skip(1), true, positional_usage, false)
    }

    /// [`Options::parse_with_positionals`] plus the sweep-only distribution
    /// flags (`--shard`, `--cache-dir`, `--dry-run`, `--list-families`).
    pub fn parse_sweep(positional_usage: &str) -> ParsedArgs {
        parse(std::env::args().skip(1), true, positional_usage, true)
    }

    /// Builds the pipeline configuration for one dataset and one run index.
    pub fn pipeline(&self, dataset: DatasetName, run: usize) -> PipelineConfig {
        self.pipeline_for_source(GraphSource::Dataset(dataset), run)
    }

    /// Whether `--full` (paper scale) was requested.
    pub fn is_full(&self) -> bool {
        self.full == Some(true)
    }

    /// The number of independent runs to aggregate (default 2).
    pub fn run_count(&self) -> usize {
        self.runs.unwrap_or(2).max(1)
    }

    /// Builds the pipeline configuration for an arbitrary graph source and one
    /// run index.
    pub fn pipeline_for_source(&self, source: GraphSource, run: usize) -> PipelineConfig {
        let seed = self.seed + run as u64;
        let mut config = if self.is_full() {
            PipelineConfig::paper_scale_source(source, seed)
        } else {
            PipelineConfig::quick_source(source, seed)
        };
        if let Some(scale) = self.scale {
            config.generator = GeneratorConfig::at_scale(scale, seed);
        }
        if let Some(victims) = self.victims {
            config.set_victim_count(victims);
        }
        config.parallel = !self.serial;
        config
    }

    /// The seeds of all runs.
    pub fn run_indices(&self) -> std::ops::Range<usize> {
        0..self.run_count()
    }

    /// The datasets a binary should run on: its own default list, unless
    /// `--dataset` restricts it to one (which must be in the default list).
    pub fn datasets(&self, default: &[DatasetName]) -> Vec<DatasetName> {
        match self.dataset {
            None => default.to_vec(),
            Some(dataset) if default.contains(&dataset) => vec![dataset],
            Some(dataset) => {
                eprintln!(
                    "--dataset {} is not part of this experiment (choices: {})",
                    dataset.as_str(),
                    default.iter().map(|d| d.as_str()).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}

fn parse(
    args: impl Iterator<Item = String>,
    allow_positional: bool,
    positional_usage: &str,
    allow_sweep_flags: bool,
) -> ParsedArgs {
    let flags = if allow_sweep_flags {
        format!("{FLAG_USAGE} {SWEEP_FLAG_USAGE}")
    } else {
        FLAG_USAGE.to_string()
    };
    let usage = if positional_usage.is_empty() {
        format!("usage: {flags}")
    } else {
        format!("usage: {flags} {positional_usage}")
    };
    let fail = |message: &str| -> ! {
        eprintln!("{message}");
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let mut options = Options::default();
    let mut positional = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => options.full = Some(true),
            "--quick" => options.full = Some(false),
            "--runs" => options.runs = Some(parse_next(&mut args, "--runs")),
            "--victims" => options.victims = Some(parse_next(&mut args, "--victims")),
            "--scale" => options.scale = Some(parse_next(&mut args, "--scale")),
            "--seed" => options.seed = parse_next(&mut args, "--seed"),
            "--serial" => options.serial = true,
            "--dataset" => {
                let name: String = parse_next(&mut args, "--dataset");
                match DatasetName::parse(&name) {
                    Some(dataset) => options.dataset = Some(dataset),
                    None => fail(&format!("unknown dataset: {name}")),
                }
            }
            "--shard" | "--cache-dir" | "--cache-budget-mb" | "--telemetry" | "--dry-run" | "--list-families"
                if !allow_sweep_flags =>
            {
                fail(&format!("{arg} is only supported by geattack-sweep"));
            }
            "--shard" => {
                let value: String = parse_next(&mut args, "--shard");
                match Shard::parse(&value) {
                    Ok(shard) => options.shard = Some(shard),
                    Err(e) => fail(&e.to_string()),
                }
            }
            "--cache-dir" => {
                let dir: String = parse_next(&mut args, "--cache-dir");
                // Any string parses, so a forgotten value would silently
                // swallow the next flag (`--cache-dir --dry-run` caching into
                // ./--dry-run); prefix paths with ./ to use a literal dash.
                if dir.starts_with('-') {
                    fail(&format!("--cache-dir expects a directory path, got flag-like `{dir}`"));
                }
                options.cache_dir = Some(dir);
            }
            "--cache-budget-mb" => options.cache_budget_mb = Some(parse_next(&mut args, "--cache-budget-mb")),
            "--telemetry" => {
                let path: String = parse_next(&mut args, "--telemetry");
                if path.starts_with('-') {
                    fail(&format!("--telemetry expects a file path, got flag-like `{path}`"));
                }
                options.telemetry = Some(path);
            }
            "--dry-run" => options.dry_run = true,
            "--list-families" => options.list_families = true,
            "--help" | "-h" => {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => fail(&format!("unknown option: {other}")),
            other if allow_positional => positional.push(other.to_string()),
            other => fail(&format!("unexpected argument: {other}")),
        }
    }
    ParsedArgs { options, positional }
}

/// Parses a command line consisting only of positional path arguments (the
/// merge binary's shard-report list): no flags apply, so anything starting
/// with `-` other than `-h`/`--help` aborts.
pub fn paths_only(positional_usage: &str) -> Vec<String> {
    let usage = format!("usage: {positional_usage}");
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option: {other}");
                eprintln!("{usage}");
                std::process::exit(2);
            }
            other => paths.push(other.to_string()),
        }
    }
    paths
}

fn parse_next<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} expects a value");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> std::vec::IntoIter<String> {
        list.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn defaults_and_pipeline() {
        let options = Options::default();
        assert!(!options.is_full());
        let config = options.pipeline(DatasetName::Cora, 1);
        assert_eq!(config.generator.seed, 1);
        assert_eq!(options.run_indices().len(), 2);
    }

    #[test]
    fn overrides_flow_into_the_pipeline_config() {
        let options = Options {
            scale: Some(0.05),
            victims: Some(3),
            seed: 7,
            ..Default::default()
        };
        let config = options.pipeline(DatasetName::Acm, 0);
        assert_eq!(config.victims.count, 3);
        assert!((config.generator.scale - 0.05).abs() < 1e-12);
        assert_eq!(config.generator.seed, 7);
    }

    #[test]
    fn flags_parse_into_options() {
        let parsed = parse(
            args(&[
                "--seed",
                "9",
                "--scale",
                "0.2",
                "--serial",
                "--dataset",
                "acm",
                "--runs",
                "3",
            ]),
            false,
            "",
            false,
        );
        assert_eq!(parsed.options.seed, 9);
        assert_eq!(parsed.options.scale, Some(0.2));
        assert!(parsed.options.serial);
        assert_eq!(parsed.options.dataset, Some(DatasetName::Acm));
        assert_eq!(parsed.options.runs, Some(3));
        assert_eq!(parsed.options.run_count(), 3);
        assert!(parsed.positional.is_empty());
    }

    #[test]
    fn quick_undoes_full_and_positionals_are_collected() {
        let parsed = parse(args(&["--full", "--quick", "spec.json"]), true, "SPEC", false);
        assert_eq!(parsed.options.full, Some(false));
        assert!(!parsed.options.is_full());
        assert_eq!(parsed.positional, vec!["spec.json".to_string()]);
        // Neither profile flag → None, so callers can tell "default" apart
        // from an explicit `--quick`.
        assert_eq!(parse(args(&[]), false, "", false).options.full, None);
    }

    #[test]
    fn sweep_flags_parse_when_allowed() {
        let parsed = parse(
            args(&[
                "--shard",
                "1/3",
                "--cache-dir",
                "/tmp/geattack-cache",
                "--dry-run",
                "--list-families",
                "spec.json",
            ]),
            true,
            "SPEC",
            true,
        );
        assert_eq!(parsed.options.shard, Some(Shard { index: 1, count: 3 }));
        assert_eq!(parsed.options.cache_dir.as_deref(), Some("/tmp/geattack-cache"));
        assert!(parsed.options.dry_run);
        assert!(parsed.options.list_families);
        // Defaults: no distribution behavior unless asked for.
        let plain = parse(args(&[]), false, "", true).options;
        assert_eq!(plain.shard, None);
        assert_eq!(plain.cache_dir, None);
        assert!(!plain.dry_run && !plain.list_families);
    }

    #[test]
    fn dataset_filter_restricts_the_default_list() {
        let options = Options {
            dataset: Some(DatasetName::Cora),
            ..Default::default()
        };
        assert_eq!(
            options.datasets(&[DatasetName::Citeseer, DatasetName::Cora]),
            vec![DatasetName::Cora]
        );
        let unfiltered = Options::default();
        assert_eq!(unfiltered.datasets(&DatasetName::ALL), DatasetName::ALL.to_vec());
    }

    #[test]
    fn scenario_sources_build_pipelines_too() {
        let options = Options::default();
        let config = options.pipeline_for_source(GraphSource::parse("sbm").unwrap(), 0);
        assert_eq!(config.source.label(), "sbm");
    }
}
