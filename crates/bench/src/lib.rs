//! # geattack-bench
//!
//! Criterion micro-benchmarks (under `benches/`), the `reproduce_*` binaries
//! (under `src/bin/`) that regenerate every table and figure of the paper's
//! evaluation, and the `geattack-sweep` binary that executes declarative
//! scenario sweeps. Shared pieces:
//!
//! * [`cli`] — the one command-line parser every binary uses;
//! * [`runner`] — experiment-running logic for the paper reproductions;
//! * [`sweep`] — the scenario-sweep executor and its aggregated report.

pub mod cli;
pub mod runner;
pub mod sweep;
