//! # geattack-bench
//!
//! Criterion micro-benchmarks (under `benches/`), the `reproduce_*` binaries
//! (under `src/bin/`) that regenerate every table and figure of the paper's
//! evaluation, and the clients of the `geattack_core` experiment engine: the
//! `geattack-sweep` runner, the `geattack-merge` shard combiner and the
//! `geattack-serve` daemon. Shared pieces:
//!
//! * [`cli`] — the one command-line parser every binary uses;
//! * [`runner`] — experiment-running logic for the paper reproductions;
//! * [`serve`] — the NDJSON sweep-serving protocol (concurrent daemon loop +
//!   client), with cancellation and graceful drain;
//! * [`pool`] — the daemon's bounded, cost-aware admission gate;
//! * [`loadtest`] — the `geattack-loadtest` concurrency harness.
//!
//! The sweep executor itself lives in `geattack_core::{engine, sweep}`; the
//! binaries here are thin clients of that engine.

pub mod cli;
pub mod loadtest;
pub mod pool;
pub mod runner;
pub mod serve;
