//! # geattack-bench
//!
//! Criterion micro-benchmarks (under `benches/`) and the `reproduce_*` binaries
//! (under `src/bin/`) that regenerate every table and figure of the paper's
//! evaluation. The shared experiment-running logic lives in [`runner`].

pub mod runner;
