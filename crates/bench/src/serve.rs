//! The `geattack-serve` wire protocol: sweep specs in, NDJSON cell events out.
//!
//! The daemon side ([`serve`]) accepts TCP connections and reads one JSON
//! sweep spec per line (NDJSON framing — multi-line spec files must be
//! compacted to a single line, e.g. `jq -c . spec.json`). Each request is
//! submitted to one shared [`Engine`], so every request of the daemon's
//! lifetime shares one prepared-experiment cache; the session's events stream
//! back as NDJSON while cells complete:
//!
//! ```text
//! {"event":"planned","position":0,"family":"ba-shapes","scale":0.08,"seed":0,"explainer":"GNNExplainer"}
//! {"event":"started","position":0}
//! {"event":"cell","position":0,"cells":[{...SweepCell...}, ...]}
//! {"event":"failed","position":3,"error":"..."}           (remaining cells still run)
//! {"event":"done","sweep":"quick","report":{...SweepReport...},"cache":{"hits":4,...}}
//! {"event":"error","error":"..."}                         (request-level failure)
//! ```
//!
//! A `failed` cell does not abort the session — the engine keeps executing and
//! streaming the remaining cells — but a request with any failed cell cannot
//! assemble a complete report, so it terminates with an `error` event (listing
//! every failed position) instead of `done`. The `cache` counters of the
//! `done` event are per-request deltas, not daemon-lifetime totals.
//!
//! The `done` event embeds the full assembled [`SweepReport`] as a JSON value.
//! Because the workspace's JSON codec round-trips every number exactly and
//! preserves object field order, pretty-printing that value reproduces the
//! `results/sweep_<name>.json` artifact of a `geattack-sweep` run of the same
//! spec **byte for byte** — the serve round-trip test and the CI `serve-smoke`
//! job both pin this.
//!
//! The client side ([`submit`]) connects (with retries, so scripts can start
//! the daemon concurrently), sends one spec, surfaces progress lines and
//! returns the reassembled pretty report.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use serde::Value;

use geattack_core::engine::{CellEvent, Engine};
use geattack_core::sweep::PlannedCell;
use geattack_scenarios::SweepSpec;

/// Serializes one protocol event as a compact single line.
fn line(value: &Value) -> String {
    serde_json::to_string(value).expect("protocol events always serialize")
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn event_value(event: &CellEvent) -> Value {
    match event {
        CellEvent::Planned { cell } => planned_value(cell),
        CellEvent::Started { position } => object(vec![
            ("event", Value::String("started".into())),
            ("position", Value::Number(*position as f64)),
        ]),
        CellEvent::Finished { position, cells } => object(vec![
            ("event", Value::String("cell".into())),
            ("position", Value::Number(*position as f64)),
            ("cells", serde_json::to_value(cells)),
        ]),
        CellEvent::Failed { position, error } => object(vec![
            ("event", Value::String("failed".into())),
            ("position", Value::Number(*position as f64)),
            ("error", Value::String(error.clone())),
        ]),
    }
}

fn planned_value(cell: &PlannedCell) -> Value {
    object(vec![
        ("event", Value::String("planned".into())),
        ("position", Value::Number(cell.position as f64)),
        ("family", Value::String(cell.family.clone())),
        ("scale", Value::Number(cell.scale)),
        ("seed", Value::Number(cell.seed as f64)),
        ("explainer", Value::String(cell.explainer.clone())),
    ])
}

fn error_value(message: &str) -> Value {
    object(vec![
        ("event", Value::String("error".into())),
        ("error", Value::String(message.to_string())),
    ])
}

/// Runs one sweep request through the engine and streams its events to `out`.
/// Request-level failures (bad spec, failed cells) end in an `error` event;
/// transport failures propagate as `io::Error` and end the connection.
pub fn stream_sweep(engine: &Engine, spec: SweepSpec, out: &mut impl Write) -> std::io::Result<()> {
    // The engine's counters accumulate over its lifetime; the `done` event
    // reports this request's delta.
    let counters_before = engine.cache_counters();
    let mut session = match engine.submit(spec) {
        Ok(session) => session,
        Err(e) => {
            writeln!(out, "{}", line(&error_value(&e.to_string())))?;
            return out.flush();
        }
    };
    for event in session.by_ref() {
        writeln!(out, "{}", line(&event_value(&event)))?;
        out.flush()?;
    }
    match session.wait().and_then(|run| {
        engine
            .merge(std::slice::from_ref(&run.shard))
            .map(|report| (run, report))
    }) {
        Ok((_run, report)) => {
            let cache = match (counters_before, engine.cache_counters()) {
                (Some(before), Some(after)) => object(vec![
                    ("hits", Value::Number(after.hits.saturating_sub(before.hits) as f64)),
                    (
                        "misses",
                        Value::Number(after.misses.saturating_sub(before.misses) as f64),
                    ),
                    (
                        "evictions",
                        Value::Number(after.evictions.saturating_sub(before.evictions) as f64),
                    ),
                ]),
                _ => Value::Null,
            };
            let done = object(vec![
                ("event", Value::String("done".into())),
                ("sweep", Value::String(report.sweep.clone())),
                ("report", serde_json::to_value(&report)),
                ("cache", cache),
            ]);
            writeln!(out, "{}", line(&done))?;
        }
        Err(e) => {
            writeln!(out, "{}", line(&error_value(&e.to_string())))?;
        }
    }
    out.flush()
}

/// Handles one connection: one request per line until the peer closes.
/// Increments `served` through the reference as each successfully-parsed
/// request completes — even when the connection later errors — so the
/// daemon's `--max-requests` accounting never loses executed requests.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    served: &mut usize,
    max_requests: Option<usize>,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for request in reader.lines() {
        let request = request?;
        if request.trim().is_empty() {
            continue;
        }
        match SweepSpec::from_json(&request) {
            Err(e) => {
                let err = geattack_core::GeError::Protocol(e);
                writeln!(writer, "{}", line(&error_value(&err.to_string())))?;
                writer.flush()?;
            }
            Ok(spec) => {
                *served += 1;
                stream_sweep(engine, spec, &mut writer)?;
                if max_requests.is_some_and(|max| *served >= max) {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// The daemon loop: accepts connections serially and serves line-delimited
/// sweep requests against one shared engine (and therefore one shared
/// prepared-experiment cache). Stops after `max_requests` successfully-parsed
/// requests when given (the CI smoke test uses this for a clean exit);
/// otherwise loops until the process is killed. Per-connection I/O errors end
/// that connection, not the daemon.
pub fn serve(listener: TcpListener, engine: &Engine, max_requests: Option<usize>) -> std::io::Result<usize> {
    let mut served = 0usize;
    for stream in listener.incoming() {
        if max_requests.is_some_and(|max| served >= max) {
            break;
        }
        match stream {
            Err(e) => return Err(e),
            Ok(stream) => {
                if let Err(e) = handle_connection(stream, engine, &mut served, max_requests) {
                    eprintln!("serve: connection ended: {e}");
                }
            }
        }
        if max_requests.is_some_and(|max| served >= max) {
            break;
        }
    }
    Ok(served)
}

/// What a successful [`submit`] brings back. A request with any failed cell
/// never reaches `done` (the server terminates it with an `error` event), so
/// a returned outcome always carries a complete report.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// Sweep name from the `done` event.
    pub sweep: String,
    /// The assembled report, pretty-printed — byte-identical to the
    /// `results/sweep_<name>.json` a `geattack-sweep` run of the same spec
    /// writes.
    pub report_pretty: String,
    /// This request's cache-counter delta on the daemon (`Value::Null` when
    /// the daemon runs uncached).
    pub cache: Value,
}

/// Connects to the daemon, retrying until `timeout` elapses (so a script can
/// launch daemon and client together).
pub fn connect_retry(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("cannot connect to {addr}: {e}"));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// Submits one sweep spec (JSON text, any layout — it is compacted to one
/// line) and consumes the event stream until `done`/`error`. `progress` is
/// called with one human-readable line per streamed event.
pub fn submit(
    addr: &str,
    spec_text: &str,
    timeout: Duration,
    mut progress: impl FnMut(String),
) -> Result<SubmitOutcome, String> {
    let spec_value: Value = serde_json::from_str(spec_text).map_err(|e| format!("invalid spec JSON: {e}"))?;
    let request = serde_json::to_string(&spec_value).map_err(|e| e.to_string())?;

    let stream = connect_retry(addr, timeout)?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let reader = BufReader::new(stream);
    writeln!(writer, "{request}").map_err(|e| format!("cannot send request: {e}"))?;
    writer.flush().map_err(|e| format!("cannot send request: {e}"))?;

    for response in reader.lines() {
        let response = response.map_err(|e| format!("connection lost: {e}"))?;
        let value: Value = serde_json::from_str(&response).map_err(|e| format!("malformed event: {e}"))?;
        let event = match value.get_field("event") {
            Ok(Value::String(event)) => event.clone(),
            _ => return Err(format!("event line without an `event` field: {response}")),
        };
        let position = || match value.get_field("position") {
            Ok(Value::Number(p)) => *p as usize,
            _ => usize::MAX,
        };
        match event.as_str() {
            "planned" => {}
            "started" => progress(format!("cell {} started", position())),
            "cell" => progress(format!("cell {} finished", position())),
            "failed" => progress(format!("cell {} FAILED", position())),
            "error" => {
                let message = match value.get_field("error") {
                    Ok(Value::String(m)) => m.clone(),
                    _ => "unspecified server error".to_string(),
                };
                return Err(message);
            }
            "done" => {
                let report = value
                    .get_field("report")
                    .map_err(|_| "done event without a report".to_string())?;
                let sweep = match value.get_field("sweep") {
                    Ok(Value::String(s)) => s.clone(),
                    _ => String::new(),
                };
                let cache = value.get_field("cache").ok().cloned().unwrap_or(Value::Null);
                return Ok(SubmitOutcome {
                    sweep,
                    report_pretty: serde_json::to_string_pretty(report).map_err(|e| e.to_string())?,
                    cache,
                });
            }
            other => return Err(format!("unknown event `{other}`")),
        }
    }
    Err("connection closed before a `done` event".to_string())
}
