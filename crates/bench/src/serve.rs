//! The `geattack-serve` wire protocol: sweep specs in, NDJSON cell events out.
//!
//! The daemon side ([`serve`]) accepts N simultaneous TCP connections — one
//! handler thread per connection — and reads one JSON sweep spec per line
//! (NDJSON framing — multi-line spec files must be compacted to a single
//! line, e.g. `jq -c . spec.json`). Every request executes against one shared
//! [`Engine`] (and therefore one shared prepared-experiment cache), but
//! requests no longer execute one at a time: handler threads feed a bounded
//! cost-aware [`WorkerPool`] (`--workers` slots, `--queue-limit` waiters),
//! whose queue is ordered by the engine's per-cell cost estimate so a cheap
//! quick grid never queues behind a scale-0.6 sweep. The session's events
//! stream back as NDJSON while cells complete:
//!
//! ```text
//! {"event":"accepted","id":7,"cost":123456.0,"queue_depth":1}
//! {"event":"planned","position":0,"family":"ba-shapes","scale":0.08,"seed":0,"explainer":"GNNExplainer"}
//! {"event":"started","position":0}
//! {"event":"cell","position":0,"cells":[{...SweepCell...}, ...],"timing_ms":{"prepare":...,"total":...}}
//! {"event":"failed","position":3,"kind":"prepare","error":"..."}   (remaining cells still run)
//! {"event":"done","sweep":"quick","report":{...},"cache":{"hits":4,...},"telemetry":{...}}
//! {"event":"error","error":"..."}                                  (request-level failure)
//! ```
//!
//! A request line may also be a **sharded** sweep request, wrapping the spec
//! with a `--shard I/N`-style slice — how the fleet coordinator dispatches
//! grid slices to workers:
//!
//! ```text
//! {"spec": {...SweepSpec...}, "shard": "1/3"}
//! ```
//!
//! A sharded request streams the same events, echoes the shard in its
//! `accepted` event (`"shard":"1/3"`) so fleet logs can attribute it, and —
//! because a partial slice cannot be merged server-side — terminates with a
//! `done` event embedding the raw `shard_report` instead of a merged
//! `report`:
//!
//! ```text
//! {"event":"accepted","id":7,"cost":41152.0,"queue_depth":0,"shard":"1/3"}
//! {"event":"done","sweep":"quick","shard":"1/3","shard_report":{...},"cache":...,"telemetry":...}
//! ```
//!
//! A `failed` cell does not abort the session — the engine keeps executing and
//! streaming the remaining cells — but a request with any failed cell cannot
//! assemble a complete report, so it terminates with an `error` event (listing
//! every failed position) instead of `done`. The `cache` counters of the
//! `done` event are per-request deltas, not daemon-lifetime totals.
//!
//! Besides sweep specs, a request line may be a control request:
//!
//! ```text
//! {"request":"health"}         → {"event":"health","status":"ok","uptime_ms":...}
//! {"request":"stats"}          → {"event":"stats","uptime_ms":...,"requests":{...},"queue":{...},"cache":{...},"cells":{...},"latency_ms":{...}}
//! {"request":"cancel","id":7}  → {"event":"cancelled","id":7}      (aborts that request's remaining cells)
//! {"request":"drain"}          → {"event":"draining","in_flight":...,"queued":...}
//! ```
//!
//! **Cancellation** is per-request: the `id` from the `accepted` event names
//! the session, and a `cancel` control request (from any connection) — or the
//! submitting client disconnecting mid-stream — sets that session's
//! [`CancelToken`]: cells that have not started are skipped (each surfacing as
//! a `failed` event with kind `cancelled`), cells already executing finish,
//! and the request terminates with an `error` event while the daemon keeps
//! serving everything else.
//!
//! **Graceful drain**: a `drain` control request — or SIGTERM, via
//! [`sigterm_flag`] — stops the daemon accepting new connections and new
//! sweep requests (they are refused with an `error` event), lets in-flight
//! and already-queued sweeps finish streaming, then [`serve`] returns so the
//! process can exit cleanly.
//!
//! `stats` exports the daemon-lifetime view: request counters (served,
//! failed, cancelled, rejected, live and peak in-flight), the worker-pool
//! queue, the shared cache's counters with a live hit rate, the engine's cell
//! counters and its per-cell / per-phase latency histograms as
//! `{count,p50,p95,p99,max}` summaries — plus per-request `request_wait` /
//! `request_run` histograms separating time-in-queue from time-executing.
//!
//! The `done` event embeds the full assembled [`SweepReport`] as a JSON value.
//! Because the workspace's JSON codec round-trips every number exactly and
//! preserves object field order, pretty-printing that value reproduces the
//! `results/sweep_<name>.json` artifact of a `geattack-sweep` run of the same
//! spec **byte for byte** — even under concurrent clients, which the CI
//! `concurrent-serve-smoke` job pins.
//!
//! The client side lives in [`geattack_fleet::client`] (shared with the fleet
//! coordinator and the loadtest); [`submit`], [`control`], [`connect_retry`]
//! and [`SubmitOutcome`] are re-exported here for compatibility. [`submit`]
//! connects (with retries, so scripts can start the daemon concurrently),
//! sends one spec, surfaces progress lines and returns the reassembled pretty
//! report.
//!
//! [`SweepReport`]: geattack_core::SweepReport

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Value;

use geattack_core::engine::{CancelToken, CellEvent, Engine};
use geattack_core::sweep::{PlannedCell, Shard};
use geattack_scenarios::SweepSpec;

use crate::pool::{AdmissionError, WorkerPool};

pub use geattack_fleet::client::{connect_retry, control, submit, SubmitOutcome};

/// Serializes one protocol event as a compact single line.
fn line(value: &Value) -> String {
    serde_json::to_string(value).expect("protocol events always serialize")
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn event_value(event: &CellEvent) -> Value {
    match event {
        CellEvent::Planned { cell } => planned_value(cell),
        CellEvent::Started { position } => object(vec![
            ("event", Value::String("started".into())),
            ("position", Value::Number(*position as f64)),
        ]),
        CellEvent::Finished {
            position,
            cells,
            timing,
        } => object(vec![
            ("event", Value::String("cell".into())),
            ("position", Value::Number(*position as f64)),
            ("cells", serde_json::to_value(cells)),
            (
                "timing_ms",
                object(vec![
                    ("prepare", Value::Number(timing.prepare_ms)),
                    ("attack", Value::Number(timing.attack_ms)),
                    ("explain", Value::Number(timing.explain_ms)),
                    ("detect", Value::Number(timing.detect_ms)),
                    ("total", Value::Number(timing.total_ms)),
                ]),
            ),
        ]),
        CellEvent::Failed { position, error } => object(vec![
            ("event", Value::String("failed".into())),
            ("position", Value::Number(*position as f64)),
            ("kind", Value::String(error.kind().to_string())),
            ("error", Value::String(error.to_string())),
        ]),
    }
}

fn planned_value(cell: &PlannedCell) -> Value {
    object(vec![
        ("event", Value::String("planned".into())),
        ("position", Value::Number(cell.position as f64)),
        ("family", Value::String(cell.family.clone())),
        ("scale", Value::Number(cell.scale)),
        ("seed", Value::Number(cell.seed as f64)),
        ("explainer", Value::String(cell.explainer.clone())),
    ])
}

fn error_value(message: &str) -> Value {
    object(vec![
        ("event", Value::String("error".into())),
        ("error", Value::String(message.to_string())),
    ])
}

/// Milliseconds latency distribution as the protocol's `{count,p50,p95,p99,max}`
/// object.
fn latency_value(latency: &geattack_core::LatencySummary) -> Value {
    object(vec![
        ("count", Value::Number(latency.count as f64)),
        ("p50", Value::Number(latency.p50)),
        ("p95", Value::Number(latency.p95)),
        ("p99", Value::Number(latency.p99)),
        ("max", Value::Number(latency.max)),
    ])
}

/// Same summary shape, straight from a histogram snapshot.
fn histogram_value(snap: &geattack_telemetry::HistogramSnapshot) -> Value {
    object(vec![
        ("count", Value::Number(snap.count as f64)),
        ("p50", Value::Number(snap.p50)),
        ("p95", Value::Number(snap.p95)),
        ("p99", Value::Number(snap.p99)),
        ("max", Value::Number(snap.max)),
    ])
}

/// How the daemon loop is configured; see the field docs. `Default` matches
/// the old single-request-at-a-time daemon (one worker), with a 16-deep queue.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Concurrent execution slots of the worker pool (`--workers`), clamped to
    /// at least 1.
    pub workers: usize,
    /// Requests allowed to wait for a slot before admission rejects them with
    /// a queue-full error (`--queue-limit`).
    pub queue_limit: usize,
    /// Stop after this many successfully-parsed sweep requests (the CI smoke
    /// tests use this for a clean exit); `None` serves until drained/killed.
    pub max_requests: Option<usize>,
    /// External shutdown flag: when it becomes `true` (e.g. from a SIGTERM
    /// handler — see [`sigterm_flag`]) the daemon drains gracefully.
    pub term_signal: Option<&'static AtomicBool>,
    /// Worker identity for fleet deployments (`--fleet-id`), surfaced in the
    /// `stats` response so coordinator logs and telemetry can attribute
    /// events per worker.
    pub fleet_id: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 1,
            queue_limit: 16,
            max_requests: None,
            term_signal: None,
            fleet_id: None,
        }
    }
}

impl ServeOptions {
    /// The default options with `--max-requests N` set: the shape every
    /// pre-worker-pool call site used.
    pub fn with_max_requests(max_requests: Option<usize>) -> Self {
        ServeOptions {
            max_requests,
            ..Default::default()
        }
    }
}

/// Installs a process-wide SIGTERM handler (unix; a no-op elsewhere) and
/// returns the flag it sets, ready for [`ServeOptions::term_signal`]. The
/// handler only stores into an atomic, which is async-signal-safe.
pub fn sigterm_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    #[cfg(unix)]
    {
        extern "C" fn on_term(_signum: i32) {
            FLAG.store(true, Ordering::SeqCst);
        }
        extern "C" {
            // `signal(2)` from libc, which every unix Rust binary links.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGTERM: i32 = 15;
        // SAFETY: installing an atomic-store-only handler for SIGTERM; the
        // replaced disposition (default: terminate) is not needed back.
        unsafe {
            signal(SIGTERM, on_term);
        }
    }
    &FLAG
}

/// Daemon-lifetime state shared by the accept loop and every connection
/// handler thread.
struct ServeShared {
    engine: Engine,
    pool: WorkerPool,
    started: Instant,
    max_requests: Option<usize>,
    /// Worker identity for fleet deployments, echoed in `stats`.
    fleet_id: Option<String>,
    /// Successfully-parsed sweep requests admitted so far (`--max-requests`
    /// accounting; control requests never count).
    accepted: AtomicUsize,
    /// Requests between admission and their final `done`/`error` event — what
    /// graceful drain waits on.
    outstanding: AtomicUsize,
    /// Requests that reached `done`.
    served: AtomicU64,
    /// Requests that terminated with an `error` event (bad spec, failed cells).
    failed: AtomicU64,
    /// Requests aborted by `cancel` or client disconnect.
    cancelled: AtomicU64,
    /// Requests refused by admission control (queue full or draining).
    rejected: AtomicU64,
    /// Highest number of requests ever executing at once.
    peak_in_flight: AtomicUsize,
    next_id: AtomicU64,
    /// Cancellation tokens of admitted, not-yet-finished requests, by id.
    active: Mutex<HashMap<u64, CancelToken>>,
    /// Set by `drain`/SIGTERM: refuse new work, finish what is in flight.
    draining: AtomicBool,
    /// Set when the accept loop decided to exit: handler threads close their
    /// connections at the next read-timeout tick.
    stopping: AtomicBool,
}

impl ServeShared {
    /// Reserves one of `--max-requests` (always succeeds when unlimited).
    fn reserve_request(&self) -> bool {
        // `outstanding` goes up before `accepted` so the accept loop can never
        // observe the request count reached with the last request invisible.
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let admitted = match self.max_requests {
            None => {
                self.accepted.fetch_add(1, Ordering::SeqCst);
                true
            }
            Some(max) => self
                .accepted
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < max).then_some(n + 1))
                .is_ok(),
        };
        if !admitted {
            self.outstanding.fetch_sub(1, Ordering::SeqCst);
        }
        admitted
    }

    /// Marks one admitted request finished.
    fn finish_request(&self) {
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// Refreshes the live queue/in-flight gauges from the pool.
    fn refresh_gauges(&self) {
        let (running, queued) = self.pool.depth();
        let metrics = self.engine.metrics();
        metrics.gauge("serve.in_flight").set(running as f64);
        metrics.gauge("serve.queue_depth").set(queued as f64);
    }
}

/// The `health` response: liveness plus uptime.
fn health_value(shared: &ServeShared) -> Value {
    object(vec![
        ("event", Value::String("health".into())),
        ("status", Value::String("ok".into())),
        ("uptime_ms", Value::Number(shared.started.elapsed().as_secs_f64() * 1e3)),
    ])
}

/// The `worker` identity block of the `stats` response: the `--fleet-id`
/// (null when unset) plus the daemon's pid, so a fleet coordinator can
/// attribute events and a fleet manifest can be checked against live daemons.
fn worker_identity_value(shared: &ServeShared) -> Value {
    object(vec![
        ("fleet_id", shared.fleet_id.clone().map_or(Value::Null, Value::String)),
        ("pid", Value::Number(std::process::id() as f64)),
    ])
}

/// The `stats` response: daemon-lifetime request counters, the worker
/// identity, the worker-pool queue, the shared cache's live counters and hit
/// rate, the engine's cell counters and its latency histograms summarized to
/// percentiles.
fn stats_value(shared: &ServeShared) -> Value {
    let engine = &shared.engine;
    let cache = match engine.cache_metrics() {
        None => Value::Null,
        Some(snapshot) => {
            let count = |name: &str| snapshot.counters.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v);
            let (hits, misses) = (count("cache.hits"), count("cache.misses"));
            let lookups = hits + misses;
            let hit_rate = if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            };
            object(vec![
                ("hits", Value::Number(hits as f64)),
                ("misses", Value::Number(misses as f64)),
                ("evictions", Value::Number(count("cache.evictions") as f64)),
                ("hit_rate", Value::Number(hit_rate)),
                ("bytes_read", Value::Number(count("cache.bytes_read") as f64)),
                ("bytes_written", Value::Number(count("cache.bytes_written") as f64)),
                ("bytes_encoded", Value::Number(count("persist.bytes_encoded") as f64)),
                ("bytes_decoded", Value::Number(count("persist.bytes_decoded") as f64)),
            ])
        }
    };
    let metrics = engine.metrics();
    let cells = object(vec![
        ("planned", Value::Number(metrics.counter_value("cells.planned") as f64)),
        ("started", Value::Number(metrics.counter_value("cells.started") as f64)),
        (
            "finished",
            Value::Number(metrics.counter_value("cells.finished") as f64),
        ),
        ("failed", Value::Number(metrics.counter_value("cells.failed") as f64)),
        (
            "cancelled",
            Value::Number(metrics.counter_value("cells.cancelled") as f64),
        ),
    ]);
    let latency = object(
        [
            ("request_wait", "request.wait_ms"),
            ("request_run", "request.run_ms"),
            ("cell_total", "cell.total_ms"),
            ("prepare", "phase.prepare_ms"),
            ("attack", "phase.attack_ms"),
            ("explain", "phase.explain_ms"),
            ("detect", "phase.detect_ms"),
        ]
        .into_iter()
        .map(|(label, name)| (label, histogram_value(&metrics.histogram(name).snapshot())))
        .collect(),
    );
    let (running, queued) = shared.pool.depth();
    object(vec![
        ("event", Value::String("stats".into())),
        ("uptime_ms", Value::Number(shared.started.elapsed().as_secs_f64() * 1e3)),
        ("worker", worker_identity_value(shared)),
        (
            "requests",
            object(vec![
                ("served", Value::Number(shared.served.load(Ordering::SeqCst) as f64)),
                ("failed", Value::Number(shared.failed.load(Ordering::SeqCst) as f64)),
                (
                    "cancelled",
                    Value::Number(shared.cancelled.load(Ordering::SeqCst) as f64),
                ),
                ("rejected", Value::Number(shared.rejected.load(Ordering::SeqCst) as f64)),
                ("in_flight", Value::Number(running as f64)),
                (
                    "peak_in_flight",
                    Value::Number(shared.peak_in_flight.load(Ordering::SeqCst) as f64),
                ),
            ]),
        ),
        (
            "queue",
            object(vec![
                ("depth", Value::Number(queued as f64)),
                ("limit", Value::Number(shared.pool.queue_limit() as f64)),
                ("workers", Value::Number(shared.pool.workers() as f64)),
                ("draining", Value::Bool(shared.is_draining())),
            ]),
        ),
        ("cache", cache),
        ("cells", cells),
        ("latency_ms", latency),
    ])
}

/// How one sweep request ended, for the daemon's request counters.
enum RequestEnd {
    Done,
    Failed,
    Cancelled,
}

/// Runs one admitted sweep request through the engine and streams its events
/// to `out`. Request-level failures (bad spec, failed cells) end in an `error`
/// event; a set `cancel` token ends in an `error` event mentioning the
/// cancellation; transport failures cancel the session, drain it, and
/// propagate as `io::Error` (ending the connection, not the daemon).
fn stream_sweep_session(
    engine: &Engine,
    spec: SweepSpec,
    shard: Option<Shard>,
    cancel: &CancelToken,
    out: &mut impl Write,
) -> std::io::Result<RequestEnd> {
    // The engine's counters accumulate over its lifetime; the `done` event
    // reports this request's delta.
    let counters_before = engine.cache_counters();
    let mut session = match engine.submit_cancellable(spec, shard, cancel.clone()) {
        Ok(session) => session,
        Err(e) => {
            writeln!(out, "{}", line(&error_value(&e.to_string())))?;
            out.flush()?;
            return Ok(RequestEnd::Failed);
        }
    };
    let mut write_error = None;
    while let Some(event) = session.next_event() {
        if let Err(e) = writeln!(out, "{}", line(&event_value(&event))).and_then(|_| out.flush()) {
            // The client went away mid-stream: abort this session's remaining
            // cells, then fall through to drain it so the slot frees promptly.
            cancel.cancel("client disconnected");
            write_error = Some(e);
            break;
        }
    }
    let finished = session.wait();
    if let Some(e) = write_error {
        return Err(e);
    }
    // An unsharded request assembles and embeds the merged report; a sharded
    // request's slice cannot be merged server-side, so its `done` event embeds
    // the raw shard report for the coordinator to merge in-process.
    let end = match finished.and_then(|run| match shard {
        None => engine.merge(std::slice::from_ref(&run.shard)).map(|report| {
            let payload = vec![
                ("sweep", Value::String(report.sweep.clone())),
                ("report", serde_json::to_value(&report)),
            ];
            (run, payload)
        }),
        Some(shard) => {
            let payload = vec![
                ("sweep", Value::String(run.shard.sweep.clone())),
                ("shard", Value::String(shard.label())),
                ("shard_report", serde_json::to_value(&run.shard)),
            ];
            Ok((run, payload))
        }
    }) {
        Ok((run, payload)) => {
            let cache = match (counters_before, engine.cache_counters()) {
                (Some(before), Some(after)) => object(vec![
                    ("hits", Value::Number(after.hits.saturating_sub(before.hits) as f64)),
                    (
                        "misses",
                        Value::Number(after.misses.saturating_sub(before.misses) as f64),
                    ),
                    (
                        "evictions",
                        Value::Number(after.evictions.saturating_sub(before.evictions) as f64),
                    ),
                ]),
                _ => Value::Null,
            };
            let t = &run.telemetry;
            let telemetry = object(vec![
                ("planned_cells", Value::Number(t.planned_cells as f64)),
                ("finished_cells", Value::Number(t.finished_cells as f64)),
                ("failed_cells", Value::Number(t.failed_cells as f64)),
                (
                    "phase_totals_ms",
                    object(vec![
                        ("prepare", Value::Number(t.phase_totals.prepare_ms)),
                        ("attack", Value::Number(t.phase_totals.attack_ms)),
                        ("explain", Value::Number(t.phase_totals.explain_ms)),
                        ("detect", Value::Number(t.phase_totals.detect_ms)),
                        ("total", Value::Number(t.phase_totals.total_ms)),
                    ]),
                ),
                ("cell_latency_ms", latency_value(&t.cell_latency)),
            ]);
            let mut fields = vec![("event", Value::String("done".into()))];
            fields.extend(payload);
            fields.push(("cache", cache));
            fields.push(("telemetry", telemetry));
            let done = object(fields);
            writeln!(out, "{}", line(&done))?;
            RequestEnd::Done
        }
        Err(e) => {
            writeln!(out, "{}", line(&error_value(&e.to_string())))?;
            if cancel.is_cancelled() {
                RequestEnd::Cancelled
            } else {
                RequestEnd::Failed
            }
        }
    };
    out.flush()?;
    Ok(end)
}

/// Admits one parsed sweep request through the worker pool, executes it and
/// streams the outcome. Owns the request's whole lifecycle: id assignment,
/// `accepted` event, cost-aware admission, wait/run histograms, cancellation
/// registration and the daemon's request counters.
fn run_sweep_request(
    shared: &ServeShared,
    spec: SweepSpec,
    shard: Option<Shard>,
    out: &mut impl Write,
) -> std::io::Result<()> {
    let engine = &shared.engine;
    let cost = match engine.estimate_cost(&spec, shard) {
        Ok(cost) => cost,
        Err(e) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            shared.finish_request();
            writeln!(out, "{}", line(&error_value(&e.to_string())))?;
            return out.flush();
        }
    };
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let cancel = CancelToken::new();
    shared
        .active
        .lock()
        .expect("active-request lock")
        .insert(id, cancel.clone());

    let result = (|| -> std::io::Result<()> {
        let (_, queued) = shared.pool.depth();
        let mut fields = vec![
            ("event", Value::String("accepted".into())),
            ("id", Value::Number(id as f64)),
            ("cost", Value::Number(cost)),
            ("queue_depth", Value::Number(queued as f64)),
        ];
        if let Some(shard) = shard {
            // Echo the slice so fleet coordinator logs can attribute it.
            fields.push(("shard", Value::String(shard.label())));
        }
        let accepted = object(fields);
        writeln!(out, "{}", line(&accepted))?;
        out.flush()?;

        let enqueued = Instant::now();
        let permit = match shared.pool.acquire(cost, &cancel) {
            Ok(permit) => permit,
            Err(e) => {
                match e {
                    AdmissionError::QueueFull { .. } => shared.rejected.fetch_add(1, Ordering::SeqCst),
                    AdmissionError::Cancelled => shared.cancelled.fetch_add(1, Ordering::SeqCst),
                };
                let message = geattack_core::GeError::Protocol(format!("request {id} not admitted: {e}")).to_string();
                writeln!(out, "{}", line(&error_value(&message)))?;
                return out.flush();
            }
        };
        engine
            .metrics()
            .histogram("request.wait_ms")
            .record(enqueued.elapsed().as_secs_f64() * 1e3);
        let (running, _) = shared.pool.depth();
        shared.peak_in_flight.fetch_max(running, Ordering::SeqCst);
        shared.refresh_gauges();

        let run_started = Instant::now();
        let outcome = stream_sweep_session(engine, spec, shard, &cancel, out);
        engine
            .metrics()
            .histogram("request.run_ms")
            .record(run_started.elapsed().as_secs_f64() * 1e3);
        drop(permit);
        shared.refresh_gauges();
        match outcome? {
            RequestEnd::Done => shared.served.fetch_add(1, Ordering::SeqCst),
            RequestEnd::Failed => shared.failed.fetch_add(1, Ordering::SeqCst),
            RequestEnd::Cancelled => shared.cancelled.fetch_add(1, Ordering::SeqCst),
        };
        Ok(())
    })();
    if result.is_err() {
        // The connection died mid-request: the session was cancelled and
        // drained by the streamer; account it here.
        shared.cancelled.fetch_add(1, Ordering::SeqCst);
        shared.refresh_gauges();
    }
    shared.active.lock().expect("active-request lock").remove(&id);
    shared.finish_request();
    result
}

/// Parses a sweep request line: a bare spec (the original protocol), or the
/// fleet coordinator's `{"spec": {...}, "shard": "I/N"}` wrapper naming a
/// deterministic grid slice. A wrapper without a `shard` field runs the whole
/// grid, exactly like the bare form.
fn parse_sweep_request(request: &str) -> Result<(SweepSpec, Option<Shard>), String> {
    let wrapped = serde_json::from_str::<Value>(request)
        .ok()
        .filter(|value| value.get_field("spec").is_ok());
    let Some(value) = wrapped else {
        return SweepSpec::from_json(request).map(|spec| (spec, None));
    };
    let spec_text =
        serde_json::to_string(value.get_field("spec").expect("presence checked")).map_err(|e| e.to_string())?;
    let spec = SweepSpec::from_json(&spec_text)?;
    let shard = match value.get_field("shard") {
        Err(_) => None,
        Ok(Value::String(label)) => {
            let shard = Shard::parse(label).map_err(|e| e.to_string())?;
            shard.validate().map_err(|e| e.to_string())?;
            Some(shard)
        }
        Ok(other) => {
            return Err(format!(
                "`shard` must be an \"I/N\" string, found {}",
                serde_json::to_string(other).unwrap_or_default()
            ))
        }
    };
    Ok((spec, shard))
}

/// The parsed form of a control request line, when the line is one.
fn control_request(request: &str) -> Option<(String, Value)> {
    let value: Value = serde_json::from_str(request).ok()?;
    match value.get_field("request") {
        Ok(Value::String(kind)) => Some((kind.clone(), value.clone())),
        _ => None,
    }
}

/// Answers one control request (`health`, `stats`, `cancel`, `drain`).
fn handle_control(shared: &ServeShared, kind: &str, request: &Value) -> Value {
    match kind {
        "health" => health_value(shared),
        "stats" => stats_value(shared),
        "cancel" => {
            let id = match request.get_field("id") {
                Ok(Value::Number(id)) => *id as u64,
                _ => {
                    return error_value(
                        &geattack_core::GeError::Protocol("cancel requires a numeric `id` field".to_string())
                            .to_string(),
                    )
                }
            };
            let token = shared.active.lock().expect("active-request lock").get(&id).cloned();
            match token {
                Some(token) => {
                    token.cancel("cancel requested");
                    shared.pool.poke();
                    object(vec![
                        ("event", Value::String("cancelled".into())),
                        ("id", Value::Number(id as f64)),
                    ])
                }
                None => error_value(
                    &geattack_core::GeError::Protocol(format!("no active request with id {id}")).to_string(),
                ),
            }
        }
        "drain" => {
            shared.draining.store(true, Ordering::SeqCst);
            let (running, queued) = shared.pool.depth();
            object(vec![
                ("event", Value::String("draining".into())),
                ("in_flight", Value::Number(running as f64)),
                ("queued", Value::Number(queued as f64)),
            ])
        }
        other => error_value(
            &geattack_core::GeError::Protocol(format!(
                "unknown request `{other}` (known: health, stats, cancel, drain)"
            ))
            .to_string(),
        ),
    }
}

/// Reads the next request line, tolerating read-timeout ticks (used to notice
/// daemon shutdown on otherwise idle connections). `Ok(None)` means the peer
/// closed the connection or the daemon is stopping.
fn read_request_line(reader: &mut BufReader<TcpStream>, shared: &ServeShared) -> std::io::Result<Option<String>> {
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(buf)),
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                // Partial data (if any) stays appended to `buf`; keep reading
                // unless the daemon is going away.
                if shared.is_stopping() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Handles one connection: one request per line until the peer closes or the
/// daemon stops. Control requests (`stats`, `health`, `cancel`, `drain`)
/// answer inline and never count toward `--max-requests`.
fn handle_connection(stream: TcpStream, shared: &ServeShared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    // A wedged client must not stall graceful drain forever.
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(request) = read_request_line(&mut reader, shared)? {
        let request = request.trim().to_string();
        if request.is_empty() {
            continue;
        }
        if let Some((kind, value)) = control_request(&request) {
            let response = handle_control(shared, &kind, &value);
            writeln!(writer, "{}", line(&response))?;
            writer.flush()?;
            continue;
        }
        match parse_sweep_request(&request) {
            Err(e) => {
                shared.failed.fetch_add(1, Ordering::SeqCst);
                let err = geattack_core::GeError::Protocol(e);
                writeln!(writer, "{}", line(&error_value(&err.to_string())))?;
                writer.flush()?;
            }
            Ok((spec, shard)) => {
                if shared.is_draining() {
                    shared.rejected.fetch_add(1, Ordering::SeqCst);
                    let err =
                        geattack_core::GeError::Protocol("draining: not accepting new sweep requests".to_string());
                    writeln!(writer, "{}", line(&error_value(&err.to_string())))?;
                    writer.flush()?;
                    continue;
                }
                if !shared.reserve_request() {
                    // --max-requests reached: close the connection like the
                    // serial daemon did once its budget was spent.
                    break;
                }
                run_sweep_request(shared, spec, shard, &mut writer)?;
                if shared
                    .max_requests
                    .is_some_and(|max| shared.accepted.load(Ordering::SeqCst) >= max)
                {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// The daemon loop: accepts connections concurrently (one handler thread
/// each) and executes line-delimited sweep requests against one shared engine
/// through a bounded cost-aware worker pool. Returns the number of admitted
/// sweep requests once the daemon stops: after `max_requests` admitted
/// requests have finished, or after a `drain` control request / a set
/// `term_signal` (SIGTERM) has let in-flight work complete. Per-connection
/// I/O errors end that connection, not the daemon.
pub fn serve(listener: TcpListener, engine: &Engine, options: ServeOptions) -> std::io::Result<usize> {
    listener.set_nonblocking(true)?;
    let shared = Arc::new(ServeShared {
        engine: engine.clone(),
        pool: WorkerPool::new(options.workers, options.queue_limit),
        started: Instant::now(),
        max_requests: options.max_requests,
        fleet_id: options.fleet_id.clone(),
        accepted: AtomicUsize::new(0),
        outstanding: AtomicUsize::new(0),
        served: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        cancelled: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        peak_in_flight: AtomicUsize::new(0),
        next_id: AtomicU64::new(1),
        active: Mutex::new(HashMap::new()),
        draining: AtomicBool::new(false),
        stopping: AtomicBool::new(false),
    });
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if let Some(term) = options.term_signal {
            if term.load(Ordering::SeqCst) {
                shared.draining.store(true, Ordering::SeqCst);
            }
        }
        let budget_spent = options
            .max_requests
            .is_some_and(|max| shared.accepted.load(Ordering::SeqCst) >= max);
        if (shared.is_draining() || budget_spent) && shared.outstanding.load(Ordering::SeqCst) == 0 {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.is_draining() || budget_spent {
                    // Refused: the daemon is winding down.
                    drop(stream);
                    continue;
                }
                let shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    if let Err(e) = handle_connection(stream, &shared) {
                        eprintln!("serve: connection ended: {e}");
                    }
                }));
            }
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Stop idle connections and wait for every handler to notice.
    shared.stopping.store(true, Ordering::SeqCst);
    for handle in handlers {
        let _ = handle.join();
    }
    Ok(shared.accepted.load(Ordering::SeqCst))
}
