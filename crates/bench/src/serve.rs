//! The `geattack-serve` wire protocol: sweep specs in, NDJSON cell events out.
//!
//! The daemon side ([`serve`]) accepts TCP connections and reads one JSON
//! sweep spec per line (NDJSON framing — multi-line spec files must be
//! compacted to a single line, e.g. `jq -c . spec.json`). Each request is
//! submitted to one shared [`Engine`], so every request of the daemon's
//! lifetime shares one prepared-experiment cache; the session's events stream
//! back as NDJSON while cells complete:
//!
//! ```text
//! {"event":"planned","position":0,"family":"ba-shapes","scale":0.08,"seed":0,"explainer":"GNNExplainer"}
//! {"event":"started","position":0}
//! {"event":"cell","position":0,"cells":[{...SweepCell...}, ...],"timing_ms":{"prepare":...,"total":...}}
//! {"event":"failed","position":3,"kind":"prepare","error":"..."}   (remaining cells still run)
//! {"event":"done","sweep":"quick","report":{...},"cache":{"hits":4,...},"telemetry":{...}}
//! {"event":"error","error":"..."}                                  (request-level failure)
//! ```
//!
//! A `failed` cell does not abort the session — the engine keeps executing and
//! streaming the remaining cells — but a request with any failed cell cannot
//! assemble a complete report, so it terminates with an `error` event (listing
//! every failed position) instead of `done`. The `cache` counters of the
//! `done` event are per-request deltas, not daemon-lifetime totals.
//!
//! Besides sweep specs, a request line may be a control request:
//!
//! ```text
//! {"request":"health"} → {"event":"health","status":"ok","uptime_ms":...}
//! {"request":"stats"}  → {"event":"stats","uptime_ms":...,"requests":{...},"cache":{...},"cells":{...},"latency_ms":{...}}
//! ```
//!
//! `stats` exports the daemon-lifetime view: requests served/failed, the
//! shared cache's counters with a live hit rate (plus encode/decode byte
//! totals), the engine's cell counters and its per-cell / per-phase latency
//! histograms as `{count,p50,p95,p99,max}` summaries.
//!
//! The `done` event embeds the full assembled [`SweepReport`] as a JSON value.
//! Because the workspace's JSON codec round-trips every number exactly and
//! preserves object field order, pretty-printing that value reproduces the
//! `results/sweep_<name>.json` artifact of a `geattack-sweep` run of the same
//! spec **byte for byte** — the serve round-trip test and the CI `serve-smoke`
//! job both pin this.
//!
//! The client side ([`submit`]) connects (with retries, so scripts can start
//! the daemon concurrently), sends one spec, surfaces progress lines and
//! returns the reassembled pretty report.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use serde::Value;

use geattack_core::engine::{CellEvent, Engine};
use geattack_core::sweep::PlannedCell;
use geattack_scenarios::SweepSpec;

/// Serializes one protocol event as a compact single line.
fn line(value: &Value) -> String {
    serde_json::to_string(value).expect("protocol events always serialize")
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn event_value(event: &CellEvent) -> Value {
    match event {
        CellEvent::Planned { cell } => planned_value(cell),
        CellEvent::Started { position } => object(vec![
            ("event", Value::String("started".into())),
            ("position", Value::Number(*position as f64)),
        ]),
        CellEvent::Finished {
            position,
            cells,
            timing,
        } => object(vec![
            ("event", Value::String("cell".into())),
            ("position", Value::Number(*position as f64)),
            ("cells", serde_json::to_value(cells)),
            (
                "timing_ms",
                object(vec![
                    ("prepare", Value::Number(timing.prepare_ms)),
                    ("attack", Value::Number(timing.attack_ms)),
                    ("explain", Value::Number(timing.explain_ms)),
                    ("detect", Value::Number(timing.detect_ms)),
                    ("total", Value::Number(timing.total_ms)),
                ]),
            ),
        ]),
        CellEvent::Failed { position, error } => object(vec![
            ("event", Value::String("failed".into())),
            ("position", Value::Number(*position as f64)),
            ("kind", Value::String(error.kind().to_string())),
            ("error", Value::String(error.to_string())),
        ]),
    }
}

fn planned_value(cell: &PlannedCell) -> Value {
    object(vec![
        ("event", Value::String("planned".into())),
        ("position", Value::Number(cell.position as f64)),
        ("family", Value::String(cell.family.clone())),
        ("scale", Value::Number(cell.scale)),
        ("seed", Value::Number(cell.seed as f64)),
        ("explainer", Value::String(cell.explainer.clone())),
    ])
}

fn error_value(message: &str) -> Value {
    object(vec![
        ("event", Value::String("error".into())),
        ("error", Value::String(message.to_string())),
    ])
}

/// Milliseconds latency distribution as the protocol's `{count,p50,p95,p99,max}`
/// object.
fn latency_value(latency: &geattack_core::LatencySummary) -> Value {
    object(vec![
        ("count", Value::Number(latency.count as f64)),
        ("p50", Value::Number(latency.p50)),
        ("p95", Value::Number(latency.p95)),
        ("p99", Value::Number(latency.p99)),
        ("max", Value::Number(latency.max)),
    ])
}

/// Same summary shape, straight from a histogram snapshot.
fn histogram_value(snap: &geattack_telemetry::HistogramSnapshot) -> Value {
    object(vec![
        ("count", Value::Number(snap.count as f64)),
        ("p50", Value::Number(snap.p50)),
        ("p95", Value::Number(snap.p95)),
        ("p99", Value::Number(snap.p99)),
        ("max", Value::Number(snap.max)),
    ])
}

/// Daemon-lifetime observability state behind the `stats`/`health` requests.
#[derive(Debug)]
pub struct ServeState {
    started: Instant,
    requests_served: u64,
    requests_failed: u64,
}

impl ServeState {
    /// Fresh state; the daemon's uptime starts now.
    pub fn new() -> Self {
        ServeState {
            started: Instant::now(),
            requests_served: 0,
            requests_failed: 0,
        }
    }
}

impl Default for ServeState {
    fn default() -> Self {
        ServeState::new()
    }
}

/// The `health` response: liveness plus uptime.
fn health_value(state: &ServeState) -> Value {
    object(vec![
        ("event", Value::String("health".into())),
        ("status", Value::String("ok".into())),
        ("uptime_ms", Value::Number(state.started.elapsed().as_secs_f64() * 1e3)),
    ])
}

/// The `stats` response: daemon-lifetime request counters, the shared cache's
/// live counters and hit rate, the engine's cell counters and its latency
/// histograms summarized to percentiles.
fn stats_value(engine: &Engine, state: &ServeState) -> Value {
    let cache = match engine.cache_metrics() {
        None => Value::Null,
        Some(snapshot) => {
            let count = |name: &str| snapshot.counters.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v);
            let (hits, misses) = (count("cache.hits"), count("cache.misses"));
            let lookups = hits + misses;
            let hit_rate = if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            };
            object(vec![
                ("hits", Value::Number(hits as f64)),
                ("misses", Value::Number(misses as f64)),
                ("evictions", Value::Number(count("cache.evictions") as f64)),
                ("hit_rate", Value::Number(hit_rate)),
                ("bytes_read", Value::Number(count("cache.bytes_read") as f64)),
                ("bytes_written", Value::Number(count("cache.bytes_written") as f64)),
                ("bytes_encoded", Value::Number(count("persist.bytes_encoded") as f64)),
                ("bytes_decoded", Value::Number(count("persist.bytes_decoded") as f64)),
            ])
        }
    };
    let metrics = engine.metrics();
    let cells = object(vec![
        ("planned", Value::Number(metrics.counter_value("cells.planned") as f64)),
        ("started", Value::Number(metrics.counter_value("cells.started") as f64)),
        (
            "finished",
            Value::Number(metrics.counter_value("cells.finished") as f64),
        ),
        ("failed", Value::Number(metrics.counter_value("cells.failed") as f64)),
    ]);
    let latency = object(
        [
            ("cell_total", "cell.total_ms"),
            ("prepare", "phase.prepare_ms"),
            ("attack", "phase.attack_ms"),
            ("explain", "phase.explain_ms"),
            ("detect", "phase.detect_ms"),
        ]
        .into_iter()
        .map(|(label, name)| (label, histogram_value(&metrics.histogram(name).snapshot())))
        .collect(),
    );
    object(vec![
        ("event", Value::String("stats".into())),
        ("uptime_ms", Value::Number(state.started.elapsed().as_secs_f64() * 1e3)),
        (
            "requests",
            object(vec![
                ("served", Value::Number(state.requests_served as f64)),
                ("failed", Value::Number(state.requests_failed as f64)),
            ]),
        ),
        ("cache", cache),
        ("cells", cells),
        ("latency_ms", latency),
    ])
}

/// Runs one sweep request through the engine and streams its events to `out`.
/// Request-level failures (bad spec, failed cells) end in an `error` event;
/// transport failures propagate as `io::Error` and end the connection.
/// Returns whether the request reached `done`.
pub fn stream_sweep(engine: &Engine, spec: SweepSpec, out: &mut impl Write) -> std::io::Result<bool> {
    // The engine's counters accumulate over its lifetime; the `done` event
    // reports this request's delta.
    let counters_before = engine.cache_counters();
    let mut session = match engine.submit(spec) {
        Ok(session) => session,
        Err(e) => {
            writeln!(out, "{}", line(&error_value(&e.to_string())))?;
            out.flush()?;
            return Ok(false);
        }
    };
    for event in session.by_ref() {
        writeln!(out, "{}", line(&event_value(&event)))?;
        out.flush()?;
    }
    let mut reached_done = false;
    match session.wait().and_then(|run| {
        engine
            .merge(std::slice::from_ref(&run.shard))
            .map(|report| (run, report))
    }) {
        Ok((run, report)) => {
            let cache = match (counters_before, engine.cache_counters()) {
                (Some(before), Some(after)) => object(vec![
                    ("hits", Value::Number(after.hits.saturating_sub(before.hits) as f64)),
                    (
                        "misses",
                        Value::Number(after.misses.saturating_sub(before.misses) as f64),
                    ),
                    (
                        "evictions",
                        Value::Number(after.evictions.saturating_sub(before.evictions) as f64),
                    ),
                ]),
                _ => Value::Null,
            };
            let t = &run.telemetry;
            let telemetry = object(vec![
                ("planned_cells", Value::Number(t.planned_cells as f64)),
                ("finished_cells", Value::Number(t.finished_cells as f64)),
                ("failed_cells", Value::Number(t.failed_cells as f64)),
                (
                    "phase_totals_ms",
                    object(vec![
                        ("prepare", Value::Number(t.phase_totals.prepare_ms)),
                        ("attack", Value::Number(t.phase_totals.attack_ms)),
                        ("explain", Value::Number(t.phase_totals.explain_ms)),
                        ("detect", Value::Number(t.phase_totals.detect_ms)),
                        ("total", Value::Number(t.phase_totals.total_ms)),
                    ]),
                ),
                ("cell_latency_ms", latency_value(&t.cell_latency)),
            ]);
            let done = object(vec![
                ("event", Value::String("done".into())),
                ("sweep", Value::String(report.sweep.clone())),
                ("report", serde_json::to_value(&report)),
                ("cache", cache),
                ("telemetry", telemetry),
            ]);
            writeln!(out, "{}", line(&done))?;
            reached_done = true;
        }
        Err(e) => {
            writeln!(out, "{}", line(&error_value(&e.to_string())))?;
        }
    }
    out.flush()?;
    Ok(reached_done)
}

/// The kind of control request a line carries, when it is one.
fn control_request(request: &str) -> Option<String> {
    let value: Value = serde_json::from_str(request).ok()?;
    match value.get_field("request") {
        Ok(Value::String(kind)) => Some(kind.clone()),
        _ => None,
    }
}

/// Handles one connection: one request per line until the peer closes.
/// Increments `served` through the reference as each successfully-parsed
/// sweep request completes — even when the connection later errors — so the
/// daemon's `--max-requests` accounting never loses executed requests.
/// Control requests (`stats`, `health`) answer inline and never count toward
/// `--max-requests`.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    state: &mut ServeState,
    served: &mut usize,
    max_requests: Option<usize>,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for request in reader.lines() {
        let request = request?;
        if request.trim().is_empty() {
            continue;
        }
        if let Some(kind) = control_request(&request) {
            let response = match kind.as_str() {
                "health" => health_value(state),
                "stats" => stats_value(engine, state),
                other => error_value(
                    &geattack_core::GeError::Protocol(format!("unknown request `{other}` (known: health, stats)"))
                        .to_string(),
                ),
            };
            writeln!(writer, "{}", line(&response))?;
            writer.flush()?;
            continue;
        }
        match SweepSpec::from_json(&request) {
            Err(e) => {
                state.requests_failed += 1;
                let err = geattack_core::GeError::Protocol(e);
                writeln!(writer, "{}", line(&error_value(&err.to_string())))?;
                writer.flush()?;
            }
            Ok(spec) => {
                *served += 1;
                if stream_sweep(engine, spec, &mut writer)? {
                    state.requests_served += 1;
                } else {
                    state.requests_failed += 1;
                }
                if max_requests.is_some_and(|max| *served >= max) {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// The daemon loop: accepts connections serially and serves line-delimited
/// sweep requests against one shared engine (and therefore one shared
/// prepared-experiment cache). Stops after `max_requests` successfully-parsed
/// requests when given (the CI smoke test uses this for a clean exit);
/// otherwise loops until the process is killed. Per-connection I/O errors end
/// that connection, not the daemon.
pub fn serve(listener: TcpListener, engine: &Engine, max_requests: Option<usize>) -> std::io::Result<usize> {
    let mut state = ServeState::new();
    let mut served = 0usize;
    for stream in listener.incoming() {
        if max_requests.is_some_and(|max| served >= max) {
            break;
        }
        match stream {
            Err(e) => return Err(e),
            Ok(stream) => {
                if let Err(e) = handle_connection(stream, engine, &mut state, &mut served, max_requests) {
                    eprintln!("serve: connection ended: {e}");
                }
            }
        }
        if max_requests.is_some_and(|max| served >= max) {
            break;
        }
    }
    Ok(served)
}

/// What a successful [`submit`] brings back. A request with any failed cell
/// never reaches `done` (the server terminates it with an `error` event), so
/// a returned outcome always carries a complete report.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// Sweep name from the `done` event.
    pub sweep: String,
    /// The assembled report, pretty-printed — byte-identical to the
    /// `results/sweep_<name>.json` a `geattack-sweep` run of the same spec
    /// writes.
    pub report_pretty: String,
    /// This request's cache-counter delta on the daemon (`Value::Null` when
    /// the daemon runs uncached).
    pub cache: Value,
}

/// Connects to the daemon, retrying until `timeout` elapses (so a script can
/// launch daemon and client together).
pub fn connect_retry(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("cannot connect to {addr}: {e}"));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// Submits one sweep spec (JSON text, any layout — it is compacted to one
/// line) and consumes the event stream until `done`/`error`. `progress` is
/// called with one human-readable line per streamed event.
pub fn submit(
    addr: &str,
    spec_text: &str,
    timeout: Duration,
    mut progress: impl FnMut(String),
) -> Result<SubmitOutcome, String> {
    let spec_value: Value = serde_json::from_str(spec_text).map_err(|e| format!("invalid spec JSON: {e}"))?;
    let request = serde_json::to_string(&spec_value).map_err(|e| e.to_string())?;

    let stream = connect_retry(addr, timeout)?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let reader = BufReader::new(stream);
    writeln!(writer, "{request}").map_err(|e| format!("cannot send request: {e}"))?;
    writer.flush().map_err(|e| format!("cannot send request: {e}"))?;

    for response in reader.lines() {
        let response = response.map_err(|e| format!("connection lost: {e}"))?;
        let value: Value = serde_json::from_str(&response).map_err(|e| format!("malformed event: {e}"))?;
        let event = match value.get_field("event") {
            Ok(Value::String(event)) => event.clone(),
            _ => return Err(format!("event line without an `event` field: {response}")),
        };
        let position = || match value.get_field("position") {
            Ok(Value::Number(p)) => *p as usize,
            _ => usize::MAX,
        };
        match event.as_str() {
            "planned" => {}
            "started" => progress(format!("cell {} started", position())),
            "cell" => progress(format!("cell {} finished", position())),
            "failed" => progress(format!("cell {} FAILED", position())),
            "error" => {
                let message = match value.get_field("error") {
                    Ok(Value::String(m)) => m.clone(),
                    _ => "unspecified server error".to_string(),
                };
                return Err(message);
            }
            "done" => {
                let report = value
                    .get_field("report")
                    .map_err(|_| "done event without a report".to_string())?;
                let sweep = match value.get_field("sweep") {
                    Ok(Value::String(s)) => s.clone(),
                    _ => String::new(),
                };
                let cache = value.get_field("cache").ok().cloned().unwrap_or(Value::Null);
                return Ok(SubmitOutcome {
                    sweep,
                    report_pretty: serde_json::to_string_pretty(report).map_err(|e| e.to_string())?,
                    cache,
                });
            }
            other => return Err(format!("unknown event `{other}`")),
        }
    }
    Err("connection closed before a `done` event".to_string())
}
