//! Bounded, cost-aware execution slots for the serve daemon.
//!
//! A [`WorkerPool`] is the admission gate between connection handler threads
//! and the shared engine: at most `workers` requests execute at once, at most
//! `queue_limit` more may wait, and the queue is **cost-ordered** — when a
//! slot frees, the cheapest waiting request (by the engine's per-cell cost
//! estimate) runs next, so a quick grid never queues behind a scale-0.6 sweep
//! that arrived moments earlier. Pure shortest-job-first can starve expensive
//! requests under a stream of cheap ones, so the scheduler ages the queue:
//! once the oldest waiter has been bypassed [`MAX_BYPASS`] times it runs next
//! regardless of cost.
//!
//! Waiting is cancellable: a queued request whose [`CancelToken`] is set
//! (client disconnect noticed later, or an explicit `cancel` control request)
//! leaves the queue with [`AdmissionError::Cancelled`] instead of executing.
//! Cancellers call [`WorkerPool::poke`] to wake the waiters promptly; waiters
//! also poll their token on a short timeout as a backstop.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use geattack_core::CancelToken;

/// How many times the oldest waiter may be passed over by cheaper arrivals
/// before it runs next regardless of cost.
pub const MAX_BYPASS: u32 = 8;

/// Why an [`WorkerPool::acquire`] call did not yield a permit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The wait queue is at `--queue-limit`; the request is rejected so the
    /// client can back off instead of piling up unbounded work.
    QueueFull {
        /// The configured queue limit.
        limit: usize,
    },
    /// The request's cancellation token was set while it waited.
    Cancelled,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { limit } => {
                write!(f, "queue full: {limit} request(s) already waiting (--queue-limit)")
            }
            AdmissionError::Cancelled => write!(f, "cancelled while queued"),
        }
    }
}

/// One queued acquire call.
#[derive(Debug)]
struct Waiter {
    seq: u64,
    cost: f64,
    /// Times a cheaper, younger waiter was scheduled ahead of this one while
    /// it was the oldest in the queue.
    bypassed: u32,
    /// Set when the scheduler grants this waiter a slot (reserved in
    /// `running`); the waiter removes itself when it wakes and observes this.
    granted: bool,
}

#[derive(Debug)]
struct PoolState {
    /// Slots in use: executing permits plus granted-but-not-yet-claimed
    /// waiters (their slot is reserved at grant time so the pool never
    /// overcommits).
    running: usize,
    waiters: Vec<Waiter>,
    next_seq: u64,
}

impl PoolState {
    /// Grants free slots to waiters: cheapest first, unless the oldest waiter
    /// has aged past [`MAX_BYPASS`].
    fn schedule(&mut self, workers: usize) {
        while self.running < workers {
            let Some(oldest) = self
                .waiters
                .iter()
                .enumerate()
                .filter(|(_, w)| !w.granted)
                .min_by_key(|(_, w)| w.seq)
                .map(|(i, _)| i)
            else {
                return;
            };
            let cheapest = self
                .waiters
                .iter()
                .enumerate()
                .filter(|(_, w)| !w.granted)
                .min_by(|(_, a), (_, b)| {
                    a.cost
                        .partial_cmp(&b.cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.seq.cmp(&b.seq))
                })
                .map(|(i, _)| i)
                .expect("an ungranted waiter exists");
            let pick = if self.waiters[oldest].bypassed >= MAX_BYPASS {
                oldest
            } else {
                cheapest
            };
            if pick != oldest {
                self.waiters[oldest].bypassed += 1;
            }
            self.waiters[pick].granted = true;
            self.running += 1;
        }
    }

    fn position(&self, seq: u64) -> Option<usize> {
        self.waiters.iter().position(|w| w.seq == seq)
    }
}

/// The bounded, cost-aware admission gate. See the module docs.
#[derive(Debug)]
pub struct WorkerPool {
    workers: usize,
    queue_limit: usize,
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl WorkerPool {
    /// A pool with `workers` concurrent execution slots and room for
    /// `queue_limit` waiting requests. `workers` is clamped to at least 1.
    pub fn new(workers: usize, queue_limit: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
            queue_limit,
            state: Mutex::new(PoolState {
                running: 0,
                waiters: Vec::new(),
                next_seq: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of concurrent execution slots.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maximum number of waiting requests before admission rejects.
    pub fn queue_limit(&self) -> usize {
        self.queue_limit
    }

    /// `(running, queued)` at this instant.
    pub fn depth(&self) -> (usize, usize) {
        let state = self.state.lock().expect("pool lock");
        (state.running, state.waiters.len())
    }

    /// Wakes every waiter so cancelled requests leave the queue promptly.
    pub fn poke(&self) {
        self.cv.notify_all();
    }

    /// Blocks until an execution slot is free (cost-ordered among waiters) and
    /// returns the RAII permit occupying it. Fails fast with `QueueFull` when
    /// the wait queue is at capacity, and with `Cancelled` when `cancel` is
    /// set before a slot is granted.
    pub fn acquire(&self, cost: f64, cancel: &CancelToken) -> Result<Permit<'_>, AdmissionError> {
        let mut state = self.state.lock().expect("pool lock");
        if cancel.is_cancelled() {
            return Err(AdmissionError::Cancelled);
        }
        // Fast path: a free slot and nobody ahead of us.
        if state.running < self.workers && state.waiters.is_empty() {
            state.running += 1;
            return Ok(Permit { pool: self });
        }
        if state.waiters.len() >= self.queue_limit {
            return Err(AdmissionError::QueueFull {
                limit: self.queue_limit,
            });
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.waiters.push(Waiter {
            seq,
            cost,
            bypassed: 0,
            granted: false,
        });
        state.schedule(self.workers);
        loop {
            if let Some(i) = state.position(seq) {
                if state.waiters[i].granted {
                    state.waiters.remove(i);
                    // The slot was reserved at grant time; just claim it.
                    return Ok(Permit { pool: self });
                }
                if cancel.is_cancelled() {
                    // Not granted (the granted arm above returns), so no slot
                    // was reserved for us — just leave the queue.
                    state.waiters.remove(i);
                    state.schedule(self.workers);
                    self.cv.notify_all();
                    return Err(AdmissionError::Cancelled);
                }
            }
            // Timed wait as a cancellation backstop: cancellers poke the
            // condvar, but a missed wakeup must not strand the waiter.
            let (next, _) = self
                .cv
                .wait_timeout(state, Duration::from_millis(100))
                .expect("pool lock");
            state = next;
        }
    }
}

/// An occupied execution slot; dropping it frees the slot and schedules the
/// next waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    pool: &'a WorkerPool,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.pool.state.lock().expect("pool lock");
        state.running -= 1;
        state.schedule(self.pool.workers);
        self.pool.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    /// Queues an acquire on a thread and reports when it got its permit.
    fn spawn_acquire(
        pool: &Arc<WorkerPool>,
        cost: f64,
        done: mpsc::Sender<(&'static str, std::time::Instant)>,
        tag: &'static str,
    ) -> std::thread::JoinHandle<Result<(), AdmissionError>> {
        let pool = Arc::clone(pool);
        std::thread::spawn(move || {
            let token = CancelToken::new();
            let permit = pool.acquire(cost, &token)?;
            done.send((tag, std::time::Instant::now())).expect("report");
            // Hold briefly so concurrent acquires observe the occupancy.
            std::thread::sleep(Duration::from_millis(20));
            drop(permit);
            Ok(())
        })
    }

    /// Waits until `queued` requests are waiting in the pool.
    fn wait_for_queue(pool: &WorkerPool, queued: usize) {
        for _ in 0..200 {
            if pool.depth().1 >= queued {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("queue never reached depth {queued}");
    }

    #[test]
    fn single_worker_runs_cheapest_waiter_first() {
        let pool = Arc::new(WorkerPool::new(1, 16));
        let gate = CancelToken::new();
        let first = pool.acquire(1.0, &gate).expect("slot free");
        let (tx, rx) = mpsc::channel();
        // Queue an expensive then a cheap request while the slot is held.
        let heavy = spawn_acquire(&pool, 1000.0, tx.clone(), "heavy");
        wait_for_queue(&pool, 1);
        let cheap = spawn_acquire(&pool, 1.0, tx, "cheap");
        wait_for_queue(&pool, 2);
        drop(first);
        let (first_tag, _) = rx.recv().expect("one waiter runs");
        assert_eq!(first_tag, "cheap", "the cheap request jumps the queue");
        let (second_tag, _) = rx.recv().expect("the other waiter runs");
        assert_eq!(second_tag, "heavy");
        heavy.join().expect("joins").expect("acquired");
        cheap.join().expect("joins").expect("acquired");
    }

    #[test]
    fn queue_limit_rejects_and_cancel_dequeues() {
        let pool = Arc::new(WorkerPool::new(1, 1));
        let gate = CancelToken::new();
        let held = pool.acquire(1.0, &gate).expect("slot free");

        let (tx, rx) = mpsc::channel();
        let queued = spawn_acquire(&pool, 5.0, tx, "queued");
        wait_for_queue(&pool, 1);
        // Queue is at its limit of 1: the next arrival is rejected.
        let err = pool.acquire(2.0, &CancelToken::new()).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { limit: 1 });
        assert!(err.to_string().contains("queue full"), "{err}");

        // A pre-cancelled token never waits.
        let cancelled = CancelToken::new();
        cancelled.cancel("test");
        assert_eq!(pool.acquire(2.0, &cancelled).unwrap_err(), AdmissionError::Cancelled);

        drop(held);
        queued.join().expect("joins").expect("acquired");
        rx.recv().expect("queued request ran");
    }

    #[test]
    fn cancelling_a_queued_waiter_releases_it_without_running() {
        let pool = Arc::new(WorkerPool::new(1, 16));
        let gate = CancelToken::new();
        let held = pool.acquire(1.0, &gate).expect("slot free");
        let token = CancelToken::new();
        let waiter = {
            let pool = Arc::clone(&pool);
            let token = token.clone();
            std::thread::spawn(move || pool.acquire(1.0, &token).map(|_| ()))
        };
        wait_for_queue(&pool, 1);
        token.cancel("client went away");
        pool.poke();
        assert_eq!(waiter.join().expect("joins").unwrap_err(), AdmissionError::Cancelled);
        assert_eq!(pool.depth(), (1, 0), "the cancelled waiter left the queue");
        drop(held);
    }

    #[test]
    fn aged_waiters_run_despite_cheaper_arrivals() {
        // Single-threaded check of the aging rule: after MAX_BYPASS bypasses
        // the oldest waiter is granted ahead of a cheaper one.
        let mut state = PoolState {
            running: 1,
            waiters: Vec::new(),
            next_seq: 0,
        };
        state.waiters.push(Waiter {
            seq: 0,
            cost: 1000.0,
            bypassed: MAX_BYPASS,
            granted: false,
        });
        state.waiters.push(Waiter {
            seq: 1,
            cost: 1.0,
            bypassed: 0,
            granted: false,
        });
        state.running = 0;
        state.schedule(1);
        assert!(state.waiters[0].granted, "the aged expensive waiter runs first");
        assert!(!state.waiters[1].granted);

        // Below the threshold the cheap waiter still wins and ages the oldest.
        let mut state = PoolState {
            running: 0,
            waiters: vec![
                Waiter {
                    seq: 0,
                    cost: 1000.0,
                    bypassed: 0,
                    granted: false,
                },
                Waiter {
                    seq: 1,
                    cost: 1.0,
                    bypassed: 0,
                    granted: false,
                },
            ],
            next_seq: 2,
        };
        state.schedule(1);
        assert!(state.waiters[1].granted);
        assert_eq!(state.waiters[0].bypassed, 1);
    }

    #[test]
    fn multiple_workers_run_concurrently() {
        let pool = Arc::new(WorkerPool::new(2, 16));
        let gate = CancelToken::new();
        let a = pool.acquire(1.0, &gate).expect("slot 1");
        let b = pool.acquire(1.0, &gate).expect("slot 2");
        assert_eq!(pool.depth(), (2, 0));
        drop(a);
        drop(b);
        assert_eq!(pool.depth(), (0, 0));
    }
}
