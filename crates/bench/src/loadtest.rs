//! The `geattack-loadtest` concurrency harness: N clients × mixed workloads
//! against a running `geattack-serve` daemon.
//!
//! Each client thread submits its share of requests over its own TCP
//! connection, round-robining the configured spec files with a per-client
//! offset so concurrent clients always mix cheap and heavy work. The harness
//! measures client-observed latency per request (connect → `done` event),
//! summarizes throughput and tail latency, verifies that every response for
//! the same spec is **byte-identical** across clients (the served-report
//! determinism invariant under concurrency), and snapshots the daemon's own
//! `stats` telemetry — queue wait/run histograms, peak in-flight — at the end
//! of the run.
//!
//! The result serializes to the JSON recorded in `BENCH_pr8.json` and printed
//! by the `geattack-loadtest` binary.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::Value;

use geattack_fleet::client::{control, submit};

/// What to run: how many clients, how many requests each, over which specs.
#[derive(Clone, Debug)]
pub struct LoadtestConfig {
    /// Daemon address, e.g. `127.0.0.1:7341`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Sweep submissions per client.
    pub requests_per_client: usize,
    /// `(label, spec JSON text)` pairs; clients round-robin these with a
    /// per-client offset so the live mix always spans the list.
    pub specs: Vec<(String, String)>,
    /// Connect + submit timeout per request.
    pub timeout: Duration,
}

/// `{count,p50,p95,p99,max,mean}` over a set of latencies, milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyQuantiles {
    pub count: usize,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
    pub mean: f64,
}

/// Summarizes a latency sample (any order; empty → all zeros).
pub fn quantiles(samples: &[f64]) -> LatencyQuantiles {
    if samples.is_empty() {
        return LatencyQuantiles::default();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let at = |q: f64| {
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    };
    LatencyQuantiles {
        count: sorted.len(),
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        max: *sorted.last().expect("non-empty"),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
    }
}

/// FNV-1a 64-bit digest, hex — enough to compare served reports for
/// byte-identity without a hashing dependency.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// One spec's aggregate across the run.
#[derive(Clone, Debug)]
pub struct SpecOutcome {
    /// The spec's label (file stem).
    pub label: String,
    /// Completed requests of this spec.
    pub completed: usize,
    /// Client-observed latency of this spec's requests.
    pub latency_ms: LatencyQuantiles,
    /// Digests of every distinct response body seen for this spec; length 1
    /// means every client got byte-identical bytes.
    pub digests: Vec<String>,
}

/// Everything a load-test run measured.
#[derive(Clone, Debug)]
pub struct LoadtestReport {
    pub clients: usize,
    pub requests_per_client: usize,
    /// Requests that reached `done`.
    pub completed: usize,
    /// Requests that errored (messages in `errors`).
    pub failed: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Client-observed latency over all completed requests.
    pub latency_ms: LatencyQuantiles,
    /// Per-spec breakdown, in the order the specs were configured.
    pub per_spec: Vec<SpecOutcome>,
    /// True iff every spec produced exactly one distinct response body.
    pub reports_consistent: bool,
    /// The daemon's `stats` response after the run (wait/run histograms,
    /// peak in-flight), when reachable.
    pub server_stats: Option<Value>,
    /// First few request errors, for diagnosis.
    pub errors: Vec<String>,
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn quantiles_value(q: &LatencyQuantiles) -> Value {
    object(vec![
        ("count", Value::Number(q.count as f64)),
        ("p50", Value::Number(q.p50)),
        ("p95", Value::Number(q.p95)),
        ("p99", Value::Number(q.p99)),
        ("max", Value::Number(q.max)),
        ("mean", Value::Number(q.mean)),
    ])
}

impl LoadtestReport {
    /// The report as a JSON value (the `BENCH_pr8.json` snapshot shape).
    pub fn to_value(&self) -> Value {
        object(vec![
            ("clients", Value::Number(self.clients as f64)),
            ("requests_per_client", Value::Number(self.requests_per_client as f64)),
            ("completed", Value::Number(self.completed as f64)),
            ("failed", Value::Number(self.failed as f64)),
            ("wall_ms", Value::Number(self.wall_ms)),
            ("throughput_rps", Value::Number(self.throughput_rps)),
            ("latency_ms", quantiles_value(&self.latency_ms)),
            (
                "per_spec",
                Value::Array(
                    self.per_spec
                        .iter()
                        .map(|s| {
                            object(vec![
                                ("label", Value::String(s.label.clone())),
                                ("completed", Value::Number(s.completed as f64)),
                                ("latency_ms", quantiles_value(&s.latency_ms)),
                                ("distinct_reports", Value::Number(s.digests.len() as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("reports_consistent", Value::Bool(self.reports_consistent)),
            ("server_stats", self.server_stats.clone().unwrap_or(Value::Null)),
            (
                "errors",
                Value::Array(self.errors.iter().map(|e| Value::String(e.clone())).collect()),
            ),
        ])
    }

    /// Pretty JSON of [`LoadtestReport::to_value`].
    pub fn to_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("report serializes")
    }

    /// One-line human summary for terminals and CI logs.
    pub fn summary_line(&self) -> String {
        format!(
            "{} clients × {} requests: {} done, {} failed in {:.1}s — {:.2} req/s, p50 {:.0}ms p95 {:.0}ms p99 {:.0}ms{}",
            self.clients,
            self.requests_per_client,
            self.completed,
            self.failed,
            self.wall_ms / 1e3,
            self.throughput_rps,
            self.latency_ms.p50,
            self.latency_ms.p95,
            self.latency_ms.p99,
            if self.reports_consistent {
                ", reports byte-identical"
            } else {
                ", REPORTS DIVERGED"
            }
        )
    }
}

/// The spec index client `client` uses for its `request`-th submission: a
/// round-robin with a per-client offset, so at any instant the in-flight mix
/// spans the spec list instead of every client hammering the same spec.
pub fn spec_index(client: usize, request: usize, spec_count: usize) -> usize {
    (client + request) % spec_count.max(1)
}

struct RequestRecord {
    spec: usize,
    latency_ms: f64,
}

/// Runs the load test: spawns the client threads, drives every request,
/// aggregates latency/digests and snapshots the daemon's `stats`. Errors only
/// on an empty/invalid configuration; individual request failures are counted
/// in the report instead.
pub fn run(config: &LoadtestConfig) -> Result<LoadtestReport, String> {
    if config.specs.is_empty() {
        return Err("loadtest needs at least one spec".to_string());
    }
    if config.clients == 0 || config.requests_per_client == 0 {
        return Err("loadtest needs at least one client and one request".to_string());
    }
    let records: Mutex<Vec<RequestRecord>> = Mutex::new(Vec::new());
    // spec index → digest → how many responses hashed to it.
    let digests: Mutex<Vec<BTreeMap<String, usize>>> = Mutex::new(vec![BTreeMap::new(); config.specs.len()]);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());

    let started = Instant::now();
    std::thread::scope(|scope| {
        let (records, digests, errors) = (&records, &digests, &errors);
        for client in 0..config.clients {
            scope.spawn(move || {
                for request in 0..config.requests_per_client {
                    let spec = spec_index(client, request, config.specs.len());
                    let (label, text) = &config.specs[spec];
                    let begun = Instant::now();
                    match submit(&config.addr, text, config.timeout, |_| {}) {
                        Ok(outcome) => {
                            let latency_ms = begun.elapsed().as_secs_f64() * 1e3;
                            records
                                .lock()
                                .expect("records lock")
                                .push(RequestRecord { spec, latency_ms });
                            *digests.lock().expect("digest lock")[spec]
                                .entry(fnv1a_hex(outcome.report_pretty.as_bytes()))
                                .or_insert(0) += 1;
                        }
                        Err(e) => errors
                            .lock()
                            .expect("errors lock")
                            .push(format!("client {client} request {request} ({label}): {e}")),
                    }
                }
            });
        }
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let records = records.into_inner().expect("records lock");
    let digests = digests.into_inner().expect("digest lock");
    let mut errors = errors.into_inner().expect("errors lock");
    errors.truncate(8);

    let all: Vec<f64> = records.iter().map(|r| r.latency_ms).collect();
    let per_spec: Vec<SpecOutcome> = config
        .specs
        .iter()
        .enumerate()
        .map(|(i, (label, _))| {
            let latencies: Vec<f64> = records.iter().filter(|r| r.spec == i).map(|r| r.latency_ms).collect();
            SpecOutcome {
                label: label.clone(),
                completed: latencies.len(),
                latency_ms: quantiles(&latencies),
                digests: digests[i].keys().cloned().collect(),
            }
        })
        .collect();
    let completed = records.len();
    let failed = config.clients * config.requests_per_client - completed;
    let reports_consistent = per_spec_consistent(&per_spec);
    let server_stats = control(&config.addr, "{\"request\":\"stats\"}", config.timeout).ok();
    Ok(LoadtestReport {
        clients: config.clients,
        requests_per_client: config.requests_per_client,
        completed,
        failed,
        wall_ms,
        throughput_rps: if wall_ms > 0.0 {
            completed as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        latency_ms: quantiles(&all),
        per_spec,
        reports_consistent,
        server_stats,
        errors,
    })
}

/// Every spec with at least one completion produced exactly one distinct
/// response body.
fn per_spec_consistent(per_spec: &[SpecOutcome]) -> bool {
    per_spec.iter().all(|s| s.completed == 0 || s.digests.len() == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_pick_order_statistics() {
        let q = quantiles(&[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]);
        assert_eq!(q.count, 10);
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p95, 100.0);
        assert_eq!(q.p99, 100.0);
        assert_eq!(q.max, 100.0);
        assert!((q.mean - 55.0).abs() < 1e-9);
        // Order-independent, and a singleton collapses to itself.
        assert_eq!(quantiles(&[3.0, 1.0, 2.0]).p50, 2.0);
        let single = quantiles(&[42.0]);
        assert_eq!((single.p50, single.p99, single.max), (42.0, 42.0, 42.0));
        assert_eq!(quantiles(&[]).count, 0);
    }

    #[test]
    fn fnv_digest_separates_bytes_and_is_stable() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"report"), fnv1a_hex(b"report"));
        assert_ne!(fnv1a_hex(b"report"), fnv1a_hex(b"report "));
    }

    #[test]
    fn per_client_offset_mixes_the_workload() {
        // With 2 specs, concurrent clients 0 and 1 start on different specs,
        // so the heavy spec never monopolizes the in-flight set.
        assert_eq!(spec_index(0, 0, 2), 0);
        assert_eq!(spec_index(1, 0, 2), 1);
        assert_eq!(spec_index(0, 1, 2), 1);
        assert_eq!(spec_index(1, 1, 2), 0);
        // Degenerate spec lists never divide by zero.
        assert_eq!(spec_index(3, 5, 0), 0);
    }

    #[test]
    fn report_serializes_with_consistency_verdict() {
        let report = LoadtestReport {
            clients: 2,
            requests_per_client: 3,
            completed: 6,
            failed: 0,
            wall_ms: 2000.0,
            throughput_rps: 3.0,
            latency_ms: quantiles(&[100.0, 200.0]),
            per_spec: vec![SpecOutcome {
                label: "quick".to_string(),
                completed: 6,
                latency_ms: quantiles(&[100.0, 200.0]),
                digests: vec!["abc".to_string()],
            }],
            reports_consistent: true,
            server_stats: None,
            errors: Vec::new(),
        };
        let json = report.to_pretty();
        assert!(json.contains("\"throughput_rps\": 3"), "{json}");
        assert!(json.contains("\"distinct_reports\": 1"), "{json}");
        assert!(report.summary_line().contains("byte-identical"));

        let diverged = LoadtestReport {
            per_spec: vec![SpecOutcome {
                digests: vec!["a".to_string(), "b".to_string()],
                ..report.per_spec[0].clone()
            }],
            reports_consistent: false,
            ..report
        };
        assert!(!per_spec_consistent(&diverged.per_spec));
        assert!(diverged.summary_line().contains("DIVERGED"));
    }
}
