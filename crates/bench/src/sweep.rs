//! Executor of declarative scenario sweeps (`geattack-sweep`).
//!
//! A [`SweepSpec`] describes a grid of `{family x scale x seed x attacker x
//! explainer x budget}` cells. The executor expands the grid in a fixed
//! deterministic order, prepares **one** experiment per (family, scale, seed,
//! explainer) cell — dataset generation, GCN training, victim selection and
//! (when PGExplainer inspects) explainer training — and reuses it across every
//! attacker and budget of that cell, the sharing trick the λ sweep introduced,
//! now applied to the whole grid. Prepared cells fan out across threads via
//! the `parallel` feature; because every pipeline stage is seed-deterministic,
//! a parallel sweep produces a byte-identical report to a serial one, which the
//! `sweep_end_to_end` integration test pins.

use serde::{Deserialize, Serialize};

use geattack_core::evaluation::{summarize_run, MeanStd};
use geattack_core::pipeline::{
    prepare, run_attacker_with_budget, AttackerKind, BudgetRule, ExplainerKind, GraphSource, PipelineConfig,
};
use geattack_core::report::to_json;
use geattack_graph::datasets::GeneratorConfig;
use geattack_scenarios::{ScenarioSpec, SweepSpec};

/// One fully-specified grid cell's results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// Graph family (registry name).
    pub family: String,
    /// Dataset scale of this cell.
    pub scale: f64,
    /// Seed of this cell.
    pub seed: u64,
    /// Inspector explainer display name.
    pub explainer: String,
    /// Attacker display name.
    pub attacker: String,
    /// Budget label (`degree` or the fixed edge count).
    pub budget: String,
    /// Node count of the generated graph (after LCC).
    pub nodes: usize,
    /// Undirected edge count of the generated graph.
    pub edges: usize,
    /// Victims actually attacked in this cell.
    pub victims: usize,
    /// Attack success rate toward any wrong label.
    pub asr: f64,
    /// Attack success rate toward the assigned target label.
    pub asr_t: f64,
    /// Mean Precision@K of adversarial-edge detection.
    pub precision: f64,
    /// Mean Recall@K.
    pub recall: f64,
    /// Mean F1@K.
    pub f1: f64,
    /// Mean NDCG@K.
    pub ndcg: f64,
}

/// Seed-aggregated results of one (family, scale, explainer, attacker, budget)
/// grid point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepAggregate {
    /// Graph family (registry name).
    pub family: String,
    /// Dataset scale.
    pub scale: f64,
    /// Inspector explainer display name.
    pub explainer: String,
    /// Attacker display name.
    pub attacker: String,
    /// Budget label.
    pub budget: String,
    /// Number of seeds aggregated (only cells with at least one victim count).
    pub seeds: usize,
    /// Total victims across seeds.
    pub victims: usize,
    /// ASR over seeds.
    pub asr: MeanStd,
    /// ASR-T over seeds.
    pub asr_t: MeanStd,
    /// Precision@K over seeds.
    pub precision: MeanStd,
    /// Recall@K over seeds.
    pub recall: MeanStd,
    /// F1@K over seeds.
    pub f1: MeanStd,
    /// NDCG@K over seeds.
    pub ndcg: MeanStd,
}

/// The aggregated artifact of one sweep run: the spec that produced it, every
/// raw cell in grid order, and the per-grid-point aggregates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// Sweep name (from the spec).
    pub sweep: String,
    /// The spec that was executed (round-trips through JSON).
    pub spec: SweepSpec,
    /// Raw per-seed cells, in deterministic grid order.
    pub cells: Vec<SweepCell>,
    /// Seed-aggregated grid points, in deterministic grid order.
    pub aggregates: Vec<SweepAggregate>,
}

impl SweepReport {
    /// Serializes the report as deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        to_json(self)
    }

    /// Renders a compact markdown summary of the aggregates.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## Sweep `{}`\n\n", self.sweep);
        out.push_str(
            "| Family | Scale | Explainer | Attacker | Budget | Victims | ASR-T (%) | F1@K (%) | NDCG@K (%) |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for a in &self.aggregates {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {:.2}±{:.2} | {:.2}±{:.2} | {:.2}±{:.2} |\n",
                a.family,
                a.scale,
                a.explainer,
                a.attacker,
                a.budget,
                a.victims,
                a.asr_t.mean * 100.0,
                a.asr_t.std * 100.0,
                a.f1.mean * 100.0,
                a.f1.std * 100.0,
                a.ndcg.mean * 100.0,
                a.ndcg.std * 100.0,
            ));
        }
        out
    }
}

/// One (family, scale, seed, explainer) preparation unit of the grid.
#[derive(Clone, Debug)]
struct PrepCell {
    family: String,
    scale: f64,
    seed: u64,
    explainer: ExplainerKind,
}

/// Runs a validated sweep spec. `serial` forces single-threaded execution; the
/// result is identical either way.
pub fn run_sweep(spec: &SweepSpec, serial: bool) -> Result<SweepReport, String> {
    spec.validate()?;
    let attackers: Vec<AttackerKind> = spec
        .attackers
        .iter()
        .map(|name| AttackerKind::parse(name).ok_or_else(|| format!("unknown attacker `{name}`")))
        .collect::<Result<_, _>>()?;
    let explainers: Vec<ExplainerKind> = spec
        .explainers
        .iter()
        .map(|name| ExplainerKind::parse(name).ok_or_else(|| format!("unknown explainer `{name}`")))
        .collect::<Result<_, _>>()?;
    // Spec validation rejects literal duplicates, but aliases ("fga-t" and
    // "fgat") only collide after resolution — duplicate kinds would run (and
    // aggregate) the same cells twice.
    for (axis, duplicated) in [
        ("attackers", has_duplicates(&attackers)),
        ("explainers", has_duplicates(&explainers)),
    ] {
        if duplicated {
            return Err(format!("sweep axis `{axis}` lists the same {axis} under two aliases"));
        }
    }

    // Expand the preparation grid in deterministic order: family, scale, seed,
    // explainer (innermost).
    let mut prep_cells = Vec::with_capacity(spec.prepared_cells());
    for family in &spec.families {
        for &scale in &spec.scales {
            for &seed in &spec.seeds {
                for &explainer in &explainers {
                    prep_cells.push(PrepCell {
                        family: geattack_scenarios::canonical(family),
                        scale,
                        seed,
                        explainer,
                    });
                }
            }
        }
    }

    // One level of parallelism only (mirroring the multi-run experiment
    // runner): enough prepared cells to saturate the cores → fan out across
    // cells with serial victim loops; otherwise keep the cell loop serial and
    // let each cell's victim loop fan out.
    let fan_out = cells_fan_out(serial, prep_cells.len());
    let run_cell = |cell: &PrepCell| run_prep_cell(spec, cell, &attackers, !serial && !fan_out);
    let nested: Vec<Vec<SweepCell>> = map_cells(fan_out, &prep_cells, run_cell);
    let cells: Vec<SweepCell> = nested.into_iter().flatten().collect();

    let aggregates = aggregate_cells(spec, &explainers, &attackers, &cells);
    Ok(SweepReport {
        sweep: spec.name.clone(),
        spec: spec.clone(),
        cells,
        aggregates,
    })
}

/// Prepares one (family, scale, seed, explainer) experiment and attacks it with
/// every attacker and budget of the grid.
fn run_prep_cell(
    spec: &SweepSpec,
    cell: &PrepCell,
    attackers: &[AttackerKind],
    victim_parallel: bool,
) -> Vec<SweepCell> {
    let source = GraphSource::Scenario(ScenarioSpec::named(cell.family.clone()));
    let mut config = if spec.quick {
        PipelineConfig::quick_source(source, cell.seed)
    } else {
        PipelineConfig::paper_scale_source(source, cell.seed)
    };
    config.generator = GeneratorConfig::at_scale(cell.scale, cell.seed);
    config.set_victim_count(spec.victims);
    config.explainer = cell.explainer;
    config.parallel = victim_parallel;
    let prepared = prepare(config);
    eprintln!(
        "[{} scale {} seed {} {}] prepared: {} nodes, {} victims",
        cell.family,
        cell.scale,
        cell.seed,
        cell.explainer.name(),
        prepared.graph.num_nodes(),
        prepared.victims.len()
    );
    if prepared.victims.is_empty() {
        eprintln!("  (no victims survived the FGA pre-pass; this seed is excluded from the aggregates)");
    }

    let inspector = prepared.inspector();
    let mut out = Vec::with_capacity(attackers.len() * spec.budgets.len());
    for &kind in attackers {
        let attacker = prepared.attacker(kind);
        for &budget in &spec.budgets {
            let outcomes = run_attacker_with_budget(
                &prepared,
                attacker.as_ref(),
                inspector.as_ref(),
                BudgetRule::from(budget),
            );
            let summary = summarize_run(kind.name(), &outcomes);
            out.push(SweepCell {
                family: cell.family.clone(),
                scale: cell.scale,
                seed: cell.seed,
                explainer: cell.explainer.name().to_string(),
                attacker: kind.name().to_string(),
                budget: budget.label(),
                nodes: prepared.graph.num_nodes(),
                edges: prepared.graph.num_edges(),
                victims: summary.victims,
                asr: summary.asr,
                asr_t: summary.asr_t,
                precision: summary.precision,
                recall: summary.recall,
                f1: summary.f1,
                ndcg: summary.ndcg,
            });
        }
    }
    out
}

/// Groups the raw cells over seeds, in deterministic grid order.
fn aggregate_cells(
    spec: &SweepSpec,
    explainers: &[ExplainerKind],
    attackers: &[AttackerKind],
    cells: &[SweepCell],
) -> Vec<SweepAggregate> {
    let mut aggregates = Vec::new();
    for family in &spec.families {
        let family = geattack_scenarios::canonical(family);
        for &scale in &spec.scales {
            for &explainer in explainers {
                for &attacker in attackers {
                    for &budget in &spec.budgets {
                        // Cells whose victim selection came up empty carry
                        // artificial all-zero scores; they stay in the raw
                        // cell list (self-describing, victims = 0) but would
                        // corrupt the mean/std here, so — like the table
                        // runner — they do not contribute to aggregates.
                        let group: Vec<&SweepCell> = cells
                            .iter()
                            .filter(|c| {
                                c.victims > 0
                                    && c.family == family
                                    && c.scale == scale
                                    && c.explainer == explainer.name()
                                    && c.attacker == attacker.name()
                                    && c.budget == budget.label()
                            })
                            .collect();
                        if group.is_empty() {
                            continue;
                        }
                        let stat =
                            |f: fn(&SweepCell) -> f64| MeanStd::of(&group.iter().map(|c| f(c)).collect::<Vec<_>>());
                        aggregates.push(SweepAggregate {
                            family: family.clone(),
                            scale,
                            explainer: explainer.name().to_string(),
                            attacker: attacker.name().to_string(),
                            budget: budget.label(),
                            seeds: group.len(),
                            victims: group.iter().map(|c| c.victims).sum(),
                            asr: stat(|c| c.asr),
                            asr_t: stat(|c| c.asr_t),
                            precision: stat(|c| c.precision),
                            recall: stat(|c| c.recall),
                            f1: stat(|c| c.f1),
                            ndcg: stat(|c| c.ndcg),
                        });
                    }
                }
            }
        }
    }
    aggregates
}

/// Whether `values` contains the same resolved kind twice.
fn has_duplicates<T: PartialEq>(values: &[T]) -> bool {
    values.iter().enumerate().any(|(i, v)| values[..i].contains(v))
}

/// Whether the prepared-cell loop should fan out across threads (see
/// [`run_sweep`]).
fn cells_fan_out(serial: bool, cells: usize) -> bool {
    #[cfg(feature = "parallel")]
    {
        !serial && cells > 1 && cells >= rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (serial, cells);
        false
    }
}

/// Maps `f` over the prepared cells — across threads when `fan_out` is set,
/// serially otherwise. Results come back in cell order either way.
fn map_cells<R: Send>(fan_out: bool, cells: &[PrepCell], f: impl Fn(&PrepCell) -> R + Sync) -> Vec<R> {
    #[cfg(feature = "parallel")]
    if fan_out {
        use rayon::prelude::*;
        return cells.par_iter().map(&f).collect();
    }
    let _ = fan_out;
    cells.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_scenarios::BudgetSpec;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("unit", vec!["tree-cycles".to_string()], vec!["rna".to_string()]);
        spec.scales = vec![0.07];
        spec.seeds = vec![0];
        spec.victims = 3;
        spec
    }

    #[test]
    fn unknown_attacker_and_explainer_are_rejected_before_running() {
        let mut spec = tiny_spec();
        spec.attackers = vec!["metattack".to_string()];
        assert!(run_sweep(&spec, true).unwrap_err().contains("unknown attacker"));
        let mut spec = tiny_spec();
        spec.explainers = vec!["shap".to_string()];
        assert!(run_sweep(&spec, true).unwrap_err().contains("unknown explainer"));
    }

    #[test]
    fn zero_victim_cells_are_excluded_from_aggregates() {
        let mut spec = tiny_spec();
        spec.seeds = vec![0, 1];
        let cell = |seed: u64, victims: usize, asr: f64| SweepCell {
            family: "tree-cycles".to_string(),
            scale: 0.07,
            seed,
            explainer: "GNNExplainer".to_string(),
            attacker: "RNA".to_string(),
            budget: "degree".to_string(),
            nodes: 50,
            edges: 60,
            victims,
            asr,
            asr_t: asr,
            precision: 0.1,
            recall: 0.1,
            f1: 0.1,
            ndcg: 0.1,
        };
        // Seed 1 found no victims; its all-zero scores must not drag the mean.
        let cells = vec![cell(0, 3, 1.0), cell(1, 0, 0.0)];
        let aggregates = aggregate_cells(&spec, &[ExplainerKind::GnnExplainer], &[AttackerKind::Rna], &cells);
        assert_eq!(aggregates.len(), 1);
        assert_eq!(aggregates[0].seeds, 1, "only the seed with victims counts");
        assert_eq!(aggregates[0].victims, 3);
        assert!((aggregates[0].asr.mean - 1.0).abs() < 1e-12);
        assert_eq!(aggregates[0].asr.std, 0.0);
    }

    #[test]
    fn alias_duplicates_are_rejected_after_resolution() {
        // "fga-t" and "fgat" pass spec validation (different strings) but
        // resolve to the same attacker kind.
        let mut spec = tiny_spec();
        spec.attackers = vec!["fga-t".to_string(), "fgat".to_string()];
        let err = run_sweep(&spec, true).unwrap_err();
        assert!(err.contains("two aliases"), "{err}");
        let mut spec = tiny_spec();
        spec.explainers = vec!["gnnexplainer".to_string(), "gnn".to_string()];
        let err = run_sweep(&spec, true).unwrap_err();
        assert!(err.contains("two aliases"), "{err}");
    }

    #[test]
    fn tiny_sweep_produces_grid_ordered_cells_and_aggregates() {
        let mut spec = tiny_spec();
        spec.budgets = vec![BudgetSpec::Degree, BudgetSpec::Fixed(1)];
        let report = run_sweep(&spec, true).expect("sweep runs");
        assert_eq!(report.cells.len(), spec.total_cells());
        assert_eq!(report.cells[0].budget, "degree");
        assert_eq!(report.cells[1].budget, "1");
        assert_eq!(report.aggregates.len(), 2);
        assert_eq!(report.aggregates[0].seeds, 1);
        let md = report.to_markdown();
        assert!(md.contains("tree-cycles") && md.contains("RNA"), "{md}");
        let json = report.to_json();
        assert!(json.contains("\"aggregates\""));
    }
}
