//! Shared experiment-running logic behind the `reproduce_*` binaries.
//!
//! Each binary parses the common command-line options ([`Options::from_args`],
//! defined in [`crate::cli`]), builds the appropriate [`PipelineConfig`]s, runs
//! the attacks and prints the table / figure in the same shape as the paper,
//! plus a JSON artifact under `results/`.

use std::fs;
use std::path::PathBuf;

use geattack_core::evaluation::{aggregate_runs, summarize_run, MeanStd, RunSummary};
use geattack_core::pipeline::{prepare, run_attacker, AttackerKind, ExplainerKind};
use geattack_core::report::{Figure, Series, SummaryMetric, TableBlock};
use geattack_core::targets::Victim;
use geattack_core::{GeAttack, GeAttackConfig};
use geattack_graph::datasets::DatasetName;

pub use crate::cli::{Options, ParsedArgs};

/// Maps `f` over the independent seeds/runs of an experiment — across threads
/// when `fan_out` is set (see [`runs_fan_out`]), serially otherwise. Results
/// come back in run order either way, so aggregation is deterministic.
pub fn map_runs<R: Send>(fan_out: bool, runs: &[usize], f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    #[cfg(feature = "parallel")]
    if fan_out {
        use rayon::prelude::*;
        return runs.par_iter().map(|&run| f(run)).collect();
    }
    let _ = fan_out;
    runs.iter().map(|&run| f(run)).collect()
}

/// Decides where the experiment's parallelism lives. Exactly one level fans
/// out so the cores are never oversubscribed (outcomes are identical either
/// way; this is purely a scheduling choice):
///
/// * enough runs to saturate the cores → parallelize across runs and run each
///   run's victim loop serially (`true`);
/// * fewer runs than cores (the common `--runs 2` default) → iterate runs
///   serially and let each run's victim loop fan out instead (`false`).
fn runs_fan_out(serial: bool, runs: &[usize]) -> bool {
    #[cfg(feature = "parallel")]
    {
        !serial && runs.len() > 1 && runs.len() >= rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (serial, runs);
        false
    }
}

/// Writes a JSON artifact under `results/` (created on demand) and returns its path.
pub fn write_json(name: &str, json: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Runs every attacker of Table 1/2 on one dataset, aggregating over the runs, and
/// returns the table block in the paper's column order.
pub fn table_block(
    options: &Options,
    dataset: DatasetName,
    explainer: ExplainerKind,
    attackers: &[AttackerKind],
) -> TableBlock {
    let runs: Vec<usize> = options.run_indices().collect();
    let fan_out = runs_fan_out(options.serial, &runs);
    let per_run: Vec<Option<Vec<RunSummary>>> = map_runs(fan_out, &runs, |run| {
        let mut config = options.pipeline(dataset, run);
        config.explainer = explainer;
        config.parallel = config.parallel && !fan_out;
        let prepared = prepare(config).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        eprintln!(
            "[{}] run {run}: {} nodes, {} victims",
            dataset.as_str(),
            prepared.graph.num_nodes(),
            prepared.victims.len()
        );
        if prepared.victims.is_empty() {
            eprintln!("  (no victims survived the FGA pre-pass in this run; skipping it)");
            return None;
        }
        Some(
            attackers
                .iter()
                .map(|&kind| {
                    let attacker = prepared.attacker(kind);
                    let inspector = prepared.inspector().unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
                    let outcomes = run_attacker(&prepared, attacker.as_ref(), inspector.as_ref());
                    eprintln!("  [{}] run {run}: {} done", dataset.as_str(), kind.name());
                    summarize_run(kind.name(), &outcomes)
                })
                .collect(),
        )
    });
    let mut per_attacker: Vec<Vec<RunSummary>> = vec![Vec::new(); attackers.len()];
    for summaries in per_run.into_iter().flatten() {
        for (i, summary) in summaries.into_iter().enumerate() {
            per_attacker[i].push(summary);
        }
    }
    TableBlock {
        dataset: dataset.as_str().to_string(),
        columns: per_attacker.iter().map(|runs| aggregate_runs(runs)).collect(),
    }
}

/// Result of attacking the victims of one degree bucket (Figures 2, 3 and 7).
#[derive(Clone, Debug)]
pub struct DegreeBucketResult {
    /// The victim degree.
    pub degree: usize,
    /// Attack success rate.
    pub asr: MeanStd,
    /// F1@15 of the inspector.
    pub f1: MeanStd,
    /// NDCG@15 of the inspector.
    pub ndcg: MeanStd,
}

/// Runs one attacker over victims bucketed by clean-graph degree and reports the
/// per-degree ASR and detection scores (the protocol of Figures 2/3/7).
pub fn degree_sweep(
    options: &Options,
    dataset: DatasetName,
    explainer: ExplainerKind,
    attacker_kind: AttackerKind,
    degrees: &[usize],
    victims_per_degree: usize,
) -> Vec<DegreeBucketResult> {
    let runs: Vec<usize> = options.run_indices().collect();
    let fan_out = runs_fan_out(options.serial, &runs);
    let per_run: Vec<Vec<Option<RunSummary>>> = map_runs(fan_out, &runs, |run| {
        let mut config = options.pipeline(dataset, run);
        config.explainer = explainer;
        config.parallel = config.parallel && !fan_out;
        let prepared = prepare(config).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        // Clean predictions come from the forward pass prepare() already ran.
        let preds = prepared.clean_forward().predict_labels();
        let mut row: Vec<Option<RunSummary>> = Vec::with_capacity(degrees.len());
        for &degree in degrees.iter() {
            // Victims of exactly this degree among correctly-classified test nodes.
            let nodes: Vec<usize> = prepared
                .split
                .test
                .iter()
                .copied()
                .filter(|&n| prepared.graph.degree(n) == degree && preds[n] == prepared.graph.label(n))
                .take(victims_per_degree)
                .collect();
            let victims: Vec<Victim> =
                geattack_core::targets::assign_target_labels(&prepared.model, &prepared.graph, &nodes);
            if victims.is_empty() {
                row.push(None);
                continue;
            }
            let scoped = prepared.with_victims(victims);
            let attacker = prepared.attacker(attacker_kind);
            let inspector = prepared.inspector().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let outcomes = run_attacker(&scoped, attacker.as_ref(), inspector.as_ref());
            row.push(Some(summarize_run(attacker_kind.name(), &outcomes)));
        }
        row
    });
    let mut per_degree: Vec<Vec<RunSummary>> = vec![Vec::new(); degrees.len()];
    for row in per_run {
        for (di, summary) in row.into_iter().enumerate() {
            if let Some(summary) = summary {
                per_degree[di].push(summary);
            }
        }
    }
    degrees
        .iter()
        .enumerate()
        .map(|(di, &degree)| {
            let runs = &per_degree[di];
            let collect = |f: fn(&RunSummary) -> f64| MeanStd::of(&runs.iter().map(f).collect::<Vec<_>>());
            DegreeBucketResult {
                degree,
                asr: collect(|s| s.asr),
                f1: collect(|s| s.f1),
                ndcg: collect(|s| s.ndcg),
            }
        })
        .collect()
}

/// λ sweep of GEAttack (Figures 4 and 8): ASR-T plus detection metrics per λ.
pub fn lambda_sweep(options: &Options, dataset: DatasetName, lambdas: &[f64]) -> Vec<(f64, RunSummary)> {
    let mut out = Vec::new();
    let runs: Vec<usize> = options.run_indices().collect();
    let fan_out = runs_fan_out(options.serial, &runs);
    // Dataset generation, GCN training and victim selection do not depend on λ,
    // so each run is prepared once and shared by every λ of the sweep.
    let prepared_runs: Vec<_> = map_runs(fan_out, &runs, |run| {
        let mut config = options.pipeline(dataset, run);
        config.parallel = config.parallel && !fan_out;
        prepare(config).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });
    for &lambda in lambdas {
        let summaries: Vec<RunSummary> = map_runs(fan_out, &runs, |run| {
            let prepared = &prepared_runs[run];
            if prepared.victims.is_empty() {
                return None;
            }
            let attacker = GeAttack::new(GeAttackConfig {
                lambda,
                ..prepared.config().geattack.clone()
            });
            let inspector = prepared.inspector().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let outcomes = run_attacker(prepared, &attacker, inspector.as_ref());
            Some(summarize_run("GEAttack", &outcomes))
        })
        .into_iter()
        .flatten()
        .collect();
        if summaries.is_empty() {
            continue;
        }
        let agg = aggregate_runs(&summaries);
        out.push((
            lambda,
            RunSummary {
                attacker: "GEAttack".into(),
                victims: summaries.iter().map(|s| s.victims).sum(),
                asr: agg.asr.mean,
                asr_t: agg.asr_t.mean,
                precision: agg.precision.mean,
                recall: agg.recall.mean,
                f1: agg.f1.mean,
                ndcg: agg.ndcg.mean,
            },
        ));
        eprintln!("lambda {lambda} done");
    }
    out
}

/// Builds figure series from per-x RunSummaries.
pub fn summaries_to_figure(title: &str, points: &[(f64, RunSummary)], metrics: &[(&str, SummaryMetric)]) -> Figure {
    let x: Vec<f64> = points.iter().map(|(v, _)| *v).collect();
    let series = metrics
        .iter()
        .map(|(label, getter)| {
            Series::new(
                *label,
                x.clone(),
                points
                    .iter()
                    .map(|(_, s)| MeanStd {
                        mean: getter(s),
                        std: 0.0,
                    })
                    .collect(),
            )
        })
        .collect();
    Figure {
        title: title.to_string(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_to_figure_shapes() {
        let s = RunSummary {
            attacker: "GEAttack".into(),
            victims: 5,
            asr: 1.0,
            asr_t: 0.9,
            precision: 0.1,
            recall: 0.5,
            f1: 0.2,
            ndcg: 0.3,
        };
        let fig = summaries_to_figure("t", &[(1.0, s)], &[("ASR-T", |s| s.asr_t), ("F1@15", |s| s.f1)]);
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].x, vec![1.0]);
        assert!((fig.series[1].y[0].mean - 0.2).abs() < 1e-12);
    }
}
