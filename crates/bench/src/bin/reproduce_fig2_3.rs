//! Reproduces **Figures 2 and 3**: the preliminary study. Nettack attacks victims
//! bucketed by clean-graph degree; Figure 2 reports the attack success rate per
//! degree, Figure 3 reports how well GNNExplainer detects the inserted edges
//! (F1@15 and NDCG@15) on CITESEER and CORA.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin reproduce_fig2_3 -- [--full] [--runs N]
//! ```

use geattack_bench::runner::{degree_sweep, write_json, Options};
use geattack_core::pipeline::{AttackerKind, ExplainerKind};
use geattack_core::report::{to_json, Figure, Series};
use geattack_graph::DatasetName;

fn main() {
    let options = Options::from_args();
    let degrees: Vec<usize> = (1..=10).collect();
    let victims_per_degree = if options.is_full() { 40 } else { 8 };
    let mut figures = Vec::new();

    for dataset in options.datasets(&[DatasetName::Citeseer, DatasetName::Cora]) {
        let results = degree_sweep(
            &options,
            dataset,
            ExplainerKind::GnnExplainer,
            AttackerKind::Nettack,
            &degrees,
            victims_per_degree,
        );
        let x: Vec<f64> = results.iter().map(|r| r.degree as f64).collect();
        let fig2 = Figure {
            title: format!("Figure 2 ({}) — Nettack ASR vs. node degree", dataset.as_str()),
            series: vec![Series::new("ASR", x.clone(), results.iter().map(|r| r.asr).collect())],
        };
        let fig3 = Figure {
            title: format!(
                "Figure 3 ({}) — GNNExplainer detection of Nettack edges vs. degree",
                dataset.as_str()
            ),
            series: vec![
                Series::new("F1@15", x.clone(), results.iter().map(|r| r.f1).collect()),
                Series::new("NDCG@15", x, results.iter().map(|r| r.ndcg).collect()),
            ],
        };
        print!("{}", fig2.to_text());
        print!("{}", fig3.to_text());
        figures.push(fig2);
        figures.push(fig3);
    }
    let path = write_json("fig2_3", &to_json(&figures));
    println!("(JSON written to {})", path.display());
}
