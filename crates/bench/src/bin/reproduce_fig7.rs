//! Reproduces **Figure 7**: PGExplainer as the inspector of Nettack perturbations,
//! per victim degree, on CITESEER and CORA (ASR, F1@15, NDCG@15).
//!
//! ```text
//! cargo run --release -p geattack-bench --bin reproduce_fig7 -- [--full] [--runs N]
//! ```

use geattack_bench::runner::{degree_sweep, write_json, Options};
use geattack_core::pipeline::{AttackerKind, ExplainerKind};
use geattack_core::report::{to_json, Figure, Series};
use geattack_graph::DatasetName;

fn main() {
    let options = Options::from_args();
    let degrees: Vec<usize> = (1..=10).collect();
    let victims_per_degree = if options.is_full() { 40 } else { 6 };
    let mut figures = Vec::new();

    for dataset in options.datasets(&[DatasetName::Citeseer, DatasetName::Cora]) {
        let results = degree_sweep(
            &options,
            dataset,
            ExplainerKind::PgExplainer,
            AttackerKind::Nettack,
            &degrees,
            victims_per_degree,
        );
        let x: Vec<f64> = results.iter().map(|r| r.degree as f64).collect();
        let figure = Figure {
            title: format!(
                "Figure 7 ({}) — PGExplainer detection of Nettack edges vs. degree",
                dataset.as_str()
            ),
            series: vec![
                Series::new("ASR", x.clone(), results.iter().map(|r| r.asr).collect()),
                Series::new("F1@15", x.clone(), results.iter().map(|r| r.f1).collect()),
                Series::new("NDCG@15", x, results.iter().map(|r| r.ndcg).collect()),
            ],
        };
        print!("{}", figure.to_text());
        figures.push(figure);
    }
    let path = write_json("fig7", &to_json(&figures));
    println!("(JSON written to {})", path.display());
}
