//! Executes a declarative scenario sweep: a JSON [`SweepSpec`] naming a grid of
//! `{family x scale x seed x attacker x explainer x budget}` cells.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin geattack-sweep -- examples/sweeps/quick.json [--serial]
//! ```
//!
//! One experiment is prepared per (family, scale, seed, explainer) cell and
//! shared across all attackers and budgets; cells run in parallel unless
//! `--serial` is passed. The aggregated report is deterministic: the same spec
//! produces byte-identical JSON whether it runs serially or in parallel.
//!
//! The shared flags override the spec's axes explicitly: `--scale F` replaces
//! the scales axis, `--victims N` the per-cell victim count, `--seed N` offsets
//! every seed, `--runs N` replaces the seeds axis with `seed..seed+N`, and
//! `--quick`/`--full` override the training profile. `--dataset` does not apply
//! (families come from the spec) and is rejected.

use geattack_bench::cli::Options;
use geattack_bench::runner::write_json;
use geattack_bench::sweep::run_sweep;
use geattack_scenarios::SweepSpec;

/// Applies the shared CLI flags to the parsed spec (documented in the module
/// header); every flag either takes effect or aborts, never silently ignored.
fn apply_flag_overrides(spec: &mut SweepSpec, options: &Options) {
    if options.dataset.is_some() {
        eprintln!("--dataset does not apply to sweeps; name the families in the spec instead");
        std::process::exit(2);
    }
    if let Some(scale) = options.scale {
        spec.scales = vec![scale];
    }
    if let Some(victims) = options.victims {
        spec.victims = victims;
    }
    if let Some(runs) = options.runs {
        spec.seeds = (0..runs.max(1) as u64).collect();
    }
    if options.seed != 0 {
        spec.seeds = spec.seeds.iter().map(|&s| s + options.seed).collect();
    }
    if let Some(full) = options.full {
        spec.quick = !full;
    }
}

fn main() {
    let parsed = Options::parse_with_positionals("SWEEP_SPEC.json");
    let [spec_path] = parsed.positional.as_slice() else {
        eprintln!("expected exactly one sweep spec path, got {:?}", parsed.positional);
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        std::process::exit(2);
    });
    let mut spec = SweepSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{spec_path}: {e}");
        std::process::exit(2);
    });
    apply_flag_overrides(&mut spec, &parsed.options);
    spec.validate().unwrap_or_else(|e| {
        eprintln!("{spec_path} (after flag overrides): {e}");
        std::process::exit(2);
    });
    eprintln!(
        "sweep `{}`: {} prepared cells, {} result cells",
        spec.name,
        spec.prepared_cells(),
        spec.total_cells()
    );

    let report = run_sweep(&spec, parsed.options.serial).unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(2);
    });
    print!("{}", report.to_markdown());
    let path = write_json(&format!("sweep_{}", spec.name), &report.to_json());
    println!("(JSON written to {})", path.display());
}
