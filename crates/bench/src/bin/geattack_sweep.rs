//! Executes a declarative scenario sweep: a JSON [`SweepSpec`] naming a grid of
//! `{family x scale x seed x attacker x explainer x budget}` cells.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin geattack-sweep -- examples/sweeps/quick.json \
//!     [--serial] [--shard I/N] [--cache-dir DIR] [--dry-run] [--list-families]
//! ```
//!
//! This binary is a thin client of [`geattack_core::engine::Engine`]: it
//! parses the spec, submits one sweep session, prints progress from the
//! session's [`CellEvent`] stream, and writes the same artifacts as ever —
//! `results/sweep_<name>.json` (or the `.shard<I>of<N>.json` partial) plus the
//! `.meta.json` sidecar. The engine owns the cache, the cost-ordered schedule
//! and the shard slicing; reports are byte-identical to pre-engine runs.
//!
//! Distribution flags:
//!
//! * `--shard I/N` runs only the prepared cells at grid positions `p` with
//!   `p % N == I` (zero-based) and writes a *partial* report
//!   (`results/sweep_<name>.shard<I>of<N>.json`) for `geattack-merge`, which
//!   reassembles the byte-identical full report from a complete shard set.
//! * `--cache-dir DIR` memoizes prepared experiments on disk: a warm re-run
//!   decodes them instead of retraining and still writes a byte-identical
//!   report. Hit/miss/evict counters land in the `.meta.json` sidecar.
//! * `--cache-budget-mb N` keeps that directory under `N` MiB by pruning the
//!   oldest-mtime entries after each write (`geattack-cache gc` runs the same
//!   pruning offline).
//! * `--telemetry PATH` writes an NDJSON span trace of the run (one line per
//!   closed cell/phase-level span: preparation, each attacker x budget run,
//!   cache and codec activity). Tracing never changes the report bytes.
//! * `--dry-run` prints the enumerated cell plan (with shard assignments when
//!   `--shard` is given) without running anything; `--list-families` prints
//!   the scenario registry.
//!
//! The shared flags override the spec's axes explicitly: `--scale F` replaces
//! the scales axis, `--victims N` the per-cell victim count, `--seed N` offsets
//! every seed, `--runs N` replaces the seeds axis with `seed..seed+N`, and
//! `--quick`/`--full` override the training profile. `--dataset` does not apply
//! (families come from the spec) and is rejected.

use geattack_bench::cli::Options;
use geattack_bench::runner::write_json;
use geattack_core::engine::{CellEvent, Engine};
use geattack_scenarios::SweepSpec;

/// Applies the shared CLI flags to the parsed spec (documented in the module
/// header); every flag either takes effect or aborts, never silently ignored.
fn apply_flag_overrides(spec: &mut SweepSpec, options: &Options) {
    if options.dataset.is_some() {
        eprintln!("--dataset does not apply to sweeps; name the families in the spec instead");
        std::process::exit(2);
    }
    if options.cache_budget_mb.is_some() && options.cache_dir.is_none() {
        eprintln!("--cache-budget-mb requires --cache-dir (there is no cache to bound otherwise)");
        std::process::exit(2);
    }
    if let Some(scale) = options.scale {
        spec.scales = vec![scale];
    }
    if let Some(victims) = options.victims {
        spec.victims = victims;
    }
    if let Some(runs) = options.runs {
        spec.seeds = (0..runs.max(1) as u64).collect();
    }
    if options.seed != 0 {
        spec.seeds = spec.seeds.iter().map(|&s| s + options.seed).collect();
    }
    if let Some(full) = options.full {
        spec.quick = !full;
    }
}

fn main() {
    let parsed = Options::parse_sweep("SWEEP_SPEC.json");
    if parsed.options.list_families {
        for name in geattack_scenarios::FAMILY_NAMES {
            println!("{name}");
        }
        return;
    }
    let [spec_path] = parsed.positional.as_slice() else {
        eprintln!("expected exactly one sweep spec path, got {:?}", parsed.positional);
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        std::process::exit(2);
    });
    let mut spec = SweepSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{spec_path}: {e}");
        std::process::exit(2);
    });
    apply_flag_overrides(&mut spec, &parsed.options);
    spec.validate().unwrap_or_else(|e| {
        eprintln!("{spec_path} (after flag overrides): {e}");
        std::process::exit(2);
    });

    let mut engine = Engine::new().serial(parsed.options.serial);

    if parsed.options.dry_run {
        // Plans only need the registries — never touch (or create) the cache.
        let lines = engine
            .plan_lines(&spec, parsed.options.shard.as_ref())
            .unwrap_or_else(|e| {
                eprintln!("{spec_path}: {e}");
                std::process::exit(2);
            });
        for line in lines {
            println!("{line}");
        }
        return;
    }

    if let Some(dir) = &parsed.options.cache_dir {
        engine = engine
            .with_cache(dir.clone().into(), parsed.options.cache_budget_mb)
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
    }

    if let Some(path) = &parsed.options.telemetry {
        let recorder = geattack_telemetry::NdjsonRecorder::create(path).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry trace {path}: {e}");
            std::process::exit(2);
        });
        geattack_telemetry::install(std::sync::Arc::new(recorder));
    }

    eprintln!(
        "sweep `{}`: {} prepared cells, {} result cells{}",
        spec.name,
        spec.prepared_cells(),
        spec.total_cells(),
        match &parsed.options.shard {
            Some(shard) => format!(" (running shard {})", shard.label()),
            None => String::new(),
        }
    );

    let mut session = engine
        .submit_shard(spec.clone(), parsed.options.shard)
        .unwrap_or_else(|e| {
            eprintln!("sweep failed: {e}");
            std::process::exit(2);
        });
    let plan = session.plan().to_vec();
    for event in session.by_ref() {
        match event {
            CellEvent::Planned { .. } | CellEvent::Started { .. } => {}
            CellEvent::Finished { position, cells, .. } => {
                let cell = plan.iter().find(|c| c.position == position);
                let (nodes, victims) = cells.first().map(|c| (c.nodes, c.victims)).unwrap_or((0, 0));
                if let Some(cell) = cell {
                    eprintln!(
                        "[{} scale {} seed {} {}] prepared: {nodes} nodes, {victims} victims",
                        cell.family, cell.scale, cell.seed, cell.explainer
                    );
                }
                if victims == 0 {
                    eprintln!("  (no victims survived the FGA pre-pass; this seed is excluded from the aggregates)");
                }
            }
            CellEvent::Failed { position, error } => {
                eprintln!("[cell {position}] failed: {error}");
            }
        }
    }
    let run = session.wait().unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(2);
    });
    if let Some(cache) = &run.cache {
        eprintln!(
            "cache: {} hits, {} misses, {} evictions over {} prepared cells",
            cache.hits, cache.misses, cache.evictions, run.prepared_cells
        );
    }

    let artifact = match &parsed.options.shard {
        Some(shard) => {
            let name = format!("sweep_{}.shard{}of{}", spec.name, shard.index, shard.count);
            let path = write_json(&name, &run.shard.to_json());
            println!(
                "shard {} done: {} prepared cells, {} result cells (JSON written to {})",
                shard.label(),
                run.prepared_cells,
                run.shard.cells.len(),
                path.display()
            );
            println!(
                "merge a complete shard set with: geattack-merge results/sweep_{}.shard*.json",
                spec.name
            );
            name
        }
        None => {
            let report = engine.merge(std::slice::from_ref(&run.shard)).unwrap_or_else(|e| {
                eprintln!("sweep failed: {e}");
                std::process::exit(2);
            });
            print!("{}", report.to_markdown());
            let name = format!("sweep_{}", spec.name);
            let path = write_json(&name, &report.to_json());
            println!("(JSON written to {})", path.display());
            name
        }
    };
    let meta_path = write_json(&format!("{artifact}.meta"), &run.meta_json());
    eprintln!("(metadata written to {})", meta_path.display());
    if let Some(path) = &parsed.options.telemetry {
        geattack_telemetry::flush();
        eprintln!("(telemetry trace written to {path})");
    }
}
