//! Executes a declarative scenario sweep: a JSON [`SweepSpec`] naming a grid of
//! `{family x scale x seed x attacker x explainer x budget}` cells.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin geattack-sweep -- examples/sweeps/quick.json \
//!     [--serial] [--shard I/N] [--cache-dir DIR] [--dry-run] [--list-families]
//! ```
//!
//! One experiment is prepared per (family, scale, seed, explainer) cell and
//! shared across all attackers and budgets; cells run in parallel unless
//! `--serial` is passed. The aggregated report is deterministic: the same spec
//! produces byte-identical JSON whether it runs serially or in parallel.
//!
//! Distribution flags:
//!
//! * `--shard I/N` runs only the prepared cells at grid positions `p` with
//!   `p % N == I` (zero-based) and writes a *partial* report
//!   (`results/sweep_<name>.shard<I>of<N>.json`) for `geattack-merge`, which
//!   reassembles the byte-identical full report from a complete shard set.
//! * `--cache-dir DIR` memoizes prepared experiments on disk: a warm re-run
//!   decodes them instead of retraining and still writes a byte-identical
//!   report. Hit/miss/evict counters land in the `.meta.json` sidecar.
//! * `--cache-budget-mb N` keeps that directory under `N` MiB by pruning the
//!   oldest-mtime entries after each write (`geattack-cache gc` runs the same
//!   pruning offline).
//! * `--dry-run` prints the enumerated cell plan (with shard assignments when
//!   `--shard` is given) without running anything; `--list-families` prints
//!   the scenario registry.
//!
//! The shared flags override the spec's axes explicitly: `--scale F` replaces
//! the scales axis, `--victims N` the per-cell victim count, `--seed N` offsets
//! every seed, `--runs N` replaces the seeds axis with `seed..seed+N`, and
//! `--quick`/`--full` override the training profile. `--dataset` does not apply
//! (families come from the spec) and is rejected.

use geattack_bench::cli::Options;
use geattack_bench::runner::write_json;
use geattack_bench::sweep::{merge_shards, plan_lines, run_sweep_options, SweepOptions};
use geattack_scenarios::SweepSpec;

/// Applies the shared CLI flags to the parsed spec (documented in the module
/// header); every flag either takes effect or aborts, never silently ignored.
fn apply_flag_overrides(spec: &mut SweepSpec, options: &Options) {
    if options.dataset.is_some() {
        eprintln!("--dataset does not apply to sweeps; name the families in the spec instead");
        std::process::exit(2);
    }
    if options.cache_budget_mb.is_some() && options.cache_dir.is_none() {
        eprintln!("--cache-budget-mb requires --cache-dir (there is no cache to bound otherwise)");
        std::process::exit(2);
    }
    if let Some(scale) = options.scale {
        spec.scales = vec![scale];
    }
    if let Some(victims) = options.victims {
        spec.victims = victims;
    }
    if let Some(runs) = options.runs {
        spec.seeds = (0..runs.max(1) as u64).collect();
    }
    if options.seed != 0 {
        spec.seeds = spec.seeds.iter().map(|&s| s + options.seed).collect();
    }
    if let Some(full) = options.full {
        spec.quick = !full;
    }
}

fn main() {
    let parsed = Options::parse_sweep("SWEEP_SPEC.json");
    if parsed.options.list_families {
        for name in geattack_scenarios::FAMILY_NAMES {
            println!("{name}");
        }
        return;
    }
    let [spec_path] = parsed.positional.as_slice() else {
        eprintln!("expected exactly one sweep spec path, got {:?}", parsed.positional);
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        std::process::exit(2);
    });
    let mut spec = SweepSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{spec_path}: {e}");
        std::process::exit(2);
    });
    apply_flag_overrides(&mut spec, &parsed.options);
    spec.validate().unwrap_or_else(|e| {
        eprintln!("{spec_path} (after flag overrides): {e}");
        std::process::exit(2);
    });

    if parsed.options.dry_run {
        let lines = plan_lines(&spec, parsed.options.shard.as_ref()).unwrap_or_else(|e| {
            eprintln!("{spec_path}: {e}");
            std::process::exit(2);
        });
        for line in lines {
            println!("{line}");
        }
        return;
    }

    eprintln!(
        "sweep `{}`: {} prepared cells, {} result cells{}",
        spec.name,
        spec.prepared_cells(),
        spec.total_cells(),
        match &parsed.options.shard {
            Some(shard) => format!(" (running shard {})", shard.label()),
            None => String::new(),
        }
    );

    let options = SweepOptions {
        serial: parsed.options.serial,
        shard: parsed.options.shard,
        cache_dir: parsed.options.cache_dir.clone().map(Into::into),
        cache_budget_mb: parsed.options.cache_budget_mb,
    };
    let run = run_sweep_options(&spec, &options).unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(2);
    });
    if let Some(cache) = &run.cache {
        eprintln!(
            "cache: {} hits, {} misses, {} evictions over {} prepared cells",
            cache.hits, cache.misses, cache.evictions, run.prepared_cells
        );
    }

    let artifact = match &parsed.options.shard {
        Some(shard) => {
            let name = format!("sweep_{}.shard{}of{}", spec.name, shard.index, shard.count);
            let path = write_json(&name, &run.shard.to_json());
            println!(
                "shard {} done: {} prepared cells, {} result cells (JSON written to {})",
                shard.label(),
                run.prepared_cells,
                run.shard.cells.len(),
                path.display()
            );
            println!(
                "merge a complete shard set with: geattack-merge results/sweep_{}.shard*.json",
                spec.name
            );
            name
        }
        None => {
            let report = merge_shards(std::slice::from_ref(&run.shard)).unwrap_or_else(|e| {
                eprintln!("sweep failed: {e}");
                std::process::exit(2);
            });
            print!("{}", report.to_markdown());
            let name = format!("sweep_{}", spec.name);
            let path = write_json(&name, &report.to_json());
            println!("(JSON written to {})", path.display());
            name
        }
    };
    let meta_path = write_json(&format!("{artifact}.meta"), &run.meta_json());
    eprintln!("(metadata written to {})", meta_path.display());
}
