//! Reproduces **Table 2**: joint-attack comparison on CITESEER with PGExplainer as
//! the inspector (Section 5.3).
//!
//! ```text
//! cargo run --release -p geattack-bench --bin reproduce_table2 -- [--full] [--runs N]
//! ```

use geattack_bench::runner::{table_block, write_json, Options};
use geattack_core::pipeline::{AttackerKind, ExplainerKind};
use geattack_core::report::to_json;
use geattack_graph::DatasetName;

fn main() {
    let options = Options::from_args();
    println!("# Table 2 — attacking a GCN and PGExplainer jointly (CITESEER)\n");
    // Table 2 is CITESEER-only; `--dataset citeseer` is accepted for symmetry
    // with the other binaries. The artifact stays a single table block.
    let dataset = options.datasets(&[DatasetName::Citeseer])[0];
    let block = table_block(&options, dataset, ExplainerKind::PgExplainer, &AttackerKind::ALL);
    print!("{}", block.to_markdown());
    let path = write_json("table2", &to_json(&block));
    println!("(JSON written to {})", path.display());
}
