//! Reproduces **Figure 6**: the effect of the number of inner explainer iterations
//! `T` in GEAttack on the detectability of its edges (F1@15 and NDCG@15 on CORA
//! and ACM).
//!
//! ```text
//! cargo run --release -p geattack-bench --bin reproduce_fig6 -- [--full] [--runs N]
//! ```

use geattack_bench::runner::{write_json, Options};
use geattack_core::evaluation::{summarize_run, MeanStd};
use geattack_core::pipeline::{prepare, run_attacker, AttackerKind};
use geattack_core::report::{to_json, Figure, Series};
use geattack_graph::DatasetName;

fn main() {
    let options = Options::from_args();
    let iterations: Vec<usize> = if options.is_full() {
        (1..=10).collect()
    } else {
        vec![1, 2, 3, 5, 8]
    };
    let mut figures = Vec::new();

    for dataset in options.datasets(&[DatasetName::Cora, DatasetName::Acm]) {
        let mut summaries = vec![Vec::new(); iterations.len()];
        for run in options.run_indices() {
            let base = options.pipeline(dataset, run);
            for (ti, &t) in iterations.iter().enumerate() {
                let mut config = base.clone();
                config.geattack.inner_steps = t;
                let prepared = prepare(config).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                let attacker = prepared.attacker(AttackerKind::GeAttack);
                let inspector = prepared.inspector().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                let outcomes = run_attacker(&prepared, attacker.as_ref(), inspector.as_ref());
                summaries[ti].push(summarize_run("GEAttack", &outcomes));
                eprintln!("[{}] T = {t}, run {run} done", dataset.as_str());
            }
        }
        let x: Vec<f64> = iterations.iter().map(|&t| t as f64).collect();
        let collect = |f: fn(&geattack_core::evaluation::RunSummary) -> f64| -> Vec<MeanStd> {
            summaries
                .iter()
                .map(|runs| MeanStd::of(&runs.iter().map(f).collect::<Vec<_>>()))
                .collect()
        };
        let figure = Figure {
            title: format!(
                "Figure 6 ({}) — effect of inner iterations T (GEAttack)",
                dataset.as_str()
            ),
            series: vec![
                Series::new("F1@15", x.clone(), collect(|s| s.f1)),
                Series::new("NDCG@15", x, collect(|s| s.ndcg)),
            ],
        };
        print!("{}", figure.to_text());
        figures.push(figure);
    }
    let path = write_json("fig6", &to_json(&figures));
    println!("(JSON written to {})", path.display());
}
