//! Long-lived sweep-serving daemon over the experiment engine.
//!
//! ```text
//! # daemon: accept sweep-spec JSON lines on a TCP socket, stream NDJSON results
//! cargo run --release -p geattack-bench --bin geattack-serve -- listen \
//!     [--addr 127.0.0.1:7341] [--workers N] [--queue-limit N] [--serial] \
//!     [--cache-dir DIR] [--cache-budget-mb N] [--max-requests N]
//!
//! # client: submit a spec file, reassemble the report, write it under results/
//! cargo run --release -p geattack-bench --bin geattack-serve -- submit SPEC.json \
//!     [--addr 127.0.0.1:7341]
//! ```
//!
//! One [`Engine`] (and therefore one prepared-experiment cache) serves every
//! request of the daemon's lifetime, so repeated sweeps over overlapping grids
//! skip their GCN training. Connections are handled concurrently: up to
//! `--workers` requests execute at once (cheapest-estimated-cost first among
//! waiters), at most `--queue-limit` more may wait. SIGTERM drains gracefully
//! — in-flight requests finish streaming, then the daemon exits 0. The
//! protocol is NDJSON both ways (see [`geattack_bench::serve`]); `nc` works
//! as a client too:
//!
//! ```text
//! jq -c . examples/sweeps/quick.json | nc 127.0.0.1 7341
//! echo '{"request":"drain"}' | nc 127.0.0.1 7341
//! ```
//!
//! `submit` writes `results/served_<name>.json`, byte-identical to the
//! `results/sweep_<name>.json` of a `geattack-sweep` run of the same spec.

use std::net::TcpListener;
use std::time::Duration;

use geattack_bench::runner::write_json;
use geattack_bench::serve::{serve, sigterm_flag, submit, ServeOptions};
use geattack_core::engine::Engine;

const DEFAULT_ADDR: &str = "127.0.0.1:7341";

const USAGE: &str = "usage: geattack-serve listen [--addr HOST:PORT] [--workers N] [--queue-limit N] \
[--serial] [--cache-dir DIR] [--cache-budget-mb N] [--max-requests N] [--fleet-id NAME]\n       \
geattack-serve submit SPEC.json [--addr HOST:PORT]";

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| fail(&format!("{flag} expects a value")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| fail("expected a subcommand"));
    match command.as_str() {
        "listen" => listen(args),
        "submit" => submit_command(args),
        "--help" | "-h" => {
            eprintln!("{USAGE}");
        }
        other => fail(&format!("unknown subcommand `{other}`")),
    }
}

fn listen(mut args: impl Iterator<Item = String>) {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut serial = false;
    let mut cache_dir: Option<String> = None;
    let mut cache_budget_mb: Option<u64> = None;
    let mut max_requests: Option<usize> = None;
    let mut workers = 1usize;
    let mut queue_limit = 16usize;
    let mut fleet_id: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = next_value(&mut args, "--addr"),
            "--serial" => serial = true,
            "--workers" => {
                let value = next_value(&mut args, "--workers");
                match value.parse() {
                    Ok(n) => workers = n,
                    Err(_) => fail(&format!("--workers expects a number, got `{value}`")),
                }
            }
            "--queue-limit" => {
                let value = next_value(&mut args, "--queue-limit");
                match value.parse() {
                    Ok(n) => queue_limit = n,
                    Err(_) => fail(&format!("--queue-limit expects a number, got `{value}`")),
                }
            }
            "--cache-dir" => cache_dir = Some(next_value(&mut args, "--cache-dir")),
            "--cache-budget-mb" => {
                let value = next_value(&mut args, "--cache-budget-mb");
                match value.parse() {
                    Ok(mb) => cache_budget_mb = Some(mb),
                    Err(_) => fail(&format!("--cache-budget-mb expects a number, got `{value}`")),
                }
            }
            "--max-requests" => {
                let value = next_value(&mut args, "--max-requests");
                match value.parse() {
                    Ok(n) => max_requests = Some(n),
                    Err(_) => fail(&format!("--max-requests expects a number, got `{value}`")),
                }
            }
            "--fleet-id" => fleet_id = Some(next_value(&mut args, "--fleet-id")),
            other => fail(&format!("unknown option: {other}")),
        }
    }
    if cache_budget_mb.is_some() && cache_dir.is_none() {
        fail("--cache-budget-mb requires --cache-dir");
    }

    let mut engine = Engine::new().serial(serial);
    if let Some(dir) = cache_dir {
        engine = engine
            .with_cache(dir.clone().into(), cache_budget_mb)
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        eprintln!("serving with shared prepared-experiment cache at {dir}");
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("cannot listen on {addr}: {e}");
        std::process::exit(2);
    });
    // Report the bound address, not the requested one: with `--addr host:0`
    // the kernel picks the port, and scripts/tests parse this line to find it.
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    eprintln!(
        "geattack-serve listening on {bound} (one sweep-spec JSON object per line, \
{workers} worker(s), queue limit {queue_limit})"
    );
    let options = ServeOptions {
        workers,
        queue_limit,
        max_requests,
        term_signal: Some(sigterm_flag()),
        fleet_id,
    };
    match serve(listener, &engine, options) {
        Ok(served) => eprintln!("geattack-serve exiting after {served} request(s)"),
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
}

fn submit_command(mut args: impl Iterator<Item = String>) {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut spec_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = next_value(&mut args, "--addr"),
            other if other.starts_with('-') => fail(&format!("unknown option: {other}")),
            other => {
                if spec_path.replace(other.to_string()).is_some() {
                    fail("expected exactly one sweep spec path");
                }
            }
        }
    }
    let spec_path = spec_path.unwrap_or_else(|| fail("expected a sweep spec path"));
    let text = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        std::process::exit(2);
    });

    let outcome = submit(&addr, &text, Duration::from_secs(30), |progress| {
        eprintln!("{progress}");
    })
    .unwrap_or_else(|e| {
        eprintln!("submit failed: {e}");
        std::process::exit(1);
    });
    let path = write_json(&format!("served_{}", outcome.sweep), &outcome.report_pretty);
    println!("(JSON written to {})", path.display());
}
