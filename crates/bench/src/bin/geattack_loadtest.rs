//! Concurrency load harness for a running `geattack-serve` daemon.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin geattack-loadtest -- \
//!     --spec examples/sweeps/quick.json [--spec MORE.json ...] \
//!     [--addr 127.0.0.1:7341] [--clients 4] [--requests 2] \
//!     [--timeout-s 120] [--out PATH.json]
//! ```
//!
//! Spawns `--clients` threads, each submitting `--requests` sweeps; clients
//! round-robin the `--spec` files with a per-client offset so the in-flight
//! mix always spans cheap and heavy work. Prints a one-line summary to stderr
//! and the full JSON report (throughput, p50/p95/p99 latency, per-spec
//! byte-identity of the served reports, the daemon's final `stats` snapshot)
//! to stdout — or to `--out` when given.
//!
//! Exits non-zero when any request failed or any spec's responses diverged,
//! so CI can use it as an assertion, not just a measurement.

use std::time::Duration;

use geattack_bench::loadtest::{run, LoadtestConfig};

const USAGE: &str = "usage: geattack-loadtest --spec SPEC.json [--spec MORE.json ...] \
[--addr HOST:PORT] [--clients N] [--requests N] [--timeout-s N] [--out PATH.json]";

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| fail(&format!("{flag} expects a value")))
}

fn parse_number<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let value = next_value(args, flag);
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("{flag} expects a number, got `{value}`")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7341".to_string();
    let mut clients = 4usize;
    let mut requests = 2usize;
    let mut timeout_s = 120u64;
    let mut out: Option<String> = None;
    let mut specs: Vec<(String, String)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = next_value(&mut args, "--addr"),
            "--clients" => clients = parse_number(&mut args, "--clients"),
            "--requests" => requests = parse_number(&mut args, "--requests"),
            "--timeout-s" => timeout_s = parse_number(&mut args, "--timeout-s"),
            "--out" => out = Some(next_value(&mut args, "--out")),
            "--spec" => {
                let path = next_value(&mut args, "--spec");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                let label = std::path::Path::new(&path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.clone());
                specs.push((label, text));
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown option: {other}")),
        }
    }
    if specs.is_empty() {
        fail("at least one --spec is required");
    }

    let config = LoadtestConfig {
        addr,
        clients,
        requests_per_client: requests,
        specs,
        timeout: Duration::from_secs(timeout_s),
    };
    let report = run(&config).unwrap_or_else(|e| {
        eprintln!("loadtest failed: {e}");
        std::process::exit(2);
    });
    eprintln!("{}", report.summary_line());
    for error in &report.errors {
        eprintln!("  error: {error}");
    }
    let json = report.to_pretty();
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("(JSON written to {path})");
        }
        None => println!("{json}"),
    }
    if report.failed > 0 || !report.reports_consistent {
        std::process::exit(1);
    }
}
