//! Reproduces **Table 1**: joint-attack comparison of all seven attackers on
//! CITESEER, CORA and ACM with GNNExplainer as the inspector.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin reproduce_table1 -- [--full] [--runs N]
//! ```

use geattack_bench::runner::{table_block, write_json, Options};
use geattack_core::pipeline::{AttackerKind, ExplainerKind};
use geattack_core::report::to_json;
use geattack_graph::DatasetName;

fn main() {
    let options = Options::from_args();
    println!("# Table 1 — attacking a GCN and GNNExplainer jointly\n");
    let mut blocks = Vec::new();
    for dataset in options.datasets(&DatasetName::ALL) {
        let block = table_block(&options, dataset, ExplainerKind::GnnExplainer, &AttackerKind::ALL);
        print!("{}", block.to_markdown());
        blocks.push(block);
    }
    let path = write_json("table1", &to_json(&blocks));
    println!("(JSON written to {})", path.display());
}
