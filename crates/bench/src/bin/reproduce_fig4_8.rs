//! Reproduces **Figure 4** (λ sweep on CORA: ASR-T, F1@15, NDCG@15) and
//! **Figure 8** (λ sweep on CITESEER: Precision/Recall/F1/NDCG@15), the study of
//! the trade-off between attacking the GCN and evading GNNExplainer.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin reproduce_fig4_8 -- [--full] [--runs N]
//! ```

use geattack_bench::runner::{lambda_sweep, summaries_to_figure, write_json, Options};
use geattack_core::report::{to_json, SummaryMetric};
use geattack_graph::DatasetName;

fn main() {
    let options = Options::from_args();
    // The paper's grid; the reduced default skips some of the long plateau.
    let lambdas: Vec<f64> = if options.is_full() {
        vec![0.001, 0.01, 1.0, 10.0, 20.0, 50.0, 100.0, 150.0, 200.0, 500.0, 1000.0]
    } else {
        vec![0.001, 1.0, 20.0, 100.0, 500.0]
    };

    let metrics_fig4: &[(&str, SummaryMetric)] =
        &[("ASR-T", |s| s.asr_t), ("F1@15", |s| s.f1), ("NDCG@15", |s| s.ndcg)];
    let metrics_fig8: &[(&str, SummaryMetric)] = &[
        ("Precision@15", |s| s.precision),
        ("Recall@15", |s| s.recall),
        ("F1@15", |s| s.f1),
        ("NDCG@15", |s| s.ndcg),
    ];

    let selected = options.datasets(&[DatasetName::Cora, DatasetName::Citeseer]);
    let mut figures = Vec::new();
    if selected.contains(&DatasetName::Cora) {
        let cora = lambda_sweep(&options, DatasetName::Cora, &lambdas);
        let fig4 = summaries_to_figure("Figure 4 — effect of lambda on CORA (GEAttack)", &cora, metrics_fig4);
        print!("{}", fig4.to_text());
        figures.push(fig4);
    }
    if selected.contains(&DatasetName::Citeseer) {
        let citeseer = lambda_sweep(&options, DatasetName::Citeseer, &lambdas);
        let fig8 = summaries_to_figure(
            "Figure 8 — effect of lambda on CITESEER (GEAttack)",
            &citeseer,
            metrics_fig8,
        );
        print!("{}", fig8.to_text());
        figures.push(fig8);
    }

    let path = write_json("fig4_8", &to_json(&figures));
    println!("(JSON written to {})", path.display());
}
