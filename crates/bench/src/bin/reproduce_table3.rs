//! Reproduces **Table 3**: statistics of the (synthetic stand-ins for the)
//! benchmark datasets' largest connected components.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin reproduce_table3 -- [--full] [--scale F]
//! ```

use geattack_bench::runner::{write_json, Options};
use geattack_core::report::to_json;
use geattack_graph::datasets::{load, GeneratorConfig};
use geattack_graph::preprocess::stats;
use geattack_graph::DatasetName;

fn main() {
    let options = Options::from_args();
    let scale = options.scale.unwrap_or(if options.is_full() { 1.0 } else { 0.25 });
    println!("# Table 3 — dataset statistics (synthetic stand-ins, scale {scale})\n");
    println!("| Dataset | Nodes | Edges | Classes | Features | Avg. degree | Homophily | Paper (nodes/edges/classes/features) |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut records = Vec::new();
    for dataset in options.datasets(&DatasetName::ALL) {
        let spec = dataset.spec();
        let graph = load(dataset, &GeneratorConfig::at_scale(scale, options.seed));
        let s = stats(&graph);
        println!(
            "| {} | {} | {} | {} | {} | {:.2} | {:.2} | {}/{}/{}/{} |",
            spec.name,
            s.nodes,
            s.edges,
            s.classes,
            s.features,
            s.average_degree,
            s.edge_homophily,
            spec.nodes,
            spec.edges,
            spec.classes,
            spec.features
        );
        records.push((spec, s));
    }
    let json = to_json(&records.iter().map(|(spec, s)| {
        serde_json::json!({
            "dataset": spec.name,
            "generated": {
                "nodes": s.nodes, "edges": s.edges, "classes": s.classes,
                "features": s.features, "average_degree": s.average_degree,
                "edge_homophily": s.edge_homophily,
            },
            "paper": { "nodes": spec.nodes, "edges": spec.edges, "classes": spec.classes, "features": spec.features },
        })
    }).collect::<Vec<_>>());
    let path = write_json("table3", &json);
    println!("\n(JSON written to {})", path.display());
}
