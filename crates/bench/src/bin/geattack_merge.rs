//! Merges the partial reports of a sharded sweep into the full report.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin geattack-merge -- results/sweep_quick.shard*.json
//! ```
//!
//! The inputs are the `results/sweep_<name>.shard<I>of<N>.json` files written
//! by `geattack-sweep --shard I/N`. The merge is strict: every shard must
//! carry the same spec content hash, the set must be complete (all `N`
//! indices, no duplicates) and each shard must hold exactly the cells its
//! grid slice predicts. The merged report is byte-identical to the report an
//! unsharded run of the same spec writes — the CI `shard-equivalence` job
//! `cmp`s the two — and lands in the same place, `results/sweep_<name>.json`.

use geattack_bench::cli::paths_only;
use geattack_bench::runner::write_json;
use geattack_core::sweep::{merge_shards, ShardReport};

fn main() {
    let paths = paths_only("geattack-merge SHARD_REPORT.json [SHARD_REPORT.json ...]");
    // A `results/sweep_<name>.shard*.json` glob also catches the `.meta.json`
    // sidecars the shard runs wrote next to their reports; skip them instead
    // of failing on the first one.
    let paths: Vec<String> = paths
        .into_iter()
        .filter(|path| {
            let is_meta = path.ends_with(".meta.json");
            if is_meta {
                eprintln!("skipping metadata sidecar {path}");
            }
            !is_meta
        })
        .collect();
    if paths.is_empty() {
        eprintln!("expected at least one shard report path");
        eprintln!("usage: geattack-merge SHARD_REPORT.json [SHARD_REPORT.json ...]");
        std::process::exit(2);
    }
    let shards: Vec<ShardReport> = paths
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            ShardReport::from_json(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            })
        })
        .collect();
    for shard in &shards {
        eprintln!(
            "shard {}/{}: {} cells (sweep `{}`, spec {})",
            shard.shard_index,
            shard.shard_count,
            shard.cells.len(),
            shard.sweep,
            shard.spec_hash.get(..8).unwrap_or(&shard.spec_hash)
        );
    }
    let report = merge_shards(&shards).unwrap_or_else(|e| {
        eprintln!("merge failed: {e}");
        std::process::exit(2);
    });
    print!("{}", report.to_markdown());
    let path = write_json(&format!("sweep_{}", report.sweep), &report.to_json());
    println!("(JSON written to {})", path.display());
}
