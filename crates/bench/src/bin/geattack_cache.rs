//! Offline lifecycle management of a `Prepared`-experiment cache directory.
//!
//! ```text
//! geattack-cache stats --cache-dir DIR [--json]
//! geattack-cache gc    --cache-dir DIR --cache-budget-mb N
//! ```
//!
//! `stats` prints the committed entry count and byte total plus the encoded
//! size of every entry (name-sorted, so diffs are stable); `--json` emits the
//! same data as one machine-readable JSON object (entry count, byte total,
//! the store's `cache.*` metric counters and per-entry sizes) for scripted
//! consumers. `gc` prunes the
//! oldest-mtime entries until the directory fits the budget — the same
//! LRU-by-mtime policy a sweep run applies online via `--cache-budget-mb`.
//! Loads never refresh mtimes, so "least recently used" is concretely "least
//! recently written"; a gc pass therefore always drops the stalest prepared
//! experiments first.

use geattack_cache::CacheStore;
use serde::Value;

const USAGE: &str = "usage: geattack-cache <stats|gc> --cache-dir DIR [--json] [--cache-budget-mb N]";

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    command: String,
    cache_dir: Option<String>,
    cache_budget_mb: Option<u64>,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1).peekable();
    let mut parsed = Args {
        command: String::new(),
        cache_dir: None,
        cache_budget_mb: None,
        json: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            "--cache-dir" => match args.next() {
                Some(dir) if !dir.starts_with('-') => parsed.cache_dir = Some(dir),
                _ => fail("--cache-dir expects a directory path"),
            },
            "--cache-budget-mb" => match args.next().and_then(|v| v.parse().ok()) {
                Some(mb) => parsed.cache_budget_mb = Some(mb),
                None => fail("--cache-budget-mb expects an integer MiB value"),
            },
            "--json" => parsed.json = true,
            other if other.starts_with('-') => fail(&format!("unknown option: {other}")),
            other if parsed.command.is_empty() => parsed.command = other.to_string(),
            other => fail(&format!("unexpected argument: {other}")),
        }
    }
    if parsed.command.is_empty() {
        fail("expected a subcommand (stats or gc)");
    }
    parsed
}

fn main() {
    let args = parse_args();
    let Some(dir) = args.cache_dir.clone() else {
        fail("--cache-dir is required");
    };
    let store = CacheStore::open(&dir).unwrap_or_else(|e| fail(&e));

    match args.command.as_str() {
        "stats" => {
            let entries = store.entry_sizes();
            let bytes: u64 = entries.iter().map(|&(_, len)| len).sum();
            if args.json {
                println!("{}", stats_json(&dir, &store, &entries, bytes));
            } else {
                println!(
                    "cache {dir}: {} entries, {bytes} bytes ({:.1} MiB)",
                    entries.len(),
                    mib(bytes)
                );
                for (name, len) in entries {
                    println!("  {len:>12} B  {name}");
                }
            }
        }
        "gc" => {
            let Some(mb) = args.cache_budget_mb else {
                fail("gc requires --cache-budget-mb");
            };
            let stats = store.gc_to_budget(mb.saturating_mul(1024 * 1024));
            println!(
                "cache {dir}: examined {} entries, evicted {} ({:.1} MiB -> {:.1} MiB, budget {mb} MiB)",
                stats.examined,
                stats.evicted,
                mib(stats.bytes_before),
                mib(stats.bytes_after),
            );
        }
        other => fail(&format!("unknown subcommand: {other}")),
    }
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// The `stats --json` document: one object with the directory, totals, the
/// store's metric counters (name-sorted) and per-entry encoded sizes.
fn stats_json(dir: &str, store: &CacheStore, entries: &[(String, u64)], bytes: u64) -> String {
    let object = |fields: Vec<(&str, Value)>| -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let counters = store
        .metrics()
        .snapshot()
        .counters
        .into_iter()
        .map(|(name, value)| (name, Value::Number(value as f64)))
        .collect();
    let sizes = entries
        .iter()
        .map(|(name, len)| {
            object(vec![
                ("name", Value::String(name.clone())),
                ("bytes", Value::Number(*len as f64)),
            ])
        })
        .collect();
    let doc = object(vec![
        ("dir", Value::String(dir.to_string())),
        ("entries", Value::Number(entries.len() as f64)),
        ("bytes", Value::Number(bytes as f64)),
        ("counters", Value::Object(counters)),
        ("entry_sizes", Value::Array(sizes)),
    ]);
    serde_json::to_string_pretty(&doc).expect("stats document always serializes")
}
