//! Reproduces **Figure 5**: the effect of the explanation subgraph size `L` on the
//! detectability of GEAttack's edges (Precision/Recall/F1/NDCG@15 on CORA).
//!
//! The attack is run once per seed; only the inspection step is repeated with
//! different explanation sizes, exactly as in the paper's analysis.
//!
//! ```text
//! cargo run --release -p geattack-bench --bin reproduce_fig5 -- [--full] [--runs N]
//! ```

use geattack_bench::runner::{write_json, Options};
use geattack_core::evaluation::{summarize_run, MeanStd};
use geattack_core::pipeline::{prepare, run_attacker, AttackerKind};
use geattack_core::report::{to_json, Figure, Series};
use geattack_graph::DatasetName;

fn main() {
    let options = Options::from_args();
    let sizes: Vec<usize> = if options.is_full() {
        vec![20, 40, 60, 80, 100]
    } else {
        vec![10, 20, 40, 60]
    };

    // Figure 5 is a CORA-only analysis; `--dataset cora` is accepted for
    // symmetry with the other binaries.
    let dataset = options.datasets(&[DatasetName::Cora])[0];

    // summaries[size index][run index]
    let mut summaries = vec![Vec::new(); sizes.len()];
    for run in options.run_indices() {
        let base = options.pipeline(dataset, run);
        for (si, &l) in sizes.iter().enumerate() {
            let mut config = base.clone();
            config.explanation_size = l;
            let prepared = prepare(config).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let attacker = prepared.attacker(AttackerKind::GeAttack);
            let inspector = prepared.inspector().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let outcomes = run_attacker(&prepared, attacker.as_ref(), inspector.as_ref());
            summaries[si].push(summarize_run("GEAttack", &outcomes));
            eprintln!("L = {l}, run {run} done");
        }
    }

    let x: Vec<f64> = sizes.iter().map(|&l| l as f64).collect();
    let collect = |f: fn(&geattack_core::evaluation::RunSummary) -> f64| -> Vec<MeanStd> {
        summaries
            .iter()
            .map(|runs| MeanStd::of(&runs.iter().map(f).collect::<Vec<_>>()))
            .collect()
    };
    let figure = Figure {
        title: "Figure 5 — effect of explanation size L on CORA (GEAttack)".into(),
        series: vec![
            Series::new("Precision@15", x.clone(), collect(|s| s.precision)),
            Series::new("Recall@15", x.clone(), collect(|s| s.recall)),
            Series::new("F1@15", x.clone(), collect(|s| s.f1)),
            Series::new("NDCG@15", x, collect(|s| s.ndcg)),
        ],
    };
    print!("{}", figure.to_text());
    let path = write_json("fig5", &to_json(&figure));
    println!("(JSON written to {})", path.display());
}
