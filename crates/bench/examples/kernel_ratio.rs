//! Interleaved A/B micro-harness for spmm kernel decisions.
//!
//! Unlike the criterion groups (which time each variant in its own block),
//! this probe interleaves scalar / blocked / column-tiled timings within every
//! iteration and reports medians, so slow drifts of the shared container hit
//! all variants equally. It also keeps the column-tiled prototype alive as a
//! *negative* result: tiling the dense operand to L2 (tiles 128-256 columns,
//! AVX2-dispatched like production) loses to the untiled blocked kernel at
//! Cora densities — per-tile entry re-decode dominates at average degree ~5 —
//! which is why production `spmm` does not tile. Every prototype result is
//! asserted bit-identical to production `spmm` before timing.
//!
//! Run: `cargo run --release -p geattack-bench --example kernel_ratio`

use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
use geattack_graph::normalized_adjacency_csr;
use geattack_tensor::{Matrix, SparseMatrix};
use std::time::Instant;

// prototype: column-tiled entry-blocked spmm, AVX2-dispatched like production
fn spmm_tiled(a: &SparseMatrix, b: &Matrix, tile: usize) -> Matrix {
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2(a: &SparseMatrix, b: &Matrix, tile: usize) -> Matrix {
        spmm_tiled_body(a, b, tile)
    }
    if std::is_x86_feature_detected!("avx2") {
        return unsafe { run_avx2(a, b, tile) };
    }
    spmm_tiled_body(a, b, tile)
}

#[inline(always)]
fn spmm_tiled_body(a: &SparseMatrix, b: &Matrix, tile: usize) -> Matrix {
    let (rows, _) = a.shape();
    let n = b.cols();
    let bs = b.as_slice();
    let mut out = Matrix::zeros(rows, n);
    let od = out.as_mut_slice();
    let mut j0 = 0;
    while j0 < n {
        let w = tile.min(n - j0);
        for i in 0..rows {
            let idx = a.row_indices(i);
            let vals = a.row_values(i);
            let orow = &mut od[i * n + j0..i * n + j0 + w];
            let mut p = 0;
            if idx.is_empty() {
                for x in orow.iter_mut() {
                    *x = 0.0;
                }
                continue;
            }
            let mut es = [(0usize, 0.0f64); 4];
            let first = (idx.len() - p).min(4);
            for m in 0..first {
                es[m] = (idx[p + m], vals[p + m]);
            }
            match first {
                1 => axpy::<1, true>([es[0]], bs, n, j0, orow),
                2 => axpy::<2, true>([es[0], es[1]], bs, n, j0, orow),
                3 => axpy::<3, true>([es[0], es[1], es[2]], bs, n, j0, orow),
                _ => axpy::<4, true>(es, bs, n, j0, orow),
            }
            p += first;
            while p < idx.len() {
                let g = (idx.len() - p).min(4);
                for m in 0..g {
                    es[m] = (idx[p + m], vals[p + m]);
                }
                match g {
                    1 => axpy::<1, false>([es[0]], bs, n, j0, orow),
                    2 => axpy::<2, false>([es[0], es[1]], bs, n, j0, orow),
                    3 => axpy::<3, false>([es[0], es[1], es[2]], bs, n, j0, orow),
                    _ => axpy::<4, false>(es, bs, n, j0, orow),
                }
                p += g;
            }
        }
        j0 += w;
    }
    out
}

#[inline(always)]
fn axpy<const M: usize, const INIT: bool>(es: [(usize, f64); M], b: &[f64], n: usize, j0: usize, out: &mut [f64]) {
    let w = out.len();
    let rows: [&[f64]; M] = std::array::from_fn(|m| &b[es[m].0 * n + j0..es[m].0 * n + j0 + w]);
    for j in 0..w {
        let mut acc = if INIT { 0.0 } else { out[j] };
        for m in 0..M {
            acc += es[m].1 * rows[m][j];
        }
        out[j] = acc;
    }
}

const TILES: [usize; 3] = [128, 192, 256];

fn main() {
    for scale in [0.4f64, 0.6] {
        let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(scale, 0));
        let sparse = normalized_adjacency_csr(&graph).matrix;
        let features = graph.features().clone();
        // correctness: bitwise vs current blocked
        let want = sparse.spmm(&features);
        for tile in TILES {
            let got = spmm_tiled(&sparse, &features, tile);
            assert_eq!(
                got.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tile {tile}"
            );
        }
        let mut results: Vec<(String, Vec<u128>)> = vec![("scalar".into(), vec![]), ("blocked".into(), vec![])];
        for t in TILES {
            results.push((format!("tile{t}"), vec![]));
        }
        for _ in 0..30 {
            let t = Instant::now();
            std::hint::black_box(sparse.spmm_reference(&features));
            results[0].1.push(t.elapsed().as_nanos());
            let t = Instant::now();
            std::hint::black_box(sparse.spmm(&features));
            results[1].1.push(t.elapsed().as_nanos());
            for (ti, tile) in TILES.iter().enumerate() {
                let t = Instant::now();
                std::hint::black_box(spmm_tiled(&sparse, &features, *tile));
                results[2 + ti].1.push(t.elapsed().as_nanos());
            }
        }
        let scalar_med = {
            let mut v = results[0].1.clone();
            v.sort();
            v[v.len() / 2] as f64
        };
        for (name, mut v) in results {
            v.sort();
            let med = v[v.len() / 2] as f64;
            println!(
                "scale {scale} {name}: med {:.3} ms (ratio vs scalar {:.2}x)",
                med / 1e6,
                scalar_med / med
            );
        }
    }
}
