//! Fleet orchestration end-to-end: a coordinator over live `geattack-serve`
//! workers must produce a merged report **byte-identical** to a
//! single-machine run — including after a worker disconnects mid-stream, is
//! SIGKILLed mid-shard, or the fleet runs out of retry budget (in which case
//! completed shards are preserved on disk for manual `geattack-merge`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use geattack_bench::serve::{control, serve, ServeOptions};
use geattack_core::engine::Engine;
use geattack_core::sweep::ShardReport;
use geattack_fleet::coordinator::{Coordinator, FleetOptions};
use geattack_fleet::manifest::Worker;
use geattack_scenarios::SweepSpec;

/// A small-but-real spec: four prepared cells (one GCN training each), so a
/// multi-shard split has real slices on every worker.
fn spec_json(name: &str) -> String {
    format!(
        r#"{{
            "name": "{name}",
            "families": ["tree-cycles"],
            "scales": [0.07],
            "seeds": [0, 1, 2, 3],
            "attackers": ["fga-t", "rna"],
            "victims": 3
        }}"#
    )
}

/// A heavier spec for the SIGKILL test: six slower cells (three per shard),
/// so a freshly-accepted shard cannot finish streaming before the kill lands.
fn heavy_spec_json(name: &str) -> String {
    format!(
        r#"{{
            "name": "{name}",
            "families": ["tree-cycles"],
            "scales": [0.3],
            "seeds": [0, 1, 2, 3, 4, 5],
            "attackers": ["fga-t", "rna"],
            "victims": 3
        }}"#
    )
}

/// What `geattack-sweep` would write for this spec on one machine.
fn reference_bytes(spec: &SweepSpec) -> String {
    Engine::new()
        .serial(true)
        .run_report(spec)
        .expect("reference sweep runs")
        .to_json()
}

/// Starts an in-process daemon on an ephemeral port.
fn daemon(options: ServeOptions) -> (String, std::thread::JoinHandle<std::io::Result<usize>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Engine::new().serial(true);
    let handle = std::thread::spawn(move || serve(listener, &engine, options));
    (addr, handle)
}

fn drain(addr: &str) {
    control(addr, r#"{"request":"drain"}"#, Duration::from_secs(10)).expect("drain answers");
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("geattack-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn three_worker_fleet_reports_are_byte_identical_to_a_single_machine_run() {
    let spec = SweepSpec::from_json(&spec_json("fleet-tri")).expect("spec parses");
    let reference = reference_bytes(&spec);

    let fleet: Vec<_> = (0..3)
        .map(|i| {
            let (addr, handle) = daemon(ServeOptions {
                fleet_id: Some(format!("w{i}")),
                ..ServeOptions::default()
            });
            (addr, handle)
        })
        .collect();
    let results_dir = temp_dir("tri");
    let workers = fleet
        .iter()
        .enumerate()
        .map(|(i, (addr, _))| Worker::named(addr.clone(), format!("w{i}")))
        .collect();
    let coordinator = Coordinator::new(
        workers,
        FleetOptions {
            results_dir: Some(results_dir.clone()),
            ..FleetOptions::default()
        },
    )
    .expect("coordinator builds");

    let run = coordinator.run(&spec, |_| {}).expect("fleet run succeeds");
    assert_eq!(
        run.report.to_json(),
        reference,
        "fleet-merged report must be byte-identical to the single-machine run"
    );
    let artifact = run.artifact.expect("artifact written");
    assert_eq!(artifact, results_dir.join("sweep_fleet-tri.json"));
    assert_eq!(
        std::fs::read_to_string(&artifact).expect("artifact readable"),
        reference,
        "the on-disk artifact must match the CLI artifact byte for byte"
    );

    assert_eq!(run.stats.shards, 3);
    assert_eq!(run.stats.dispatched, 3, "a clean run dispatches each shard once");
    assert_eq!(run.stats.retried, 0);
    assert_eq!(run.stats.finished_cells, 4);
    let ids: Vec<_> = run.stats.workers.iter().map(|w| w.fleet_id.clone()).collect();
    assert_eq!(
        ids,
        vec![Some("w0".to_string()), Some("w1".to_string()), Some("w2".to_string())],
        "worker identities come from each daemon's --fleet-id stats line"
    );

    for (addr, handle) in fleet {
        drain(&addr);
        handle.join().expect("daemon thread").expect("daemon exits cleanly");
    }
    let _ = std::fs::remove_dir_all(&results_dir);
}

/// A worker that accepts sweep requests, answers `accepted`, then drops the
/// connection — the mid-stream-disconnect failure mode. Control requests
/// answer so health probes pass.
fn flaky_worker() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => continue,
            });
            let mut writer = std::io::BufWriter::new(stream);
            let mut line = String::new();
            if reader.read_line(&mut line).is_err() || line.is_empty() {
                continue;
            }
            if line.contains("\"request\"") {
                let _ = writeln!(writer, r#"{{"event":"health","status":"ok","uptime_ms":1.0}}"#);
            } else {
                let _ = writeln!(writer, r#"{{"event":"accepted","id":1,"cost":1.0,"queue_depth":0}}"#);
            }
            let _ = writer.flush();
            // Dropping writer/reader closes the socket mid-stream.
        }
    });
    addr
}

#[test]
fn mid_stream_disconnects_reassign_the_shard_to_a_survivor() {
    let spec = SweepSpec::from_json(&spec_json("fleet-flaky")).expect("spec parses");
    let reference = reference_bytes(&spec);

    let flaky_addr = flaky_worker();
    let (good_addr, good) = daemon(ServeOptions::default());
    let coordinator = Coordinator::new(
        vec![
            Worker::named(flaky_addr, "flaky"),
            Worker::named(good_addr.clone(), "good"),
        ],
        FleetOptions {
            max_shard_attempts: 5,
            // The flaky worker retires on its first failure, so the survivor
            // deterministically finishes the whole grid.
            worker_failure_limit: 1,
            backoff: Duration::from_millis(10),
            ..FleetOptions::default()
        },
    )
    .expect("coordinator builds");

    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    let run = coordinator
        .run(&spec, move |line| sink.lock().expect("line sink").push(line))
        .expect("fleet run survives the flaky worker");

    assert_eq!(
        run.report.to_json(),
        reference,
        "reassigned shards must not change a single byte of the merged report"
    );
    assert!(
        run.stats.reassigned >= 1,
        "the flaky worker's shard must be picked up by the survivor: {:?}",
        lines.lock().expect("line sink").join("\n")
    );
    assert_eq!(run.stats.duplicates, 0, "first-completed-wins never duplicates cells");
    let flaky = &run.stats.workers[0];
    assert!(flaky.retired, "one failure must retire the flaky worker here");
    assert!(flaky.failures >= 1);
    assert_eq!(run.stats.workers[1].shards_completed, 2);

    drain(&good_addr);
    good.join().expect("daemon thread").expect("daemon exits cleanly");
}

/// Spawns a real `geattack-serve` process on an ephemeral port and parses the
/// bound address from its startup line. The rest of its stderr drains in a
/// background thread so the pipe can never fill.
fn spawn_worker(fleet_id: &str) -> (String, std::process::Child) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_geattack-serve"))
        .args(["listen", "--addr", "127.0.0.1:0", "--serial", "--fleet-id", fleet_id])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("geattack-serve spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            reader.read_line(&mut line).expect("startup line"),
            0,
            "daemon exited early"
        );
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.split_whitespace().next().expect("bound address").to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        while let Ok(n) = reader.read_line(&mut sink) {
            if n == 0 {
                break;
            }
            sink.clear();
        }
    });
    (addr, child)
}

#[test]
fn sigkilled_workers_are_reassigned_and_the_merged_bytes_stay_identical() {
    let spec = SweepSpec::from_json(&heavy_spec_json("fleet-kill")).expect("spec parses");
    let reference = reference_bytes(&spec);

    let (addr1, child1) = spawn_worker("w1");
    let (addr2, child2) = spawn_worker("w2");
    let coordinator = Coordinator::new(
        vec![Worker::named(addr1.clone(), "w1"), Worker::named(addr2, "w2")],
        FleetOptions {
            max_shard_attempts: 5,
            worker_failure_limit: 1,
            connect_timeout: Duration::from_secs(2),
            backoff: Duration::from_millis(10),
            ..FleetOptions::default()
        },
    )
    .expect("coordinator builds");

    // SIGKILL w2 the moment its shard is accepted: the daemon is mid-shard
    // (its first cell is still training) and its stream dies, so the shard
    // must finish on w1.
    let victim = Arc::new(Mutex::new(Some(child2)));
    let killer = Arc::clone(&victim);
    let run = coordinator
        .run(&spec, move |line| {
            if line.contains("[w2]") && line.contains("accepted") {
                if let Some(mut child) = killer.lock().expect("victim lock").take() {
                    child.kill().expect("SIGKILL delivered");
                    child.wait().expect("killed worker reaped");
                }
            }
        })
        .expect("fleet run survives the killed worker");

    assert!(
        victim.lock().expect("victim lock").is_none(),
        "w2 must have been dispatched a shard (and been killed) during the run"
    );
    assert_eq!(
        run.report.to_json(),
        reference,
        "a worker killed mid-shard must not change the merged bytes"
    );
    assert!(run.stats.reassigned >= 1, "the killed worker's shard must move to w1");
    assert_eq!(run.stats.duplicates, 0);
    assert!(run.stats.workers[1].retired, "the killed worker retires");

    let mut child1 = child1;
    drain(&addr1);
    child1.wait().expect("drained worker exits");
}

#[test]
fn exhausted_shards_abort_with_a_fleet_error_and_preserve_completed_shards() {
    let spec = SweepSpec::from_json(&spec_json("fleet-exhaust")).expect("spec parses");

    // A one-request worker: it completes the first shard, then the daemon is
    // gone — the second shard must exhaust its attempts.
    let (addr, handle) = daemon(ServeOptions::with_max_requests(Some(1)));
    let results_dir = temp_dir("exhaust");
    let coordinator = Coordinator::new(
        vec![Worker::named(addr, "only")],
        FleetOptions {
            shards: Some(2),
            max_shard_attempts: 2,
            worker_failure_limit: 10,
            connect_timeout: Duration::from_millis(300),
            backoff: Duration::from_millis(10),
            results_dir: Some(results_dir.clone()),
            ..FleetOptions::default()
        },
    )
    .expect("coordinator builds");

    let err = coordinator.run(&spec, |_| {}).expect_err("the run must abort");
    assert_eq!(err.kind(), "fleet", "exhaustion surfaces as the typed fleet error");
    let message = err.to_string();
    assert!(message.contains("exhausted its 2 attempt(s)"), "{message}");
    assert!(
        message.contains("preserved for geattack-merge"),
        "the error must point at the preserved partial artifacts: {message}"
    );

    // The completed shard survives on disk, parseable and correctly indexed,
    // so a manual `geattack-merge` can finish the job.
    let preserved = results_dir.join("sweep_fleet-exhaust.shard0of2.json");
    let text = std::fs::read_to_string(&preserved).expect("preserved shard artifact exists");
    let shard = ShardReport::from_json(&text).expect("preserved shard parses");
    assert_eq!((shard.shard_index, shard.shard_count), (0, 2));
    assert_eq!(shard.sweep, "fleet-exhaust");
    assert!(
        !results_dir.join("sweep_fleet-exhaust.json").exists(),
        "an aborted run must not write the merged artifact"
    );

    handle.join().expect("daemon thread").expect("daemon exits cleanly");
    let _ = std::fs::remove_dir_all(&results_dir);
}
