//! Concurrency behavior of the serve daemon: simultaneous requests execute in
//! parallel with byte-identical reports, cancellation aborts one session
//! without disturbing the daemon, admission control rejects when the queue is
//! full, and drain/term-signal shut the daemon down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use geattack_bench::serve::{connect_retry, serve, submit, ServeOptions};
use geattack_core::engine::Engine;
use geattack_scenarios::SweepSpec;
use serde::Value;

/// A small-but-real spec (one GCN training per seed); `seeds` and `name` vary
/// per test below.
fn spec_json(name: &str, seeds: &[u64]) -> String {
    let seeds = seeds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ");
    format!(
        r#"{{
            "name": "{name}",
            "families": ["tree-cycles"],
            "scales": [0.07],
            "seeds": [{seeds}],
            "attackers": ["fga-t", "rna"],
            "victims": 3
        }}"#
    )
}

/// Starts an in-process daemon on an ephemeral port.
fn daemon(options: ServeOptions) -> (String, std::thread::JoinHandle<std::io::Result<usize>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Engine::new().serial(true);
    let handle = std::thread::spawn(move || serve(listener, &engine, options));
    (addr, handle)
}

/// Sends raw NDJSON lines over one connection, one parsed response per line.
fn raw_request(addr: &str, lines: &[&str]) -> Vec<Value> {
    let stream = connect_retry(addr, Duration::from_secs(10)).expect("connects");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for line in lines {
        writeln!(writer, "{line}").expect("sends");
        writer.flush().expect("flushes");
        let mut response = String::new();
        reader.read_line(&mut response).expect("reads");
        responses.push(serde_json::from_str(response.trim()).expect("response parses"));
    }
    responses
}

fn field(value: &Value, name: &str) -> Value {
    value.get_field(name).expect(name).clone()
}

fn number(value: &Value, name: &str) -> f64 {
    match field(value, name) {
        Value::Number(n) => n,
        other => panic!("{name} is not a number: {other:?}"),
    }
}

#[test]
fn concurrent_clients_get_byte_identical_reports_and_overlap_in_flight() {
    let spec_a = spec_json("conc-a", &[0]);
    let spec_b = spec_json("conc-b", &[1]);
    let reference = |text: &str| {
        Engine::new()
            .serial(true)
            .run_report(&SweepSpec::from_json(text).expect("spec parses"))
            .expect("reference sweep runs")
            .to_json()
    };
    let (reference_a, reference_b) = (reference(&spec_a), reference(&spec_b));

    let (addr, handle) = daemon(ServeOptions {
        workers: 2,
        queue_limit: 4,
        ..Default::default()
    });
    let outcomes = std::thread::scope(|scope| {
        let submit_one = |text: &str| {
            let addr = addr.clone();
            let text = text.to_string();
            scope.spawn(move || submit(&addr, &text, Duration::from_secs(60), |_| {}))
        };
        let a = submit_one(&spec_a);
        let b = submit_one(&spec_b);
        (a.join().expect("client a"), b.join().expect("client b"))
    });
    let outcome_a = outcomes.0.expect("request a succeeds");
    let outcome_b = outcomes.1.expect("request b succeeds");
    assert_eq!(outcome_a.report_pretty, reference_a, "served bytes must match the CLI");
    assert_eq!(outcome_b.report_pretty, reference_b, "served bytes must match the CLI");
    assert_ne!(outcome_a.request_id, outcome_b.request_id, "requests get distinct ids");

    let stats = &raw_request(&addr, &[r#"{"request":"stats"}"#])[0];
    let requests = field(stats, "requests");
    assert_eq!(number(&requests, "served"), 2.0);
    assert!(
        number(&requests, "peak_in_flight") >= 2.0,
        "two workers must have executed simultaneously: {stats:?}"
    );
    let queue = field(stats, "queue");
    assert_eq!(number(&queue, "workers"), 2.0);
    let latency = field(stats, "latency_ms");
    assert_eq!(number(&field(&latency, "request_run"), "count"), 2.0);
    assert_eq!(number(&field(&latency, "request_wait"), "count"), 2.0);

    let _ = raw_request(&addr, &[r#"{"request":"drain"}"#]);
    let accepted = handle.join().expect("daemon thread").expect("daemon exits cleanly");
    assert_eq!(accepted, 2);
}

#[test]
fn cancelling_a_request_mid_flight_leaves_the_daemon_healthy() {
    let (addr, handle) = daemon(ServeOptions {
        workers: 1,
        queue_limit: 4,
        ..Default::default()
    });

    // Submit a 6-cell sweep on a raw connection so the event stream is visible
    // line by line.
    let stream = connect_retry(&addr, Duration::from_secs(10)).expect("connects");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let spec: Value = serde_json::from_str(&spec_json("cancel-me", &[0, 1, 2, 3, 4, 5])).expect("valid json");
    writeln!(writer, "{}", serde_json::to_string(&spec).expect("compact")).expect("sends");
    writer.flush().expect("flushes");

    // Read until the first cell starts, remembering the request id.
    let mut id = None;
    let mut lines = (&mut reader).lines();
    for line in &mut lines {
        let value: Value = serde_json::from_str(line.expect("reads").trim()).expect("event parses");
        match field(&value, "event") {
            Value::String(e) if e == "accepted" => id = Some(number(&value, "id") as u64),
            Value::String(e) if e == "started" => break,
            _ => {}
        }
    }
    let id = id.expect("an accepted event named the request id");

    // Cancel it from a second connection.
    let cancelled = &raw_request(&addr, &[&format!(r#"{{"request":"cancel","id":{id}}}"#)])[0];
    assert!(matches!(field(cancelled, "event"), Value::String(e) if e == "cancelled"));

    // The stream must terminate with an error event mentioning the
    // cancellation; skipped cells surface as failed events of kind
    // `cancelled` along the way.
    let mut saw_cancelled_cell = false;
    let mut terminal = None;
    for line in &mut lines {
        let value: Value = serde_json::from_str(line.expect("reads").trim()).expect("event parses");
        match field(&value, "event") {
            Value::String(e) if e == "failed" => {
                if matches!(field(&value, "kind"), Value::String(k) if k == "cancelled") {
                    saw_cancelled_cell = true;
                }
            }
            Value::String(e) if e == "error" => {
                terminal = Some(field(&value, "error"));
                break;
            }
            Value::String(e) if e == "done" => panic!("cancelled request must not complete"),
            _ => {}
        }
    }
    assert!(saw_cancelled_cell, "remaining cells must be skipped as cancelled");
    match terminal {
        Some(Value::String(message)) => {
            assert!(
                message.contains("cancel"),
                "error must mention the cancellation: {message}"
            )
        }
        other => panic!("stream must end in an error event, got {other:?}"),
    }

    // The daemon keeps serving: health answers, a fresh request completes, and
    // the stats ledger shows exactly one cancelled request.
    let health = &raw_request(&addr, &[r#"{"request":"health"}"#])[0];
    assert!(matches!(field(health, "status"), Value::String(s) if s == "ok"));
    let outcome = submit(&addr, &spec_json("after-cancel", &[0]), Duration::from_secs(60), |_| {})
        .expect("the daemon survives a cancellation");
    assert_eq!(outcome.sweep, "after-cancel");
    let stats = &raw_request(&addr, &[r#"{"request":"stats"}"#])[0];
    let requests = field(stats, "requests");
    assert_eq!(number(&requests, "cancelled"), 1.0);
    assert_eq!(number(&requests, "served"), 1.0);
    assert!(number(&field(stats, "cells"), "cancelled") >= 1.0);

    let _ = raw_request(&addr, &[r#"{"request":"drain"}"#]);
    handle.join().expect("daemon thread").expect("daemon exits cleanly");
}

#[test]
fn full_queue_rejects_with_a_protocol_error() {
    let (addr, handle) = daemon(ServeOptions {
        workers: 1,
        queue_limit: 0,
        ..Default::default()
    });

    // Occupy the single worker, signalling once the first cell is running.
    let (started_tx, started_rx) = mpsc::channel();
    let first = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            submit(
                &addr,
                &spec_json("occupy", &[0, 1]),
                Duration::from_secs(60),
                move |p| {
                    if p.contains("started") {
                        let _ = started_tx.send(());
                    }
                },
            )
        })
    };
    started_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("first request starts");

    // With a zero-length queue the concurrent request is rejected outright.
    let err = submit(&addr, &spec_json("rejected", &[0]), Duration::from_secs(30), |_| {}).unwrap_err();
    assert!(err.contains("queue full"), "{err}");
    first.join().expect("client").expect("occupying request completes");

    let stats = &raw_request(&addr, &[r#"{"request":"stats"}"#])[0];
    let requests = field(stats, "requests");
    assert_eq!(number(&requests, "rejected"), 1.0);
    assert_eq!(number(&requests, "served"), 1.0);

    let _ = raw_request(&addr, &[r#"{"request":"drain"}"#]);
    handle.join().expect("daemon thread").expect("daemon exits cleanly");
}

#[test]
fn malformed_control_requests_answer_with_errors_not_hangups() {
    let (addr, handle) = daemon(ServeOptions::default());
    let responses = raw_request(
        &addr,
        &[
            r#"{"request":"cancel"}"#,
            r#"{"request":"cancel","id":"seven"}"#,
            r#"{"request":"cancel","id":999}"#,
            r#"{"request":"reopen"}"#,
            r#"{"not json"#,
        ],
    );
    let message = |value: &Value| match field(value, "error") {
        Value::String(m) => m,
        other => panic!("expected an error event, got {other:?}"),
    };
    assert!(message(&responses[0]).contains("numeric `id`"), "{responses:?}");
    assert!(message(&responses[1]).contains("numeric `id`"), "{responses:?}");
    assert!(message(&responses[2]).contains("no active request"), "{responses:?}");
    assert!(message(&responses[3]).contains("unknown request"), "{responses:?}");
    // A line that is not JSON at all is not a control request; it falls
    // through to spec parsing and errors there — on the same live connection.
    assert!(matches!(field(&responses[4], "event"), Value::String(e) if e == "error"));

    // All of that left the request ledger untouched.
    let stats = &raw_request(&addr, &[r#"{"request":"stats"}"#])[0];
    let requests = field(stats, "requests");
    assert_eq!(number(&requests, "served"), 0.0);
    assert_eq!(number(&requests, "cancelled"), 0.0);

    let _ = raw_request(&addr, &[r#"{"request":"drain"}"#]);
    handle.join().expect("daemon thread").expect("daemon exits cleanly");
}

#[test]
fn drain_refuses_new_sweeps_but_finishes_the_one_in_flight() {
    let (addr, handle) = daemon(ServeOptions {
        workers: 1,
        queue_limit: 4,
        ..Default::default()
    });

    let (started_tx, started_rx) = mpsc::channel();
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            submit(
                &addr,
                &spec_json("drain-rt", &[0, 1]),
                Duration::from_secs(60),
                move |p| {
                    if p.contains("started") {
                        let _ = started_tx.send(());
                    }
                },
            )
        })
    };
    started_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("request starts");

    // Drain while the sweep runs: the daemon acknowledges with its live
    // occupancy, refuses a subsequent sweep on the same connection, and still
    // finishes the in-flight request.
    let stream = connect_retry(&addr, Duration::from_secs(10)).expect("connects");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"request":"drain"}}"#).expect("sends");
    writer.flush().expect("flushes");
    let mut response = String::new();
    reader.read_line(&mut response).expect("reads");
    let draining: Value = serde_json::from_str(response.trim()).expect("parses");
    assert!(matches!(field(&draining, "event"), Value::String(e) if e == "draining"));
    assert_eq!(number(&draining, "in_flight"), 1.0);

    let refused_spec: Value = serde_json::from_str(&spec_json("too-late", &[0])).expect("valid json");
    writeln!(writer, "{}", serde_json::to_string(&refused_spec).expect("compact")).expect("sends");
    writer.flush().expect("flushes");
    let mut refused = String::new();
    reader.read_line(&mut refused).expect("reads");
    let refused: Value = serde_json::from_str(refused.trim()).expect("parses");
    match field(&refused, "error") {
        Value::String(m) => assert!(m.contains("draining"), "{m}"),
        other => panic!("expected an error event, got {other:?}"),
    }
    drop(reader);
    drop(writer);

    let outcome = in_flight.join().expect("client").expect("in-flight request finishes");
    assert_eq!(outcome.sweep, "drain-rt");
    let accepted = handle.join().expect("daemon thread").expect("daemon drains cleanly");
    assert_eq!(accepted, 1, "only the in-flight sweep was admitted");
}

#[test]
fn a_set_term_signal_drains_the_daemon_like_sigterm_would() {
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let (addr, handle) = daemon(ServeOptions {
        term_signal: Some(flag),
        ..Default::default()
    });
    // The daemon is idle; flipping the flag (what the SIGTERM handler does)
    // must make serve() return promptly with zero requests.
    let health = &raw_request(&addr, &[r#"{"request":"health"}"#])[0];
    assert!(matches!(field(health, "status"), Value::String(s) if s == "ok"));
    flag.store(true, Ordering::SeqCst);
    let accepted = handle.join().expect("daemon thread").expect("daemon exits cleanly");
    assert_eq!(accepted, 0);
}

#[test]
fn connect_retry_gives_up_after_the_timeout() {
    // Bind then drop a listener so the port is (almost certainly) closed.
    let port = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        listener.local_addr().expect("addr").port()
    };
    let addr = format!("127.0.0.1:{port}");
    let begun = Instant::now();
    let err = connect_retry(&addr, Duration::from_millis(300)).unwrap_err();
    assert!(err.contains("cannot connect"), "{err}");
    assert!(
        begun.elapsed() >= Duration::from_millis(250),
        "must keep retrying until the deadline, gave up after {:?}",
        begun.elapsed()
    );
}
