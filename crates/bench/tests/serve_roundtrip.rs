//! Round-trip test of the serve protocol: a spec submitted over TCP must come
//! back as an NDJSON event stream whose assembled report is **byte-identical**
//! to what a `geattack-sweep` run of the same spec writes — cold and warm,
//! with the daemon's shared cache hitting on the second request.

use std::net::TcpListener;
use std::time::Duration;

use geattack_bench::serve::{serve, submit};
use geattack_core::engine::Engine;
use geattack_scenarios::SweepSpec;
use serde::Value;

/// The wire spec: tiny but real (one GCN training, two attackers).
const SPEC: &str = r#"{
    "name": "serve-rt",
    "families": ["tree-cycles"],
    "scales": [0.07],
    "seeds": [0],
    "attackers": ["fga-t", "rna"],
    "victims": 3
}"#;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("geattack-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn served_reports_are_byte_identical_to_cli_sweeps_and_share_the_cache() {
    let spec = SweepSpec::from_json(SPEC).expect("spec parses");

    // What `geattack-sweep` would write for this spec.
    let reference = Engine::new()
        .serial(true)
        .run_report(&spec)
        .expect("reference sweep runs")
        .to_json();

    // An in-process daemon on an ephemeral port, with a shared cache, serving
    // exactly two requests then exiting.
    let cache_dir = temp_dir("cache");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Engine::new()
        .serial(true)
        .with_cache(cache_dir.clone(), None)
        .expect("cache opens");
    let daemon = std::thread::spawn(move || serve(listener, &engine, Some(2)));

    // Cold request: the daemon prepares and caches the experiment.
    let cold = submit(&addr, SPEC, Duration::from_secs(10), |_| {}).expect("cold submit succeeds");
    assert_eq!(cold.sweep, "serve-rt");
    assert_eq!(
        cold.report_pretty, reference,
        "NDJSON-assembled report must be byte-identical to the CLI artifact"
    );

    // Warm request over a fresh connection: same bytes, served from cache.
    let warm = submit(&addr, SPEC, Duration::from_secs(10), |_| {}).expect("warm submit succeeds");
    assert_eq!(
        warm.report_pretty, reference,
        "warm-cache round-trip stays byte-identical"
    );
    match &warm.cache {
        Value::Object(_) => {
            let hits = match warm.cache.get_field("hits") {
                Ok(Value::Number(h)) => *h as u64,
                other => panic!("cache counters missing hits: {other:?}"),
            };
            assert!(hits >= 1, "the second request must hit the shared cache");
        }
        other => panic!("daemon ran with a cache but reported {other:?}"),
    }

    let served = daemon.join().expect("daemon thread").expect("daemon exits cleanly");
    assert_eq!(served, 2);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn request_level_errors_come_back_as_error_events_and_the_daemon_survives() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Engine::new().serial(true);
    let daemon = std::thread::spawn(move || serve(listener, &engine, Some(1)));

    // An invalid spec (unknown family) must produce a protocol-level error…
    let bad = r#"{ "name": "bad", "families": ["petersen"], "attackers": ["rna"] }"#;
    let err = submit(&addr, bad, Duration::from_secs(10), |_| {}).unwrap_err();
    assert!(err.contains("unknown graph family"), "{err}");

    // …while the daemon keeps serving: the next (valid) request completes.
    let mut spec = SweepSpec::from_json(SPEC).expect("spec parses");
    spec.name = "serve-recovers".to_string();
    let good = serde_json::to_string_pretty(&spec).expect("serializes");
    let outcome = submit(&addr, &good, Duration::from_secs(10), |_| {}).expect("valid submit succeeds");
    assert_eq!(outcome.sweep, "serve-recovers");

    daemon.join().expect("daemon thread").expect("daemon exits cleanly");
}
