//! Round-trip test of the serve protocol: a spec submitted over TCP must come
//! back as an NDJSON event stream whose assembled report is **byte-identical**
//! to what a `geattack-sweep` run of the same spec writes — cold and warm,
//! with the daemon's shared cache hitting on the second request.

use std::net::TcpListener;
use std::time::Duration;

use geattack_bench::serve::{serve, submit, ServeOptions};
use geattack_core::engine::{CancelToken, Engine};
use geattack_core::sweep::{merge_shards, Shard};
use geattack_fleet::client::{ServeClient, ShardEvent};
use geattack_scenarios::SweepSpec;
use serde::Value;

/// The wire spec: tiny but real (one GCN training, two attackers).
const SPEC: &str = r#"{
    "name": "serve-rt",
    "families": ["tree-cycles"],
    "scales": [0.07],
    "seeds": [0],
    "attackers": ["fga-t", "rna"],
    "victims": 3
}"#;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("geattack-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn served_reports_are_byte_identical_to_cli_sweeps_and_share_the_cache() {
    let spec = SweepSpec::from_json(SPEC).expect("spec parses");

    // What `geattack-sweep` would write for this spec.
    let reference = Engine::new()
        .serial(true)
        .run_report(&spec)
        .expect("reference sweep runs")
        .to_json();

    // An in-process daemon on an ephemeral port, with a shared cache, serving
    // exactly two requests then exiting.
    let cache_dir = temp_dir("cache");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Engine::new()
        .serial(true)
        .with_cache(cache_dir.clone(), None)
        .expect("cache opens");
    let daemon = std::thread::spawn(move || serve(listener, &engine, ServeOptions::with_max_requests(Some(2))));

    // Cold request: the daemon prepares and caches the experiment.
    let cold = submit(&addr, SPEC, Duration::from_secs(10), |_| {}).expect("cold submit succeeds");
    assert_eq!(cold.sweep, "serve-rt");
    assert_eq!(
        cold.report_pretty, reference,
        "NDJSON-assembled report must be byte-identical to the CLI artifact"
    );

    // Warm request over a fresh connection: same bytes, served from cache.
    let warm = submit(&addr, SPEC, Duration::from_secs(10), |_| {}).expect("warm submit succeeds");
    assert_eq!(
        warm.report_pretty, reference,
        "warm-cache round-trip stays byte-identical"
    );
    match &warm.cache {
        Value::Object(_) => {
            let hits = match warm.cache.get_field("hits") {
                Ok(Value::Number(h)) => *h as u64,
                other => panic!("cache counters missing hits: {other:?}"),
            };
            assert!(hits >= 1, "the second request must hit the shared cache");
        }
        other => panic!("daemon ran with a cache but reported {other:?}"),
    }

    let served = daemon.join().expect("daemon thread").expect("daemon exits cleanly");
    assert_eq!(served, 2);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn sharded_requests_stream_shard_reports_that_merge_byte_identically() {
    let spec = SweepSpec::from_json(SPEC).expect("spec parses");
    let reference = Engine::new()
        .serial(true)
        .run_report(&spec)
        .expect("reference sweep runs")
        .to_json();

    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Engine::new().serial(true);
    let options = ServeOptions {
        fleet_id: Some("w-test".to_string()),
        ..ServeOptions::with_max_requests(Some(2))
    };
    let daemon = std::thread::spawn(move || serve(listener, &engine, options));

    // The worker advertises its fleet identity in `stats`.
    let client = ServeClient::new(&addr);
    assert_eq!(client.fleet_id().expect("stats answers"), Some("w-test".to_string()));

    // Dispatch both slices of a 2-way split; each `accepted` event echoes its
    // shard label, and each `done` event carries the raw shard report.
    let cancel = CancelToken::new();
    let mut echoes = Vec::new();
    let shards: Vec<_> = Shard::split(2)
        .expect("split")
        .into_iter()
        .map(|shard| {
            client
                .submit_shard(&spec, shard, &cancel, |event| {
                    if let ShardEvent::Accepted { shard, .. } = event {
                        echoes.push(shard);
                    }
                })
                .expect("sharded submit succeeds")
        })
        .collect();
    assert_eq!(
        echoes,
        vec![Some("0/2".to_string()), Some("1/2".to_string())],
        "accepted events must echo the dispatched shard"
    );
    assert_eq!(shards[0].shard_index, 0);
    assert_eq!(shards[1].shard_index, 1);

    let merged = merge_shards(&shards).expect("slices merge strictly");
    assert_eq!(
        merged.to_json(),
        reference,
        "client-side merge of served shards must be byte-identical to the CLI artifact"
    );
    daemon.join().expect("daemon thread").expect("daemon exits cleanly");
}

#[test]
fn request_level_errors_come_back_as_error_events_and_the_daemon_survives() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let engine = Engine::new().serial(true);
    let daemon = std::thread::spawn(move || serve(listener, &engine, ServeOptions::with_max_requests(Some(1))));

    // An invalid spec (unknown family) must produce a protocol-level error…
    let bad = r#"{ "name": "bad", "families": ["petersen"], "attackers": ["rna"] }"#;
    let err = submit(&addr, bad, Duration::from_secs(10), |_| {}).unwrap_err();
    assert!(err.contains("unknown graph family"), "{err}");

    // …while the daemon keeps serving: the next (valid) request completes.
    let mut spec = SweepSpec::from_json(SPEC).expect("spec parses");
    spec.name = "serve-recovers".to_string();
    let good = serde_json::to_string_pretty(&spec).expect("serializes");
    let outcome = submit(&addr, &good, Duration::from_secs(10), |_| {}).expect("valid submit succeeds");
    assert_eq!(outcome.sweep, "serve-recovers");

    daemon.join().expect("daemon thread").expect("daemon exits cleanly");
}

/// Sends raw NDJSON lines over one connection and returns one parsed response
/// per request line.
fn raw_request(addr: &str, lines: &[&str]) -> Vec<Value> {
    use std::io::{BufRead, BufReader, Write};
    let stream = geattack_bench::serve::connect_retry(addr, Duration::from_secs(10)).expect("connects");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for line in lines {
        writeln!(writer, "{line}").expect("sends");
        writer.flush().expect("flushes");
        let mut response = String::new();
        reader.read_line(&mut response).expect("reads");
        responses.push(serde_json::from_str(response.trim()).expect("response parses"));
    }
    responses
}

#[test]
fn stats_and_health_requests_report_live_engine_state() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let cache_dir = temp_dir("stats");
    let engine = Engine::new()
        .serial(true)
        .with_cache(cache_dir.clone(), None)
        .expect("cache opens");
    let daemon = std::thread::spawn(move || serve(listener, &engine, ServeOptions::with_max_requests(Some(2))));

    // Cold daemon: health answers, stats shows an idle engine.
    let responses = raw_request(&addr, &[r#"{"request":"health"}"#, r#"{"request":"stats"}"#]);
    let field = |value: &Value, name: &str| value.get_field(name).expect(name).clone();
    assert!(matches!(field(&responses[0], "status"), Value::String(s) if s == "ok"));
    assert!(matches!(field(&responses[0], "uptime_ms"), Value::Number(_)));
    let cells = field(&responses[1], "cells");
    assert!(matches!(field(&cells, "finished"), Value::Number(n) if n == 0.0));

    // Run one sweep, then read stats again on a fresh connection. Control
    // requests never count toward --max-requests, so the daemon still waits
    // for a second sweep.
    submit(&addr, SPEC, Duration::from_secs(10), |_| {}).expect("sweep runs");
    let responses = raw_request(&addr, &[r#"{"request":"stats"}"#, r#"{"request":"reboot"}"#]);
    let stats = &responses[0];
    let requests = field(stats, "requests");
    assert!(matches!(field(&requests, "served"), Value::Number(n) if n == 1.0));
    let cells = field(stats, "cells");
    assert!(matches!(field(&cells, "finished"), Value::Number(n) if n == 1.0));
    let cache = field(stats, "cache");
    assert!(matches!(field(&cache, "misses"), Value::Number(n) if n >= 1.0));
    assert!(matches!(field(&cache, "hit_rate"), Value::Number(r) if (0.0..=1.0).contains(&r)));
    assert!(matches!(field(&cache, "bytes_encoded"), Value::Number(b) if b > 0.0));
    let latency = field(stats, "latency_ms");
    let cell_total = field(&latency, "cell_total");
    assert!(matches!(field(&cell_total, "count"), Value::Number(n) if n == 1.0));
    assert!(matches!(field(&cell_total, "p95"), Value::Number(p) if p > 0.0));
    // Unknown control requests answer with an error event, not a hangup.
    assert!(matches!(field(&responses[1], "event"), Value::String(e) if e == "error"));

    // A second sweep lets the daemon exit; it served 2 sweep requests.
    submit(&addr, SPEC, Duration::from_secs(10), |_| {}).expect("second sweep runs");
    let served = daemon.join().expect("daemon thread").expect("daemon exits cleanly");
    assert_eq!(served, 2, "control requests never count toward --max-requests");
    let _ = std::fs::remove_dir_all(&cache_dir);
}
