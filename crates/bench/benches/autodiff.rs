//! Micro-benchmarks of the autodiff substrate: matrix multiplication, a GCN-shaped
//! forward/backward, and the double-backward pattern GEAttack relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use geattack_tensor::{grad::grad, grad_values, init, Matrix, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for &n in &[64usize, 128, 256] {
        let a = init::uniform(n, n, -1.0, 1.0, &mut rng);
        let b = init::uniform(n, n, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_forward_backward(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let n = 200;
    let d = 64;
    let h = 16;
    let x = init::uniform(n, d, 0.0, 1.0, &mut rng);
    let w1 = init::glorot_uniform(d, h, &mut rng);
    let w2 = init::glorot_uniform(h, 4, &mut rng);
    let a = Matrix::from_fn(n, n, |i, j| if (i + j) % 17 == 0 && i != j { 1.0 } else { 0.0 });

    c.bench_function("gcn_like_forward_backward", |bencher| {
        bencher.iter(|| {
            let tape = Tape::new();
            let av = tape.input(a.clone());
            let xv = tape.constant(x.clone());
            let w1v = tape.constant(w1.clone());
            let w2v = tape.constant(w2.clone());
            let norm = geattack_tensor::nn::gcn_normalize(&tape, av);
            let hidden = tape.relu(tape.matmul(norm, tape.matmul(xv, w1v)));
            let logits = tape.matmul(norm, tape.matmul(hidden, w2v));
            let lp = geattack_tensor::nn::log_softmax_rows(&tape, logits);
            let loss = geattack_tensor::nn::node_class_nll(&tape, lp, 0, 1, 4);
            std::hint::black_box(grad_values(&tape, loss, &[av]))
        });
    });
}

fn bench_double_backward(c: &mut Criterion) {
    // The GEAttack inner-loop pattern: T gradient-descent steps on a mask, then a
    // gradient of the final mask with respect to the adjacency.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let k = 48;
    let a = Matrix::from_fn(k, k, |i, j| if (i + j) % 5 == 0 && i != j { 1.0 } else { 0.0 });
    let mask0 = init::normal(k, k, 0.0, 0.1, &mut rng);

    let mut group = c.benchmark_group("double_backward_inner_steps");
    for &steps in &[1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |bencher, &steps| {
            bencher.iter(|| {
                let tape = Tape::new();
                let av = tape.input(a.clone());
                let mut m = tape.input(mask0.clone());
                for _ in 0..steps {
                    let gated = tape.mul(av, tape.sigmoid(m));
                    let inner = tape.sum_all(tape.mul(gated, gated));
                    let step = grad(&tape, inner, &[m])[0];
                    m = tape.sub(m, tape.mul_scalar(step, 0.1));
                }
                let outer = tape.sum_all(m);
                std::hint::black_box(tape.value(grad(&tape, outer, &[av])[0]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_forward_backward, bench_double_backward);
criterion_main!(benches);
