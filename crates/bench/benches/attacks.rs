//! Benchmarks of the baseline attackers (cost of one full attack on one victim).

use criterion::{criterion_group, criterion_main, Criterion};

use geattack_attack::{AttackContext, FgaT, IgAttack, Nettack, RandomAttack, TargetedAttack};
use geattack_gnn::{train, TrainConfig};
use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
use geattack_graph::stratified_split;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (geattack_graph::Graph, geattack_gnn::Gcn, usize, usize) {
    let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(0.08, 0));
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
    let trained = train(
        &graph,
        &split,
        &TrainConfig {
            epochs: 60,
            patience: None,
            ..Default::default()
        },
    );
    let model = trained.model;
    let preds = model.predict_labels(&graph);
    let victim = (0..graph.num_nodes())
        .find(|&i| preds[i] == graph.label(i) && graph.degree(i) >= 3)
        .expect("no suitable victim");
    let target_label = (graph.label(victim) + 1) % graph.num_classes();
    (graph, model, victim, target_label)
}

fn bench_attacks(c: &mut Criterion) {
    let (graph, model, victim, target_label) = setup();
    let ctx = AttackContext {
        model: &model,
        graph: &graph,
        target: victim,
        target_label,
        budget: 3,
    };

    let mut group = c.benchmark_group("attack_one_victim_budget3");
    group.sample_size(10);
    group.bench_function("RNA", |b| {
        let attack = RandomAttack::new(0);
        b.iter(|| std::hint::black_box(attack.attack(&ctx)));
    });
    group.bench_function("FGA-T", |b| {
        let attack = FgaT::default();
        b.iter(|| std::hint::black_box(attack.attack(&ctx)));
    });
    group.bench_function("Nettack", |b| {
        let attack = Nettack::default();
        b.iter(|| std::hint::black_box(attack.attack(&ctx)));
    });
    group.bench_function("IG-Attack", |b| {
        let attack = IgAttack::default();
        b.iter(|| std::hint::black_box(attack.attack(&ctx)));
    });
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
