//! Sparse-compute benchmarks.
//!
//! `spmm_vs_dense_*`: the sparse compute core against its dense oracle — the
//! raw SpMM forward (normalized adjacency times the feature matrix) and one
//! full GCN training epoch at three dataset scales. The sparse and dense
//! variants produce bit-identical values, so the delta is pure compute cost —
//! O(nnz·f) against O(n²·f) per layer.
//!
//! `spmm_kernels`: the register-blocked spmm against the scalar reference
//! kernel (bit-identical results) and against the opt-in f32 kernel (reduced
//! precision, roughly half the memory traffic).
//!
//! `batched_forward`: one shared clean-graph forward pass against the two
//! separate full-graph passes it replaces in the evaluation loop
//! (`predict_proba` for the success check plus `node_embeddings` for the
//! explainer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use geattack_gnn::{train, train_dense_oracle, train_sparse, BatchedForward, TrainConfig};
use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
use geattack_graph::{normalized_adjacency, normalized_adjacency_csr, stratified_split};
use geattack_tensor::{Matrix, MatrixF32, SparseMatrixF32};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SCALES: [f64; 3] = [0.1, 0.2, 0.4];
const KERNEL_SCALES: [f64; 3] = [0.2, 0.4, 0.6];

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_vs_dense_forward");
    group.sample_size(10);
    for scale in SCALES {
        let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(scale, 0));
        let dense = normalized_adjacency(&graph);
        let sparse = normalized_adjacency_csr(&graph).matrix;
        let features = graph.features().clone();
        group.bench_with_input(BenchmarkId::new("dense", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(dense.matmul(&features)));
        });
        group.bench_with_input(BenchmarkId::new("sparse", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(sparse.spmm(&features)));
        });
    }
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_vs_dense_train_epoch");
    group.sample_size(10);
    let config = TrainConfig {
        epochs: 1,
        patience: None,
        ..Default::default()
    };
    for scale in SCALES {
        let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(scale, 0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        group.bench_with_input(BenchmarkId::new("dense", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(train_dense_oracle(&graph, &split, &config)));
        });
        group.bench_with_input(BenchmarkId::new("sparse", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(train_sparse(&graph, &split, &config)));
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_kernels");
    group.sample_size(10);
    for scale in KERNEL_SCALES {
        let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(scale, 0));
        let sparse = normalized_adjacency_csr(&graph).matrix;
        let features = graph.features().clone();
        let sparse32 = SparseMatrixF32::from_f64(&sparse);
        let features32 = MatrixF32::from_f64(&features);
        // The kernels write into a reused buffer (`*_into`) so the measurement
        // is the compute itself, not the page-faulting cost of a fresh zeroed
        // allocation per call — that shared constant would otherwise mask the
        // kernel delta (and the allocator's lazy zeroing would hand the scalar
        // loop its required zero-fill pass for free).
        let (rows, _) = sparse.shape();
        let mut out = Matrix::zeros(rows, features.cols());
        let mut out32 = MatrixF32::zeros(rows, features.cols());
        group.bench_with_input(BenchmarkId::new("scalar", scale), &scale, |bencher, _| {
            bencher.iter(|| sparse.spmm_reference_into(&features, std::hint::black_box(&mut out)));
        });
        group.bench_with_input(BenchmarkId::new("blocked", scale), &scale, |bencher, _| {
            bencher.iter(|| sparse.spmm_into(&features, std::hint::black_box(&mut out)));
        });
        group.bench_with_input(BenchmarkId::new("blocked_f32", scale), &scale, |bencher, _| {
            bencher.iter(|| sparse32.spmm_into(&features32, std::hint::black_box(&mut out32)));
        });
    }
    group.finish();
}

fn bench_batched_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_forward");
    group.sample_size(10);
    let config = TrainConfig {
        epochs: 30,
        patience: None,
        ..Default::default()
    };
    for scale in [0.2, 0.4] {
        let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(scale, 0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let model = train(&graph, &split, &config).model;
        group.bench_with_input(BenchmarkId::new("per_call", scale), &scale, |bencher, _| {
            bencher.iter(|| {
                std::hint::black_box(model.predict_proba(&graph));
                std::hint::black_box(model.node_embeddings(&graph));
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(BatchedForward::new(&model, &graph)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_train_epoch,
    bench_kernels,
    bench_batched_forward
);
criterion_main!(benches);
