//! `spmm_vs_dense`: the sparse compute core against its dense oracle.
//!
//! Two shapes at three dataset scales: the raw SpMM forward (normalized
//! adjacency times the feature matrix) and one full GCN training epoch. The
//! sparse and dense variants produce bit-identical values, so the delta is pure
//! compute cost — O(nnz·f) against O(n²·f) per layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use geattack_gnn::{train_dense_oracle, train_sparse, TrainConfig};
use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
use geattack_graph::{normalized_adjacency, normalized_adjacency_csr, stratified_split};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SCALES: [f64; 3] = [0.1, 0.2, 0.4];

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_vs_dense_forward");
    group.sample_size(10);
    for scale in SCALES {
        let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(scale, 0));
        let dense = normalized_adjacency(&graph);
        let sparse = normalized_adjacency_csr(&graph).matrix;
        let features = graph.features().clone();
        group.bench_with_input(BenchmarkId::new("dense", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(dense.matmul(&features)));
        });
        group.bench_with_input(BenchmarkId::new("sparse", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(sparse.spmm(&features)));
        });
    }
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_vs_dense_train_epoch");
    group.sample_size(10);
    let config = TrainConfig {
        epochs: 1,
        patience: None,
        ..Default::default()
    };
    for scale in SCALES {
        let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(scale, 0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        group.bench_with_input(BenchmarkId::new("dense", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(train_dense_oracle(&graph, &split, &config)));
        });
        group.bench_with_input(BenchmarkId::new("sparse", scale), &scale, |bencher, _| {
            bencher.iter(|| std::hint::black_box(train_sparse(&graph, &split, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_train_epoch);
criterion_main!(benches);
