//! Benchmarks of GCN training and inference on the synthetic datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use geattack_gnn::{train, TrainConfig};
use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
use geattack_graph::stratified_split;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("gcn_train_20_epochs");
    group.sample_size(10);
    for dataset in [DatasetName::Citeseer, DatasetName::Cora] {
        let graph = load(dataset, &GeneratorConfig::at_scale(0.1, 0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(dataset.as_str()), &dataset, |bencher, _| {
            bencher.iter(|| {
                std::hint::black_box(train(
                    &graph,
                    &split,
                    &TrainConfig {
                        epochs: 20,
                        patience: None,
                        ..Default::default()
                    },
                ))
            });
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(0.1, 0));
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
    let trained = train(
        &graph,
        &split,
        &TrainConfig {
            epochs: 30,
            patience: None,
            ..Default::default()
        },
    );
    c.bench_function("gcn_full_graph_inference", |bencher| {
        bencher.iter(|| std::hint::black_box(trained.model.predict_proba(&graph)));
    });
}

criterion_group!(benches, bench_training, bench_inference);
criterion_main!(benches);
