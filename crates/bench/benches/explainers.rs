//! Benchmarks of the explainers: GNNExplainer mask optimization and PGExplainer
//! inductive explanation.

use criterion::{criterion_group, criterion_main, Criterion};

use geattack_explain::{Explainer, GnnExplainer, GnnExplainerConfig, PgExplainer, PgExplainerConfig};
use geattack_gnn::{train, TrainConfig};
use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
use geattack_graph::stratified_split;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (geattack_graph::Graph, geattack_gnn::Gcn, Vec<usize>) {
    let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(0.08, 0));
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
    let trained = train(
        &graph,
        &split,
        &TrainConfig {
            epochs: 60,
            patience: None,
            ..Default::default()
        },
    );
    (graph, trained.model, split.test)
}

fn bench_gnnexplainer(c: &mut Criterion) {
    let (graph, model, _) = setup();
    let target = (0..graph.num_nodes()).max_by_key(|&i| graph.degree(i)).unwrap();
    let mut group = c.benchmark_group("gnnexplainer_explain");
    group.sample_size(10);
    for &epochs in &[20usize, 100] {
        group.bench_function(format!("{epochs}_epochs"), |bencher| {
            let explainer = GnnExplainer::new(GnnExplainerConfig {
                epochs,
                ..Default::default()
            });
            bencher.iter(|| std::hint::black_box(explainer.explain(&model, &graph, target)));
        });
    }
    group.finish();
}

fn bench_pgexplainer(c: &mut Criterion) {
    let (graph, model, test_nodes) = setup();
    let target = (0..graph.num_nodes()).max_by_key(|&i| graph.degree(i)).unwrap();
    let mut group = c.benchmark_group("pgexplainer");
    group.sample_size(10);
    group.bench_function("train", |bencher| {
        bencher.iter(|| {
            std::hint::black_box(PgExplainer::train(
                &model,
                &graph,
                &test_nodes,
                PgExplainerConfig {
                    epochs: 2,
                    training_instances: 8,
                    ..Default::default()
                },
            ))
        });
    });
    let explainer = PgExplainer::train(
        &model,
        &graph,
        &test_nodes,
        PgExplainerConfig {
            epochs: 2,
            training_instances: 8,
            ..Default::default()
        },
    );
    group.bench_function("explain", |bencher| {
        bencher.iter(|| std::hint::black_box(explainer.explain(&model, &graph, target)));
    });
    group.finish();
}

criterion_group!(benches, bench_gnnexplainer, bench_pgexplainer);
criterion_main!(benches);
