//! Benchmarks of GEAttack itself, including the ablation knobs the paper studies
//! (λ = 0 recovers the plain graph attack, larger `T` deepens the inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use geattack_attack::{AttackContext, TargetedAttack};
use geattack_core::{GeAttack, GeAttackConfig};
use geattack_explain::GnnExplainerConfig;
use geattack_gnn::{train, TrainConfig};
use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
use geattack_graph::stratified_split;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (geattack_graph::Graph, geattack_gnn::Gcn, usize, usize) {
    let graph = load(DatasetName::Cora, &GeneratorConfig::at_scale(0.08, 0));
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
    let trained = train(
        &graph,
        &split,
        &TrainConfig {
            epochs: 60,
            patience: None,
            ..Default::default()
        },
    );
    let model = trained.model;
    let preds = model.predict_labels(&graph);
    let victim = (0..graph.num_nodes())
        .find(|&i| preds[i] == graph.label(i) && graph.degree(i) >= 3)
        .expect("no suitable victim");
    let target_label = (graph.label(victim) + 1) % graph.num_classes();
    (graph, model, victim, target_label)
}

fn config(inner_steps: usize, lambda: f64) -> GeAttackConfig {
    GeAttackConfig {
        lambda,
        inner_steps,
        candidate_pool: 32,
        explainer: GnnExplainerConfig {
            epochs: 20,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn bench_inner_steps(c: &mut Criterion) {
    let (graph, model, victim, target_label) = setup();
    let ctx = AttackContext {
        model: &model,
        graph: &graph,
        target: victim,
        target_label,
        budget: 1,
    };
    let mut group = c.benchmark_group("geattack_one_edge_vs_inner_steps");
    group.sample_size(10);
    for &t in &[1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let attack = GeAttack::new(config(t, 20.0));
            b.iter(|| std::hint::black_box(attack.attack(&ctx)));
        });
    }
    group.finish();
}

fn bench_lambda_ablation(c: &mut Criterion) {
    // λ = 0 skips no work (the inner loop still runs) but isolates the cost of the
    // selection rule itself; comparing with λ = 20 shows the joint objective adds
    // no measurable overhead beyond the double-backward pass.
    let (graph, model, victim, target_label) = setup();
    let ctx = AttackContext {
        model: &model,
        graph: &graph,
        target: victim,
        target_label,
        budget: 2,
    };
    let mut group = c.benchmark_group("geattack_budget2_lambda_ablation");
    group.sample_size(10);
    for &lambda in &[0.0f64, 20.0, 500.0] {
        group.bench_with_input(BenchmarkId::from_parameter(lambda), &lambda, |b, &lambda| {
            let attack = GeAttack::new(config(3, lambda));
            b.iter(|| std::hint::black_box(attack.attack(&ctx)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inner_steps, bench_lambda_ablation);
criterion_main!(benches);
