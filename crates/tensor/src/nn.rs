//! Composite neural-network building blocks assembled from primitive tape ops.
//!
//! Everything in this module stays differentiable (including twice-differentiable)
//! because it only composes the primitives defined on [`Tape`].

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Numerically-stable row-wise softmax.
///
/// The per-row maximum is subtracted as a detached constant; this does not change
/// the value or the gradient of softmax and keeps `exp` in range.
pub fn softmax_rows(tape: &Tape, x: Var) -> Var {
    let shifted = sub_row_max(tape, x);
    let e = tape.exp(shifted);
    let sums = tape.sum_rows(e);
    let inv = tape.pow_scalar(sums, -1.0);
    tape.mul(e, tape.col_broadcast(inv, x.cols()))
}

/// Numerically-stable row-wise log-softmax.
pub fn log_softmax_rows(tape: &Tape, x: Var) -> Var {
    let shifted = sub_row_max(tape, x);
    let e = tape.exp(shifted);
    let log_sums = tape.ln(tape.sum_rows(e));
    tape.sub(shifted, tape.col_broadcast(log_sums, x.cols()))
}

fn sub_row_max(tape: &Tape, x: Var) -> Var {
    let max = tape.value_ref(x).row_max();
    let max_c = tape.constant(max);
    tape.sub(x, tape.col_broadcast(max_c, x.cols()))
}

/// Builds a one-hot matrix (`labels.len() x n_classes`) for use as a constant mask.
pub fn one_hot(labels: &[usize], n_classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), n_classes);
    for (i, &c) in labels.iter().enumerate() {
        assert!(c < n_classes, "label {c} out of range for {n_classes} classes");
        m[(i, c)] = 1.0;
    }
    m
}

/// Mean negative log-likelihood of `log_probs` (shape `n x C`) on the rows listed
/// in `node_indices` with the given `labels`.
///
/// This is the GCN training objective of Eq. (1): cross-entropy over labelled nodes.
pub fn masked_nll(tape: &Tape, log_probs: Var, node_indices: &[usize], labels: &[usize], n_classes: usize) -> Var {
    assert_eq!(
        node_indices.len(),
        labels.len(),
        "masked_nll: index/label length mismatch"
    );
    assert!(!node_indices.is_empty(), "masked_nll: empty node set");
    let selected = tape.gather_rows(log_probs, node_indices);
    let mask = tape.constant(one_hot(labels, n_classes));
    let picked = tape.mul(selected, mask);
    let total = tape.sum_all(picked);
    tape.mul_scalar(total, -1.0 / node_indices.len() as f64)
}

/// Negative log-likelihood of a single node's prediction for a single class,
/// `-log f(A, X)^{c}_{v}` — the per-target attack/explainer loss used throughout
/// the paper (Eq. 2, 3 and 4).
pub fn node_class_nll(tape: &Tape, log_probs: Var, node: usize, class: usize, n_classes: usize) -> Var {
    masked_nll(tape, log_probs, &[node], &[class], n_classes)
}

/// Differentiable symmetric GCN normalization
/// `Ã = D^{-1/2} (A + I) D^{-1/2}` with `D_ii = 1 + Σ_j A_ij`.
///
/// The normalization is part of the computation graph, so gradients with respect to
/// the raw adjacency matrix `A` (needed by FGA, IG-Attack and GEAttack) account for
/// the degree renormalization caused by inserting an edge.
pub fn gcn_normalize(tape: &Tape, a: Var) -> Var {
    assert_eq!(a.rows(), a.cols(), "gcn_normalize expects a square adjacency matrix");
    let n = a.rows();
    let a_hat = tape.add_const(a, &Matrix::eye(n));
    let degrees = tape.sum_rows(a_hat);
    let d_inv_sqrt = tape.pow_scalar(degrees, -0.5);
    let row_scaled = tape.mul(a_hat, tape.col_broadcast(d_inv_sqrt, n));
    let d_inv_sqrt_row = tape.transpose(d_inv_sqrt);
    tape.mul(row_scaled, tape.row_broadcast(d_inv_sqrt_row, n))
}

/// Plain (non-differentiable) symmetric GCN normalization on a concrete matrix.
pub fn gcn_normalize_matrix(a: &Matrix) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "gcn_normalize_matrix expects a square matrix");
    let n = a.rows();
    let mut a_hat = a.clone();
    for i in 0..n {
        a_hat[(i, i)] += 1.0;
    }
    let deg = a_hat.row_sums();
    let inv_sqrt: Vec<f64> = (0..n).map(|i| 1.0 / deg[(i, 0)].sqrt()).collect();
    Matrix::from_fn(n, n, |i, j| a_hat[(i, j)] * inv_sqrt[i] * inv_sqrt[j])
}

/// A dense layer `x @ w + b` with the bias broadcast over rows.
pub fn linear(tape: &Tape, x: Var, w: Var, b: Var) -> Var {
    let xw = tape.matmul(x, w);
    tape.add(xw, tape.row_broadcast(b, x.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad::grad;

    #[test]
    fn softmax_rows_sum_to_one() {
        let tape = Tape::new();
        let x = tape.input(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1000.0]));
        let s = tape.value(softmax_rows(&tape, x));
        for i in 0..2 {
            let sum: f64 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Extreme logits stay finite thanks to the max-shift.
        assert!((s[(1, 2)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let tape = Tape::new();
        let x = tape.input(Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.2, 2.0, 2.0, 2.0]));
        let ls = tape.value(log_softmax_rows(&tape, x));
        let s = tape.value(softmax_rows(&tape, x));
        assert!(ls.approx_eq(&s.map(f64::ln), 1e-9));
    }

    #[test]
    fn one_hot_rows() {
        let m = one_hot(&[2, 0], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn masked_nll_known_value() {
        let tape = Tape::new();
        // log-probs for 2 nodes, 2 classes
        let lp = tape.input(Matrix::from_vec(
            2,
            2,
            vec![(0.9f64).ln(), (0.1f64).ln(), (0.4f64).ln(), (0.6f64).ln()],
        ));
        let loss = masked_nll(&tape, lp, &[0, 1], &[0, 1], 2);
        let expected = -(0.9f64.ln() + 0.6f64.ln()) / 2.0;
        assert!((tape.value(loss).scalar() - expected).abs() < 1e-9);
    }

    #[test]
    fn node_class_nll_picks_single_entry() {
        let tape = Tape::new();
        let lp = tape.input(Matrix::from_vec(2, 3, vec![-0.1, -2.0, -3.0, -1.5, -0.2, -2.5]));
        let loss = node_class_nll(&tape, lp, 1, 2, 3);
        assert!((tape.value(loss).scalar() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gcn_normalize_matches_matrix_version() {
        let tape = Tape::new();
        let a = Matrix::from_vec(3, 3, vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let av = tape.input(a.clone());
        let norm = tape.value(gcn_normalize(&tape, av));
        let direct = gcn_normalize_matrix(&a);
        assert!(norm.approx_eq(&direct, 1e-12));
        // Symmetric input gives symmetric output.
        assert!(norm.approx_eq(&norm.transpose(), 1e-12));
    }

    #[test]
    fn gcn_normalize_row_known_values() {
        // Path graph 0-1: degrees with self loops are [2, 2].
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let norm = gcn_normalize_matrix(&a);
        assert!((norm[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((norm[(0, 1)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gcn_normalize_gradient_matches_finite_diff() {
        let a0 = Matrix::from_vec(3, 3, vec![0.0, 1.0, 0.2, 1.0, 0.0, 0.7, 0.2, 0.7, 0.0]);
        let f = |t: &Tape, a: Var| {
            let norm = gcn_normalize(t, a);
            t.sum_all(t.mul(norm, norm))
        };
        let tape = Tape::new();
        let a = tape.input(a0.clone());
        let y = f(&tape, a);
        let g = tape.value(grad(&tape, y, &[a])[0]);

        let eps = 1e-6;
        let mut numeric = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut p = a0.clone();
                p[(i, j)] += eps;
                let tp = Tape::new();
                let vp = tp.input(p);
                let fp = tp.value(f(&tp, vp)).scalar();
                let mut m = a0.clone();
                m[(i, j)] -= eps;
                let tm = Tape::new();
                let vm = tm.input(m);
                let fm = tm.value(f(&tm, vm)).scalar();
                numeric[(i, j)] = (fp - fm) / (2.0 * eps);
            }
        }
        assert!(g.approx_eq(&numeric, 1e-5), "{g:?} vs {numeric:?}");
    }

    #[test]
    fn linear_layer_shapes() {
        let tape = Tape::new();
        let x = tape.input(Matrix::ones(4, 3));
        let w = tape.input(Matrix::ones(3, 2));
        let b = tape.input(Matrix::row_vector(&[1.0, -1.0]));
        let y = tape.value(linear(&tape, x, w, b));
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y[(0, 0)], 4.0);
        assert_eq!(y[(0, 1)], 2.0);
    }
}
