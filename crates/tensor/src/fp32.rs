//! Opt-in single-precision containers for the reduced-precision train path.
//!
//! [`MatrixF32`] and [`SparseMatrixF32`] mirror the hot subset of [`Matrix`] /
//! [`SparseMatrix`] at `f32`, halving memory bandwidth on the spmm/matmul-bound
//! training and explanation epochs. They are **not** part of the default path:
//! the report pipeline stays f64 end-to-end, and nothing converts implicitly —
//! callers opt in via [`MatrixF32::from_f64`] / [`SparseMatrixF32::from_f64`]
//! and get back to f64 with [`MatrixF32::to_f64`].
//!
//! The kernels are generated from the same macro as the f64 ones
//! (see [`crate::kernels`]), so the blocking scheme and accumulation order are
//! structurally identical — only the scalar type changes. No bit-identity claim
//! crosses the precision boundary; the f32 path is pinned by shape, finiteness,
//! and tolerance tests instead.

use crate::kernels;
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;

/// A dense row-major `rows x cols` matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a generator over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Narrows an f64 matrix (round-to-nearest per element).
    pub fn from_f64(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        Self {
            rows,
            cols,
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Widens back to f64 (exact: every f32 is representable as f64).
    pub fn to_f64(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (o, &v) in out.as_mut_slice().iter_mut().zip(&self.data) {
            *o = v as f64;
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// All elements, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// All elements, row-major, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product through the same register-blocked, zero-skipping kernel
    /// shape as [`Matrix::matmul`], at f32.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        let n = other.cols;
        let bs = other.as_slice();
        for i in 0..self.rows {
            let entries = self.row(i).iter().copied().enumerate().filter(|&(_, a_ik)| a_ik != 0.0);
            kernels::mul_row_panels_f32(entries, bs, n, &mut out.data[i * n..(i + 1) * n]);
        }
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// A sparse `rows x cols` matrix in CSR form at `f32`.
///
/// Like [`SparseMatrix`], zeros are filtered at construction (a tiny f64 value
/// may round to `0.0f32` in [`SparseMatrixF32::from_f64`]; it is then dropped),
/// so the kernels never branch on the value.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrixF32 {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f32>,
}

impl SparseMatrixF32 {
    /// Narrows an f64 CSR matrix, dropping entries that round to zero.
    pub fn from_f64(src: &SparseMatrix) -> Self {
        let mut indptr = Vec::with_capacity(src.rows() + 1);
        let mut indices = Vec::with_capacity(src.nnz());
        let mut values = Vec::with_capacity(src.nnz());
        indptr.push(0);
        for i in 0..src.rows() {
            for (&j, &v) in src.row_indices(i).iter().zip(src.row_values(i)) {
                let vf = v as f32;
                if vf != 0.0 {
                    indices.push(j);
                    values.push(vf);
                }
            }
            indptr.push(indices.len());
        }
        Self {
            rows: src.rows(),
            cols: src.cols(),
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sparse-times-dense product `self · b`, register-blocked at f32.
    pub fn spmm(&self, b: &MatrixF32) -> MatrixF32 {
        let mut out = MatrixF32::zeros(self.rows, b.cols());
        self.spmm_into(b, &mut out);
        out
    }

    /// [`SparseMatrixF32::spmm`] into a caller-provided output buffer; every
    /// element of `out` is overwritten (see [`crate::SparseMatrix::spmm_into`]).
    pub fn spmm_into(&self, b: &MatrixF32, out: &mut MatrixF32) {
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Detail, "spmm.f32");
        assert_eq!(
            self.cols,
            b.rows(),
            "spmm: inner dimensions differ ({} vs {})",
            self.cols,
            b.rows()
        );
        let n = b.cols();
        assert_eq!(
            out.shape(),
            (self.rows, n),
            "spmm_into: output shape {:?} does not match result shape ({}, {})",
            out.shape(),
            self.rows,
            n
        );
        let bs = b.as_slice();
        for i in 0..self.rows {
            let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
            let entries = self.indices[lo..hi]
                .iter()
                .copied()
                .zip(self.values[lo..hi].iter().copied());
            kernels::mul_row_panels_f32(entries, bs, n, &mut out.data[i * n..(i + 1) * n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_shapes() {
        let m = Matrix::from_fn(3, 5, |i, j| (i as f64) * 0.25 - (j as f64) * 0.5);
        let f = MatrixF32::from_f64(&m);
        assert_eq!(f.shape(), (3, 5));
        // These values are exactly representable at f32, so the roundtrip is exact.
        assert!(f.to_f64().approx_eq(&m, 0.0));
    }

    #[test]
    fn f32_spmm_tracks_f64_within_tolerance() {
        let s = SparseMatrix::from_rows(
            3,
            3,
            &[vec![(0, 0.5), (2, 2.0)], vec![(1, -1.25)], vec![(0, 0.1), (1, 3.0)]],
        );
        let b = Matrix::from_fn(3, 7, |i, j| ((i * 7 + j) as f64).cos());
        let f64_out = s.spmm(&b);
        let f32_out = SparseMatrixF32::from_f64(&s).spmm(&MatrixF32::from_f64(&b));
        assert_eq!(f32_out.shape(), (3, 7));
        assert!(!f32_out.has_non_finite());
        assert!(f32_out.to_f64().approx_eq(&f64_out, 1e-5));
    }

    #[test]
    fn f32_matmul_tracks_f64_within_tolerance() {
        let a = Matrix::from_fn(4, 6, |i, j| {
            if (i + j) % 3 == 0 {
                0.0
            } else {
                0.3 * (i as f64) - 0.1 * (j as f64)
            }
        });
        let b = Matrix::from_fn(6, 5, |i, j| ((i + 2 * j) as f64).sin());
        let dense = a.matmul(&b);
        let f32_out = MatrixF32::from_f64(&a).matmul(&MatrixF32::from_f64(&b));
        assert!(!f32_out.has_non_finite());
        assert!(f32_out.to_f64().approx_eq(&dense, 1e-5));
    }

    #[test]
    fn narrowing_drops_entries_that_round_to_zero() {
        let s = SparseMatrix::from_rows(1, 2, &[vec![(0, 1e-300), (1, 1.0)]]);
        let f = SparseMatrixF32::from_f64(&s);
        assert_eq!(f.nnz(), 1);
    }
}
