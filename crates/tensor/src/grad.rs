//! Reverse-mode gradient construction.
//!
//! [`grad`] walks the tape backwards from a scalar output and accumulates
//! vector-Jacobian products. Crucially every VJP is expressed *with tape
//! operations*, so the returned gradients are ordinary [`Var`]s that can be fed
//! into further computations and differentiated again (double backward). This is
//! what lets GEAttack differentiate through the explainer's inner gradient-descent
//! updates (Eq. 6/8 of the paper).

use std::collections::HashMap;

use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use crate::tape::{Op, SparseVar, Tape, Var};

/// Computes `d output / d wrt[i]` for every requested variable.
///
/// `output` must be a `1x1` scalar. Variables that `output` does not depend on
/// receive an all-zeros gradient of their own shape.
///
/// The gradients are recorded on the same tape, so they can participate in new
/// expressions whose gradients can be taken in turn.
///
/// # Panics
/// Panics if `output` is not `1x1`.
pub fn grad(tape: &Tape, output: Var, wrt: &[Var]) -> Vec<Var> {
    grad_full(tape, output, wrt, &[]).0
}

/// [`grad`] extended with gradients for sparse operands.
///
/// For every requested [`SparseVar`] the second return value holds
/// `∂ output / ∂ A[i, j]` at exactly the positions registered via
/// [`Tape::sparse_input`], in registration order. These are concrete values, not
/// tape nodes: the sparse gradients are produced by candidate-masked SDDMM and
/// are consumed as final results (edge scores) by the attack loops, which do not
/// differentiate through them again. The dense gradients remain fully
/// differentiable tape expressions, including through spmm nodes (the
/// dense-operand backward of an spmm is another spmm).
pub fn grad_full(tape: &Tape, output: Var, wrt: &[Var], sparse_wrt: &[SparseVar]) -> (Vec<Var>, Vec<Vec<f64>>) {
    assert_eq!(output.shape(), (1, 1), "grad: output must be a 1x1 scalar");

    // Mark every ancestor of `output` so the backward sweep can skip unrelated nodes.
    let mut needed = vec![false; output.id() + 1];
    let mut stack = vec![output.id()];
    needed[output.id()] = true;
    while let Some(id) = stack.pop() {
        for &p in tape.parents_of(id).as_slice() {
            if !needed[p] {
                needed[p] = true;
                stack.push(p);
            }
        }
    }

    // One accumulation buffer per requested sparse operand, aligned with its
    // registered positions. Accumulation happens eagerly (values, not tape ops)
    // in the deterministic reverse-node-id order of the sweep.
    let mut sparse_accum: HashMap<usize, Vec<f64>> = sparse_wrt
        .iter()
        .map(|s| (s.id(), vec![0.0; tape.sparse_positions(*s).len()]))
        .collect();

    let mut grads: Vec<Option<Var>> = vec![None; output.id() + 1];
    grads[output.id()] = Some(tape.constant(Matrix::ones(1, 1)));

    for id in (0..=output.id()).rev() {
        if !needed[id] {
            continue;
        }
        let Some(g) = grads[id] else { continue };
        let op = tape.op_of(id);
        let parents = tape.parents_of(id);
        let parents = parents.as_slice();
        if let Op::Spmm { sparse } = op {
            if let Some(buffer) = sparse_accum.get_mut(&sparse) {
                let positions = tape.sparse_positions_by_id(sparse);
                let g_val = tape.value_ref(g);
                let b_val = tape.value_ref(tape.var_for(parents[0]));
                for (slot, v) in SparseMatrix::sddmm(&positions, &g_val, &b_val).into_iter().enumerate() {
                    buffer[slot] += v;
                }
            }
        }
        let (first, second) = vjp(tape, id, &op, parents, g);
        if let Some((slot, contribution)) = first {
            accumulate(tape, &mut grads, slot, contribution);
        }
        if let Some((slot, contribution)) = second {
            accumulate(tape, &mut grads, slot, contribution);
        }
    }

    let dense = wrt
        .iter()
        .map(|w| {
            if w.id() <= output.id() {
                if let Some(g) = grads[w.id()] {
                    return g;
                }
            }
            tape.constant(Matrix::zeros(w.rows(), w.cols()))
        })
        .collect();
    let sparse = sparse_wrt
        .iter()
        .map(|s| sparse_accum.remove(&s.id()).expect("buffer was created above"))
        .collect();
    (dense, sparse)
}

/// Convenience wrapper around [`grad`] returning concrete matrices instead of tape
/// handles. Use this when the gradient is a final result (e.g. an optimizer step)
/// rather than part of a larger differentiable expression.
pub fn grad_values(tape: &Tape, output: Var, wrt: &[Var]) -> Vec<Matrix> {
    grad(tape, output, wrt).into_iter().map(|v| tape.value(v)).collect()
}

fn accumulate(tape: &Tape, grads: &mut [Option<Var>], id: usize, contribution: Var) {
    grads[id] = Some(match grads[id] {
        Some(existing) => tape.add(existing, contribution),
        None => contribution,
    });
}

/// Up to two per-parent gradient contributions, inline (no heap allocation on
/// the per-node backward path — every primitive has at most two parents).
type Contribs = (Option<(usize, Var)>, Option<(usize, Var)>);

fn one(slot: usize, v: Var) -> Contribs {
    (Some((slot, v)), None)
}

fn two(a: (usize, Var), b: (usize, Var)) -> Contribs {
    (Some(a), Some(b))
}

/// Vector-Jacobian products of a single node: for each parent, the gradient
/// contribution flowing into it given the output gradient `g` of node `id`.
fn vjp(tape: &Tape, id: usize, op: &Op, parents: &[usize], g: Var) -> Contribs {
    let parent_var = |k: usize| tape.var_for(parents[k]);
    match op {
        Op::Leaf => (None, None),
        Op::Add => two((parents[0], g), (parents[1], g)),
        Op::Sub => two((parents[0], g), (parents[1], tape.neg(g))),
        Op::Neg => one(parents[0], tape.neg(g)),
        Op::Mul => {
            let a = parent_var(0);
            let b = parent_var(1);
            two((parents[0], tape.mul(g, b)), (parents[1], tape.mul(g, a)))
        }
        Op::AddScalar(_) => one(parents[0], g),
        Op::MulScalar(s) => one(parents[0], tape.mul_scalar(g, *s)),
        Op::PowScalar(p) => {
            let a = parent_var(0);
            let deriv = tape.mul_scalar(tape.pow_scalar(a, p - 1.0), *p);
            one(parents[0], tape.mul(g, deriv))
        }
        Op::MatMul => {
            let a = parent_var(0);
            let b = parent_var(1);
            let bt = tape.transpose(b);
            let at = tape.transpose(a);
            two((parents[0], tape.matmul(g, bt)), (parents[1], tape.matmul(at, g)))
        }
        Op::Transpose => one(parents[0], tape.transpose(g)),
        Op::Sigmoid => {
            // dσ/dx = σ(x)(1 - σ(x)); reuse the node's own output value.
            let y = tape.var_for(id);
            let one_minus = tape.add_scalar(tape.mul_scalar(y, -1.0), 1.0);
            let deriv = tape.mul(y, one_minus);
            one(parents[0], tape.mul(g, deriv))
        }
        Op::Relu => {
            // The subgradient mask is treated as a constant: the second derivative
            // of ReLU is zero almost everywhere, so detaching is exact for the
            // double-backward use case.
            let mask = tape.with_node(parents[0], |n| n.value.map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
            let mask = tape.constant(mask);
            one(parents[0], tape.mul(g, mask))
        }
        Op::Tanh => {
            let y = tape.var_for(id);
            let y2 = tape.mul(y, y);
            let deriv = tape.add_scalar(tape.mul_scalar(y2, -1.0), 1.0);
            one(parents[0], tape.mul(g, deriv))
        }
        Op::Exp => {
            let y = tape.var_for(id);
            one(parents[0], tape.mul(g, y))
        }
        Op::Ln => {
            let a = parent_var(0);
            let inv = tape.pow_scalar(a, -1.0);
            one(parents[0], tape.mul(g, inv))
        }
        Op::SumAll => {
            let a = parent_var(0);
            one(parents[0], tape.broadcast_scalar(g, a.rows(), a.cols()))
        }
        Op::SumRows => {
            let a = parent_var(0);
            one(parents[0], tape.col_broadcast(g, a.cols()))
        }
        Op::SumCols => {
            let a = parent_var(0);
            one(parents[0], tape.row_broadcast(g, a.rows()))
        }
        Op::BroadcastScalar { .. } => one(parents[0], tape.sum_all(g)),
        Op::ColBroadcast { .. } => one(parents[0], tape.sum_rows(g)),
        Op::RowBroadcast { .. } => one(parents[0], tape.sum_cols(g)),
        Op::GatherRows { indices } => {
            let a = parent_var(0);
            one(parents[0], tape.scatter_rows(g, indices, a.rows()))
        }
        Op::ScatterRows { indices, .. } => one(parents[0], tape.gather_rows(g, indices)),
        Op::Spmm { sparse } => {
            // C = A · B with sparse A: ∂L/∂B = Aᵀ · g, emitted as another spmm so
            // the dense gradient stays differentiable. The sparse operand's
            // gradient is handled by the masked SDDMM in the sweep itself.
            let at = tape.sparse_transpose_of(*sparse);
            one(parents[0], tape.spmm(at, g))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `d f / d x` for a scalar-valued builder.
    fn finite_diff(build: impl Fn(&Tape, Var) -> Var, x0: &Matrix, eps: f64) -> Matrix {
        let mut out = Matrix::zeros(x0.rows(), x0.cols());
        for i in 0..x0.rows() {
            for j in 0..x0.cols() {
                let mut plus = x0.clone();
                plus[(i, j)] += eps;
                let mut minus = x0.clone();
                minus[(i, j)] -= eps;
                let tape = Tape::new();
                let vp = tape.input(plus);
                let fp = tape.value(build(&tape, vp)).scalar();
                let tape = Tape::new();
                let vm = tape.input(minus);
                let fm = tape.value(build(&tape, vm)).scalar();
                out[(i, j)] = (fp - fm) / (2.0 * eps);
            }
        }
        out
    }

    fn check_grad(build: impl Fn(&Tape, Var) -> Var + Copy, x0: Matrix, tol: f64) {
        let tape = Tape::new();
        let x = tape.input(x0.clone());
        let y = build(&tape, x);
        let g = grad(&tape, y, &[x]);
        let analytic = tape.value(g[0]);
        let numeric = finite_diff(build, &x0, 1e-5);
        assert!(
            analytic.approx_eq(&numeric, tol),
            "gradient mismatch\nanalytic: {analytic:?}\nnumeric: {numeric:?}"
        );
    }

    #[test]
    fn grad_of_sum_is_ones() {
        let tape = Tape::new();
        let x = tape.input(Matrix::from_fn(3, 2, |i, j| (i + j) as f64));
        let y = tape.sum_all(x);
        let g = grad(&tape, y, &[x]);
        assert!(tape.value(g[0]).approx_eq(&Matrix::ones(3, 2), 1e-12));
    }

    #[test]
    fn grad_of_unrelated_var_is_zero() {
        let tape = Tape::new();
        let x = tape.input(Matrix::ones(2, 2));
        let z = tape.input(Matrix::ones(3, 1));
        let y = tape.sum_all(x);
        let g = grad(&tape, y, &[z]);
        assert!(tape.value(g[0]).approx_eq(&Matrix::zeros(3, 1), 1e-12));
    }

    #[test]
    fn grad_elementwise_chain_matches_finite_diff() {
        let x0 = Matrix::from_vec(2, 3, vec![0.5, -1.2, 0.3, 2.0, -0.7, 1.1]);
        check_grad(
            |t, x| {
                let s = t.sigmoid(x);
                let r = t.mul(s, s);
                t.sum_all(r)
            },
            x0,
            1e-6,
        );
    }

    #[test]
    fn grad_matmul_matches_finite_diff() {
        let x0 = Matrix::from_vec(2, 3, vec![0.5, -1.2, 0.3, 2.0, -0.7, 1.1]);
        check_grad(
            |t, x| {
                let w = t.constant(Matrix::from_fn(3, 2, |i, j| 0.3 * (i as f64) - 0.2 * (j as f64) + 0.1));
                let h = t.matmul(x, w);
                let h = t.relu(h);
                t.sum_all(t.mul(h, h))
            },
            x0,
            1e-5,
        );
    }

    #[test]
    fn grad_exp_ln_pow_matches_finite_diff() {
        let x0 = Matrix::from_vec(1, 4, vec![0.4, 1.3, 2.2, 0.9]);
        check_grad(
            |t, x| {
                let e = t.exp(x);
                let l = t.ln(t.add_scalar(e, 1.0));
                let p = t.pow_scalar(l, 1.5);
                t.sum_all(p)
            },
            x0,
            1e-6,
        );
    }

    #[test]
    fn grad_broadcast_reduction_matches_finite_diff() {
        let x0 = Matrix::from_vec(3, 1, vec![0.2, -0.4, 0.9]);
        check_grad(
            |t, x| {
                let b = t.col_broadcast(x, 4);
                let s = t.sigmoid(b);
                let r = t.sum_cols(s);
                t.sum_all(t.mul(r, r))
            },
            x0,
            1e-6,
        );
    }

    #[test]
    fn grad_gather_scatter_matches_finite_diff() {
        let x0 = Matrix::from_fn(4, 2, |i, j| 0.1 * (i as f64 + 1.0) * (j as f64 + 1.0));
        check_grad(
            |t, x| {
                let g = t.gather_rows(x, &[2, 0, 2]);
                let s = t.mul(g, g);
                t.sum_all(s)
            },
            x0,
            1e-6,
        );
    }

    #[test]
    fn grad_transpose_matches_finite_diff() {
        let x0 = Matrix::from_fn(2, 3, |i, j| (i as f64) - 0.5 * (j as f64));
        check_grad(
            |t, x| {
                let xt = t.transpose(x);
                let p = t.matmul(xt, x);
                t.sum_all(p)
            },
            x0,
            1e-5,
        );
    }

    #[test]
    fn double_backward_quadratic() {
        // f(x) = sum(x^3); df/dx = 3x^2; g(x) = sum(df/dx) => dg/dx = 6x.
        let x0 = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let tape = Tape::new();
        let x = tape.input(x0.clone());
        let f = tape.sum_all(tape.pow_scalar(x, 3.0));
        let df = grad(&tape, f, &[x])[0];
        let g = tape.sum_all(df);
        let d2 = grad(&tape, g, &[x])[0];
        let expected = x0.map(|v| 6.0 * v);
        assert!(tape.value(d2).approx_eq(&expected, 1e-8));
    }

    #[test]
    fn double_backward_through_gradient_step() {
        // Mimics the GEAttack inner loop on a toy problem:
        //   inner loss  L(m, a) = sum((m - a)^2)
        //   one gradient step m1 = m0 - eta * dL/dm = m0 - 2 eta (m0 - a)
        //   outer loss  J(a) = sum(m1 * a)
        // Analytically m1 = m0(1-2eta) + 2 eta a, so dJ/da = m0(1-2eta) + 4 eta a.
        let eta = 0.3;
        let m0 = Matrix::from_vec(1, 3, vec![0.5, -0.2, 1.0]);
        let a0 = Matrix::from_vec(1, 3, vec![1.5, 0.4, -0.3]);

        let tape = Tape::new();
        let a = tape.input(a0.clone());
        let m = tape.constant(m0.clone());
        let diff = tape.sub(m, a);
        let inner = tape.sum_all(tape.mul(diff, diff));
        let dm = grad(&tape, inner, &[m])[0];
        let m1 = tape.sub(m, tape.mul_scalar(dm, eta));
        let outer = tape.sum_all(tape.mul(m1, a));
        let da = grad(&tape, outer, &[a])[0];

        let expected = Matrix::from_fn(1, 3, |_, j| m0[(0, j)] * (1.0 - 2.0 * eta) + 4.0 * eta * a0[(0, j)]);
        assert!(
            tape.value(da).approx_eq(&expected, 1e-8),
            "outer gradient through inner step mismatch: {:?} vs {expected:?}",
            tape.value(da)
        );
    }

    #[test]
    fn grad_values_returns_matrices() {
        let tape = Tape::new();
        let x = tape.input(Matrix::ones(2, 2));
        let y = tape.sum_all(tape.mul(x, x));
        let gs = grad_values(&tape, y, &[x]);
        assert!(gs[0].approx_eq(&Matrix::full(2, 2, 2.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "1x1 scalar")]
    fn grad_requires_scalar_output() {
        let tape = Tape::new();
        let x = tape.input(Matrix::ones(2, 2));
        let _ = grad(&tape, x, &[x]);
    }

    fn sparse_example() -> SparseMatrix {
        SparseMatrix::from_rows(
            3,
            3,
            &[vec![(0, 0.5), (2, 2.0)], vec![(1, -1.5)], vec![(0, 1.0), (1, 3.0)]],
        )
    }

    #[test]
    fn spmm_forward_bitwise_matches_dense() {
        let tape = Tape::new();
        let s = sparse_example();
        let b0 = Matrix::from_fn(3, 2, |i, j| 0.3 * (i as f64) - 0.4 * (j as f64) + 0.1);
        let a = tape.sparse_constant(s.clone());
        let b = tape.input(b0.clone());
        let c = tape.spmm(a, b);
        let dense = s.to_dense().matmul(&b0);
        assert_eq!(tape.value(c).as_slice(), dense.as_slice());
    }

    #[test]
    fn spmm_dense_gradient_matches_dense_matmul_gradient() {
        // d sum((A·B)²) / dB through the sparse path must equal the dense path.
        let s = sparse_example();
        let b0 = Matrix::from_fn(3, 2, |i, j| 0.2 * (i as f64 + 1.0) + 0.7 * (j as f64) - 0.3);

        let tape = Tape::new();
        let a = tape.sparse_constant(s.clone());
        let b = tape.input(b0.clone());
        let c = tape.spmm(a, b);
        let loss = tape.sum_all(tape.mul(c, c));
        let sparse_grad = tape.value(grad(&tape, loss, &[b])[0]);

        let tape = Tape::new();
        let a = tape.constant(s.to_dense());
        let b = tape.input(b0);
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(tape.mul(c, c));
        let dense_grad = tape.value(grad(&tape, loss, &[b])[0]);

        assert_eq!(sparse_grad.as_slice(), dense_grad.as_slice(), "bitwise-equal backward");
    }

    #[test]
    fn masked_sparse_gradient_matches_dense_adjacency_gradient() {
        // ∂ sum((A·B)²) / ∂A at requested positions — stored and unstored alike —
        // must match the full dense gradient matrix.
        let s = sparse_example();
        let b0 = Matrix::from_fn(3, 2, |i, j| 0.9 - 0.35 * (i as f64) + 0.15 * (j as f64));
        let positions = vec![(0, 0), (0, 1), (1, 2), (2, 1), (2, 2)];

        let tape = Tape::new();
        let a = tape.sparse_input(s.clone(), positions.clone());
        let b = tape.constant(b0.clone());
        let c = tape.spmm(a, b);
        let loss = tape.sum_all(tape.mul(c, c));
        let (_, sparse_grads) = grad_full(&tape, loss, &[], &[a]);

        let tape = Tape::new();
        let ad = tape.input(s.to_dense());
        let b = tape.constant(b0);
        let c = tape.matmul(ad, b);
        let loss = tape.sum_all(tape.mul(c, c));
        let dense_grad = tape.value(grad(&tape, loss, &[ad])[0]);

        for (&(i, j), &v) in positions.iter().zip(&sparse_grads[0]) {
            assert!(
                (v - dense_grad[(i, j)]).abs() < 1e-12,
                "masked gradient mismatch at ({i},{j}): {v} vs {}",
                dense_grad[(i, j)]
            );
        }
    }

    #[test]
    fn sparse_gradient_accumulates_over_multiple_uses() {
        // The same sparse operand feeding two spmm nodes (a two-layer GCN shape)
        // accumulates both contributions.
        let s = sparse_example();
        let b0 = Matrix::from_fn(3, 2, |i, j| 0.25 * (i as f64) + 0.5 * (j as f64) + 0.1);
        let positions = s.stored_positions();

        let tape = Tape::new();
        let a = tape.sparse_input(s.clone(), positions.clone());
        let b = tape.constant(b0.clone());
        let h = tape.spmm(a, b);
        let c = tape.spmm(a, h);
        let loss = tape.sum_all(c);
        let (_, sparse_grads) = grad_full(&tape, loss, &[], &[a]);

        let tape = Tape::new();
        let ad = tape.input(s.to_dense());
        let b = tape.constant(b0);
        let h = tape.matmul(ad, b);
        let c = tape.matmul(ad, h);
        let loss = tape.sum_all(c);
        let dense_grad = tape.value(grad(&tape, loss, &[ad])[0]);

        for (&(i, j), &v) in positions.iter().zip(&sparse_grads[0]) {
            assert!((v - dense_grad[(i, j)]).abs() < 1e-10, "mismatch at ({i},{j})");
        }
    }

    #[test]
    fn unused_sparse_operand_gets_zero_gradient() {
        let tape = Tape::new();
        let a = tape.sparse_input(sparse_example(), vec![(0, 0), (1, 1)]);
        let x = tape.input(Matrix::ones(1, 1));
        let loss = tape.sum_all(tape.mul(x, x));
        let (dense, sparse) = grad_full(&tape, loss, &[x], &[a]);
        assert_eq!(tape.value(dense[0]).scalar(), 2.0);
        assert_eq!(sparse[0], vec![0.0, 0.0]);
    }
}
