//! # geattack-tensor
//!
//! Dense matrices and a small, eager, reverse-mode automatic-differentiation engine
//! with **double-backward** support — the numerical substrate for the GEAttack
//! reproduction.
//!
//! The engine records every operation on a [`tape::Tape`]; gradients produced by
//! [`grad::grad`] are themselves tape expressions, so they can be differentiated
//! again. GEAttack needs exactly this: its outer gradient with respect to the
//! adjacency matrix flows through the explainer's inner gradient-descent updates
//! (Eq. 6–8 of the paper), i.e. a gradient of a function of a gradient.
//!
//! ## Example
//!
//! ```
//! use geattack_tensor::{Matrix, Tape, grad::grad};
//!
//! let tape = Tape::new();
//! let x = tape.input(Matrix::row_vector(&[1.0, 2.0, 3.0]));
//! let y = tape.sum_all(tape.mul(x, x));          // f(x) = Σ x²
//! let dx = grad(&tape, y, &[x])[0];              // df/dx = 2x (still differentiable)
//! assert!(tape.value(dx).approx_eq(&Matrix::row_vector(&[2.0, 4.0, 6.0]), 1e-12));
//! ```

pub mod fp32;
pub mod grad;
pub mod init;
mod kernels;
pub mod matrix;
pub mod nn;
pub mod optim;
pub mod sparse;
pub mod tape;

pub use fp32::{MatrixF32, SparseMatrixF32};
pub use grad::{grad, grad_full, grad_values};
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
pub use sparse::SparseMatrix;
pub use tape::{SparseVar, Tape, Var};
