//! Weight initialization schemes.

use rand::Rng;

use crate::matrix::Matrix;

/// Glorot/Xavier uniform initialization: `U(-limit, limit)` with
/// `limit = sqrt(6 / (fan_in + fan_out))`. The standard choice for GCN layers.
pub fn glorot_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// He/Kaiming normal initialization, suited to ReLU MLPs (PGExplainer's mask MLP).
pub fn he_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / rows as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| std * standard_normal(rng))
}

/// Uniform initialization on `(low, high)`.
pub fn uniform(rows: usize, cols: usize, low: f64, high: f64, rng: &mut impl Rng) -> Matrix {
    assert!(low < high, "uniform: low must be < high");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(low..high))
}

/// Normal initialization with the given mean and standard deviation.
pub fn normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * standard_normal(rng))
}

/// Standard normal sample via Box–Muller (avoids an extra dependency on
/// `rand_distr`).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn glorot_within_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m = glorot_uniform(50, 30, &mut rng);
        let limit = (6.0 / 80.0f64).sqrt();
        assert!(m.max() <= limit && m.min() >= -limit);
        assert_eq!(m.shape(), (50, 30));
    }

    #[test]
    fn normal_statistics_roughly_match() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = normal(200, 50, 1.0, 2.0, &mut rng);
        let mean = m.mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        let var = m.map(|x| (x - mean) * (x - mean)).mean();
        assert!((var.sqrt() - 2.0).abs() < 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        assert!(glorot_uniform(4, 4, &mut a).approx_eq(&glorot_uniform(4, 4, &mut b), 0.0));
    }

    #[test]
    #[should_panic(expected = "low must be")]
    fn uniform_invalid_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = uniform(2, 2, 1.0, 1.0, &mut rng);
    }
}
