//! First-order optimizers over lists of parameter matrices.
//!
//! Parameters live outside the tape as plain [`Matrix`] values; a training step
//! records a fresh tape, computes gradients with [`crate::grad::grad_values`] and
//! hands them to one of these optimizers.

use crate::matrix::Matrix;

/// Interface shared by all optimizers.
pub trait Optimizer {
    /// Applies one update step. `params` and `grads` must have matching lengths and
    /// per-entry shapes.
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]);

    /// Resets any internal state (moment estimates, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with optional weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// L2 weight-decay coefficient applied to the gradient.
    pub weight_decay: f64,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and no weight decay.
    pub fn new(lr: f64) -> Self {
        Self { lr, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "sgd: param/grad count mismatch");
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            assert_eq!(p.shape(), g.shape(), "sgd: shape mismatch");
            for (pv, gv) in p.as_mut_slice().iter_mut().zip(g.as_slice().iter()) {
                *pv -= self.lr * (gv + self.weight_decay * *pv);
            }
        }
    }

    fn reset(&mut self) {}
}

/// Adam optimizer (Kingma & Ba, 2015) with optional weight decay, matching the
/// defaults used by the PyTorch reference implementations of GCN and GNNExplainer.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// L2 weight-decay coefficient applied to the gradient.
    pub weight_decay: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with standard hyper-parameters
    /// (`beta1=0.9`, `beta2=0.999`, `eps=1e-8`).
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets the weight-decay coefficient (builder style).
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "adam: param/grad count mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();
            self.v = params.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "adam: state/param count mismatch (call reset after changing parameter set)"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            assert_eq!(p.shape(), g.shape(), "adam: shape mismatch");
            for i in 0..p.len() {
                let gv = g.as_slice()[i] + self.weight_decay * p.as_slice()[i];
                let mv = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gv;
                let vv = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gv * gv;
                m.as_mut_slice()[i] = mv;
                v.as_mut_slice()[i] = vv;
                let m_hat = mv / b1t;
                let v_hat = vv / b2t;
                p.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad::grad_values;
    use crate::tape::Tape;

    /// Minimize sum((x - target)^2) and confirm convergence.
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let target = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, 0.5]);
        let mut params = vec![Matrix::zeros(2, 2)];
        let mut last = f64::INFINITY;
        for _ in 0..steps {
            let tape = Tape::new();
            let x = tape.input(params[0].clone());
            let t = tape.constant(target.clone());
            let d = tape.sub(x, t);
            let loss = tape.sum_all(tape.mul(d, d));
            last = tape.value(loss).scalar();
            let g = grad_values(&tape, loss, &[x]);
            opt.step(&mut params, &g);
        }
        last
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(optimize(&mut opt, 200) < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(optimize(&mut opt, 500) < 1e-4);
    }

    #[test]
    fn adam_step_counter_and_reset() {
        let mut opt = Adam::new(0.01);
        let mut params = vec![Matrix::ones(1, 1)];
        let grads = vec![Matrix::ones(1, 1)];
        opt.step(&mut params, &grads);
        opt.step(&mut params, &grads);
        assert_eq!(opt.steps(), 2);
        opt.reset();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let mut opt = Sgd {
            lr: 0.1,
            weight_decay: 1.0,
        };
        let mut params = vec![Matrix::ones(1, 1)];
        let grads = vec![Matrix::zeros(1, 1)];
        opt.step(&mut params, &grads);
        assert!(params[0][(0, 0)] < 1.0);
    }

    #[test]
    #[should_panic(expected = "param/grad count mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut params = vec![Matrix::ones(1, 1)];
        opt.step(&mut params, &[]);
    }
}
