//! Shared register-blocked inner kernels for the dense and sparse matmuls.
//!
//! Both [`crate::Matrix::matmul`] and [`crate::SparseMatrix::spmm`] are row-times-
//! dense products: one output row is a weighted sum of rows of `b`, accumulated in
//! a fixed entry order. [`mul_row_panels`] is that shape, register-blocked by
//! *entry groups*: entries are pulled eight at a time and the output row is
//! swept once per group, so each element is read and written once per eight
//! entries instead of once per entry — the dominant traffic of the unblocked
//! loop.
//!
//! **Bit-identity contract.** For every output element `out_row[j]` the adds
//! happen in exactly the entry order the iterator yields — the same sequence as
//! the unblocked scalar loop (`for e { for j { out[j] += v*b[k][j] } }`), just
//! with eight entries applied per sweep through an explicit sequential
//! accumulator chain. No reassociation, no FMA contraction, so the blocked
//! result is bit-for-bit equal to the scalar one. Different output elements are
//! independent, so the sweep still auto-vectorizes across `j`.
//!
//! **SIMD dispatch.** The workspace builds for baseline x86-64 (SSE2). On CPUs
//! with AVX2 the same kernel body is re-entered through a
//! `#[target_feature(enable = "avx2")]` wrapper picked at runtime, so the
//! column sweep vectorizes at twice the width. Element-wise IEEE multiplies and
//! adds are exact in every vector width and rustc never contracts them into
//! FMAs, so the wide path is bit-for-bit identical to the portable one — the
//! equivalence suites compare it against the (always-SSE2) scalar reference on
//! every run.
//!
//! The same kernels are generated at `f32` (`mul_row_panels_f32`,
//! `dot_in_order_f32`) for the opt-in reduced-precision path — one macro, so the
//! two precisions cannot drift apart structurally.

macro_rules! impl_panel_kernels {
    ($mul:ident, $run:ident, $(#[$dot_attr:meta])* $dot:ident, $t:ty) => {
        /// Computes `out_row[j] = Σ_entries v · b[k·n + j]` for one output row,
        /// where `entries` yields `(k, v)` pairs in accumulation order and `b` is
        /// a row-major `? x n` matrix. Every element of `out_row` is overwritten.
        #[inline]
        pub(crate) fn $mul<I>(entries: I, b: &[$t], n: usize, out_row: &mut [$t])
        where
            I: Iterator<Item = (usize, $t)>,
        {
            #[cfg(target_arch = "x86_64")]
            {
                /// The portable body compiled with AVX2 enabled: `run` is
                /// `#[inline(always)]`, so its loops inherit this wrapper's
                /// target features and vectorize 4-wide (f64) / 8-wide (f32).
                #[target_feature(enable = "avx2")]
                unsafe fn run_avx2<I: Iterator<Item = (usize, $t)>>(
                    entries: I,
                    b: &[$t],
                    n: usize,
                    out_row: &mut [$t],
                ) {
                    $run(entries, b, n, out_row)
                }
                if std::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 support was just verified at runtime.
                    return unsafe { run_avx2(entries, b, n, out_row) };
                }
            }
            $run(entries, b, n, out_row)
        }

        #[inline(always)]
        fn $run<I>(mut entries: I, b: &[$t], n: usize, out_row: &mut [$t])
        where
            I: Iterator<Item = (usize, $t)>,
        {
            /// One sweep over the output row applying `M` entries. Per element
            /// the adds run through a sequential accumulator in entry order —
            /// the bit-identity contract — while the compiler vectorizes
            /// across `j` and fully unrolls the inner `M` loop. `INIT` seeds
            /// the accumulator from `+0.0` (a write-only first sweep, exactly
            /// the scalar loop's zeroed starting point) instead of reading the
            /// current output back.
            #[inline]
            fn axpy<const M: usize, const INIT: bool>(
                es: [(usize, $t); M],
                b: &[$t],
                n: usize,
                out: &mut [$t],
            ) {
                let rows: [&[$t]; M] = std::array::from_fn(|m| &b[es[m].0 * n..es[m].0 * n + n]);
                for j in 0..n {
                    let mut acc = if INIT { 0.0 as $t } else { out[j] };
                    for m in 0..M {
                        acc += es[m].1 * rows[m][j];
                    }
                    out[j] = acc;
                }
            }

            /// Pulls up to eight entries into `buf`, returning how many arrived.
            #[inline]
            fn take8<I: Iterator<Item = (usize, $t)>>(it: &mut I, buf: &mut [(usize, $t); 8]) -> usize {
                let mut len = 0;
                while len < 8 {
                    match it.next() {
                        Some(e) => {
                            buf[len] = e;
                            len += 1;
                        }
                        None => break,
                    }
                }
                len
            }

            #[inline]
            fn group<const INIT: bool>(buf: &[(usize, $t); 8], len: usize, b: &[$t], n: usize, out: &mut [$t]) {
                match len {
                    1 => axpy::<1, INIT>([buf[0]], b, n, out),
                    2 => axpy::<2, INIT>([buf[0], buf[1]], b, n, out),
                    3 => axpy::<3, INIT>([buf[0], buf[1], buf[2]], b, n, out),
                    4 => axpy::<4, INIT>([buf[0], buf[1], buf[2], buf[3]], b, n, out),
                    5 => axpy::<5, INIT>([buf[0], buf[1], buf[2], buf[3], buf[4]], b, n, out),
                    6 => axpy::<6, INIT>([buf[0], buf[1], buf[2], buf[3], buf[4], buf[5]], b, n, out),
                    7 => axpy::<7, INIT>([buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6]], b, n, out),
                    _ => axpy::<8, INIT>(*buf, b, n, out),
                }
            }

            let out = &mut out_row[..n];
            let mut buf = [(0usize, 0.0 as $t); 8];
            let len = take8(&mut entries, &mut buf);
            if len == 0 {
                out.fill(0.0 as $t);
                return;
            }
            group::<true>(&buf, len, b, n, out);
            if len < 8 {
                return;
            }
            loop {
                let len = take8(&mut entries, &mut buf);
                if len == 0 {
                    return;
                }
                group::<false>(&buf, len, b, n, out);
                if len < 8 {
                    return;
                }
            }
        }

        /// Sequential dot product, unrolled by 4 **without reassociation**: the
        /// adds happen strictly left-to-right, exactly like
        /// `zip(a, b).map(|..| x*y).sum()`, so results are bit-identical to the
        /// naive fold — including the `-0.0` the std float `Sum` folds from,
        /// which is the IEEE additive identity (`+0.0` would flip an all-`-0.0`
        /// product stream). Shared by `sddmm`.
        $(#[$dot_attr])*
        #[inline]
        pub(crate) fn $dot(a: &[$t], b: &[$t]) -> $t {
            debug_assert_eq!(a.len(), b.len());
            let mut acc = -0.0 as $t;
            let mut ca = a.chunks_exact(4);
            let mut cb = b.chunks_exact(4);
            for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
                acc += pa[0] * pb[0];
                acc += pa[1] * pb[1];
                acc += pa[2] * pb[2];
                acc += pa[3] * pb[3];
            }
            for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
                acc += x * y;
            }
            acc
        }
    };
}

impl_panel_kernels!(mul_row_panels, mul_row_panels_body, dot_in_order, f64);
// The f32 sddmm has no production caller yet (the f32 train path backpropagates
// through Aᵀ·spmm instead); the dot is kept macro-paired so the precisions stay
// structurally identical, and is pinned by the bitwise test below.
impl_panel_kernels!(
    mul_row_panels_f32,
    mul_row_panels_f32_body,
    #[allow(dead_code)]
    dot_in_order_f32,
    f32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_in_order_matches_naive_fold_bitwise() {
        for len in 0..=13 {
            let a: Vec<f64> = (0..len).map(|i| 0.37 * (i as f64) - 1.2).collect();
            let b: Vec<f64> = (0..len).map(|i| 1.0 / (i as f64 + 3.0)).collect();
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            assert_eq!(dot_in_order(&a, &b).to_bits(), naive.to_bits(), "len={len}");
        }
    }

    #[test]
    fn dot_in_order_f32_matches_naive_fold_bitwise() {
        for len in 0..=13 {
            let a: Vec<f32> = (0..len).map(|i| 0.37 * (i as f32) - 1.2).collect();
            let b: Vec<f32> = (0..len).map(|i| 1.0 / (i as f32 + 3.0)).collect();
            let naive: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            assert_eq!(dot_in_order_f32(&a, &b).to_bits(), naive.to_bits(), "len={len}");
        }
    }

    #[test]
    fn panels_match_scalar_loop_bitwise() {
        // 3 entries against a 5 x n dense block, for every panel-remainder width.
        for n in 0..=19 {
            let b: Vec<f64> = (0..5 * n).map(|i| (i as f64).sin() * 0.5 + 0.1).collect();
            let entries = [(1usize, 0.3f64), (2, -1.7), (4, 0.9)];
            let mut scalar = vec![0.0f64; n];
            for &(k, v) in &entries {
                for j in 0..n {
                    scalar[j] += v * b[k * n + j];
                }
            }
            let mut blocked = vec![0.0f64; n];
            mul_row_panels(entries.iter().copied(), &b, n, &mut blocked);
            for j in 0..n {
                assert_eq!(blocked[j].to_bits(), scalar[j].to_bits(), "n={n} j={j}");
            }
        }
    }
}
