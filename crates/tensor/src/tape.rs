//! The autodiff tape: eagerly-evaluated operations recorded as a DAG.
//!
//! Every operation immediately computes its [`Matrix`] value and records a node
//! referencing its parents. Gradients ([`crate::grad::grad`]) are produced by
//! *emitting more tape operations*, which makes the gradient expressions themselves
//! differentiable — the double-backward capability GEAttack's bilevel objective
//! needs (the outer gradient w.r.t. the adjacency matrix flows through the inner
//! explainer gradient-descent steps).

use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;

use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;

/// Handle to a value recorded on a [`Tape`].
///
/// `Var` is a cheap `Copy` handle: it stores the node id plus the value's shape so
/// shape checks do not need to touch the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    pub(crate) id: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
}

impl Var {
    /// Node id within its tape.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of rows of the recorded value.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the recorded value.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of the recorded value.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Handle to a sparse matrix registered on a [`Tape`].
///
/// Sparse values live in their own arena next to the dense nodes: they only ever
/// appear as the left operand of [`Tape::spmm`], and their gradients are read out
/// as plain values at registered positions (see [`crate::grad::grad_full`]) rather
/// than re-entering the tape as differentiable nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SparseVar {
    pub(crate) id: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
}

impl SparseVar {
    /// Sparse-node id within its tape.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of rows of the registered matrix.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the registered matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of the registered matrix.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

pub(crate) struct SparseNode {
    pub(crate) matrix: Rc<SparseMatrix>,
    /// Positions at which `∂L/∂A` is requested (the candidate mask). Empty for
    /// constants that are never differentiated against.
    pub(crate) positions: Rc<Vec<(usize, usize)>>,
    /// Lazily-created transpose node (the backward pass of [`Op::Spmm`] needs
    /// `Aᵀ`, and the transpose of a transpose links back here).
    transpose_id: Cell<Option<usize>>,
}

/// Primitive differentiable operations.
///
/// Composite functions (softmax, cross-entropy, GCN normalization, ...) are built
/// from these in [`crate::nn`]; keeping the primitive set small keeps the
/// vector-Jacobian-product rules in `grad.rs` short and auditable.
///
/// Some variants carry shape payloads that are only read by `Debug` output; they
/// are kept because they make tape dumps self-describing when debugging.
#[allow(dead_code)]
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Leaf node (input or constant); has no parents.
    Leaf,
    Add,
    Sub,
    Neg,
    /// Element-wise (Hadamard) product.
    Mul,
    AddScalar(f64),
    MulScalar(f64),
    /// Element-wise power with a constant exponent.
    PowScalar(f64),
    MatMul,
    Transpose,
    Sigmoid,
    Relu,
    Tanh,
    Exp,
    Ln,
    /// Sum of all elements into a `1x1` matrix.
    SumAll,
    /// Per-row sums into an `n x 1` matrix.
    SumRows,
    /// Per-column sums into a `1 x m` matrix.
    SumCols,
    /// Broadcast of a `1x1` scalar to `rows x cols`.
    BroadcastScalar {
        rows: usize,
        cols: usize,
    },
    /// Broadcast of an `n x 1` column vector across `cols` columns.
    ColBroadcast {
        cols: usize,
    },
    /// Broadcast of a `1 x m` row vector across `rows` rows.
    RowBroadcast {
        rows: usize,
    },
    /// Row selection (`indices.len() x cols`). The indices are reference-counted
    /// so cloning the op during the backward sweep never copies the index list.
    GatherRows {
        indices: Rc<Vec<usize>>,
    },
    /// Row scattering into a `total_rows x cols` zero matrix.
    ScatterRows {
        indices: Rc<Vec<usize>>,
        total_rows: usize,
    },
    /// Sparse-times-dense product; `sparse` indexes the tape's sparse arena and
    /// the single dense parent is the right operand.
    Spmm {
        sparse: usize,
    },
}

/// The (at most two) parent node ids of an operation, stored inline: every
/// primitive is unary or binary, so a heap-allocated list per node — cloned
/// again on every backward visit — would be pure allocator churn on the hot
/// explainer/attack loops, whose tapes hold thousands of tiny-matrix nodes.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Parents {
    ids: [usize; 2],
    len: u8,
}

impl Parents {
    pub(crate) const NONE: Parents = Parents { ids: [0, 0], len: 0 };

    pub(crate) fn one(a: usize) -> Parents {
        Parents { ids: [a, 0], len: 1 }
    }

    pub(crate) fn two(a: usize, b: usize) -> Parents {
        Parents { ids: [a, b], len: 2 }
    }

    pub(crate) fn as_slice(&self) -> &[usize] {
        &self.ids[..self.len as usize]
    }
}

pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) parents: Parents,
    pub(crate) value: Matrix,
}

/// An autodiff tape (a growable arena of [`Node`]s).
///
/// A tape is intended to be short-lived: create one per training step / attack
/// iteration, record the forward (and any gradient) computation, read the results
/// out as [`Matrix`] values and drop it.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    sparse_nodes: RefCell<Vec<SparseNode>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self {
            nodes: RefCell::new(Vec::new()),
            sparse_nodes: RefCell::new(Vec::new()),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Records a leaf holding `value` (an input the caller may later differentiate
    /// with respect to).
    pub fn input(&self, value: Matrix) -> Var {
        self.push(Op::Leaf, Parents::NONE, value)
    }

    /// Records a leaf holding `value`. Semantically identical to [`Tape::input`];
    /// the distinct name documents intent (constants are never differentiated
    /// against, though doing so simply yields zeros).
    pub fn constant(&self, value: Matrix) -> Var {
        self.push(Op::Leaf, Parents::NONE, value)
    }

    /// Convenience: records a `1x1` constant.
    pub fn scalar(&self, value: f64) -> Var {
        self.constant(Matrix::from_vec(1, 1, vec![value]))
    }

    /// Clones the value currently stored for `v`.
    pub fn value(&self, v: Var) -> Matrix {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Borrows the value stored for `v` without cloning.
    pub fn value_ref(&self, v: Var) -> Ref<'_, Matrix> {
        Ref::map(self.nodes.borrow(), |nodes| &nodes[v.id].value)
    }

    pub(crate) fn push(&self, op: Op, parents: Parents, value: Matrix) -> Var {
        debug_assert!(!value.has_non_finite(), "tape op {op:?} produced a non-finite value");
        let rows = value.rows();
        let cols = value.cols();
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node { op, parents, value });
        Var { id, rows, cols }
    }

    pub(crate) fn with_node<R>(&self, id: usize, f: impl FnOnce(&Node) -> R) -> R {
        f(&self.nodes.borrow()[id])
    }

    pub(crate) fn parents_of(&self, id: usize) -> Parents {
        self.nodes.borrow()[id].parents
    }

    pub(crate) fn op_of(&self, id: usize) -> Op {
        self.nodes.borrow()[id].op.clone()
    }

    pub(crate) fn var_for(&self, id: usize) -> Var {
        let nodes = self.nodes.borrow();
        let v = &nodes[id].value;
        Var {
            id,
            rows: v.rows(),
            cols: v.cols(),
        }
    }

    // ---- sparse operands --------------------------------------------------------

    /// Registers a sparse matrix as a constant operand (never differentiated
    /// against; asking for its gradient yields zeros at zero positions).
    pub fn sparse_constant(&self, matrix: SparseMatrix) -> SparseVar {
        self.sparse_push(Rc::new(matrix), Rc::new(Vec::new()))
    }

    /// Registers a sparse matrix as an input whose gradient will be requested at
    /// exactly `positions` (the candidate mask of the masked-SDDMM backward).
    /// Positions outside the stored pattern are legal — the gradient of a matmul
    /// with respect to a structurally-zero entry is still well defined.
    pub fn sparse_input(&self, matrix: SparseMatrix, positions: Vec<(usize, usize)>) -> SparseVar {
        for &(i, j) in &positions {
            assert!(
                i < matrix.rows() && j < matrix.cols(),
                "gradient position ({i},{j}) out of range for {}x{}",
                matrix.rows(),
                matrix.cols()
            );
        }
        self.sparse_push(Rc::new(matrix), Rc::new(positions))
    }

    fn sparse_push(&self, matrix: Rc<SparseMatrix>, positions: Rc<Vec<(usize, usize)>>) -> SparseVar {
        let (rows, cols) = matrix.shape();
        let mut nodes = self.sparse_nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(SparseNode {
            matrix,
            positions,
            transpose_id: Cell::new(None),
        });
        SparseVar { id, rows, cols }
    }

    /// The sparse matrix registered for `v` (cheap `Rc` clone).
    pub fn sparse_value(&self, v: SparseVar) -> Rc<SparseMatrix> {
        Rc::clone(&self.sparse_nodes.borrow()[v.id].matrix)
    }

    /// The gradient positions registered for `v` (cheap `Rc` clone).
    pub fn sparse_positions(&self, v: SparseVar) -> Rc<Vec<(usize, usize)>> {
        self.sparse_positions_by_id(v.id)
    }

    pub(crate) fn sparse_positions_by_id(&self, id: usize) -> Rc<Vec<(usize, usize)>> {
        Rc::clone(&self.sparse_nodes.borrow()[id].positions)
    }

    /// The (lazily-created, cached) transpose of sparse node `id`, used by the
    /// [`Op::Spmm`] backward rule. Transposing a transpose returns the original.
    pub(crate) fn sparse_transpose_of(&self, id: usize) -> SparseVar {
        {
            let nodes = self.sparse_nodes.borrow();
            if let Some(t) = nodes[id].transpose_id.get() {
                let m = &nodes[t].matrix;
                return SparseVar {
                    id: t,
                    rows: m.rows(),
                    cols: m.cols(),
                };
            }
        }
        let transposed = self.sparse_nodes.borrow()[id].matrix.transpose();
        let t = self.sparse_push(Rc::new(transposed), Rc::new(Vec::new()));
        let nodes = self.sparse_nodes.borrow();
        nodes[id].transpose_id.set(Some(t.id));
        nodes[t.id].transpose_id.set(Some(id));
        t
    }

    // ---- primitive operations -------------------------------------------------

    fn assert_same_shape(a: Var, b: Var, what: &str) {
        assert_eq!(
            a.shape(),
            b.shape(),
            "{what}: shape mismatch {:?} vs {:?}",
            a.shape(),
            b.shape()
        );
    }

    /// Element-wise sum `a + b`.
    pub fn add(&self, a: Var, b: Var) -> Var {
        Self::assert_same_shape(a, b, "add");
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.add(&nodes[b.id].value)
        };
        self.push(Op::Add, Parents::two(a.id, b.id), value)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        Self::assert_same_shape(a, b, "sub");
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.sub(&nodes[b.id].value)
        };
        self.push(Op::Sub, Parents::two(a.id, b.id), value)
    }

    /// Element-wise negation `-a`.
    pub fn neg(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| -x);
        self.push(Op::Neg, Parents::one(a.id), value)
    }

    /// Element-wise (Hadamard) product `a ⊙ b`.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        Self::assert_same_shape(a, b, "mul");
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.hadamard(&nodes[b.id].value)
        };
        self.push(Op::Mul, Parents::two(a.id, b.id), value)
    }

    /// Adds the constant `s` to every element.
    pub fn add_scalar(&self, a: Var, s: f64) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| x + s);
        self.push(Op::AddScalar(s), Parents::one(a.id), value)
    }

    /// Multiplies every element by the constant `s`.
    pub fn mul_scalar(&self, a: Var, s: f64) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| x * s);
        self.push(Op::MulScalar(s), Parents::one(a.id), value)
    }

    /// Element-wise power `a^p` with constant exponent `p`.
    pub fn pow_scalar(&self, a: Var, p: f64) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| x.powf(p));
        self.push(Op::PowScalar(p), Parents::one(a.id), value)
    }

    /// Matrix product `a @ b`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        assert_eq!(
            a.cols, b.rows,
            "matmul: inner dimensions differ ({} vs {})",
            a.cols, b.rows
        );
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.matmul(&nodes[b.id].value)
        };
        self.push(Op::MatMul, Parents::two(a.id, b.id), value)
    }

    /// Sparse-times-dense matrix product `a @ b` where `a` is a registered
    /// [`SparseVar`]. The forward value is bit-identical to a dense `matmul` of
    /// `a`'s dense form (same accumulation order, zero entries skipped); the
    /// backward rule sends a dense gradient to `b` (via `aᵀ @ g`, itself an spmm)
    /// and a candidate-masked SDDMM gradient to `a`'s registered positions.
    pub fn spmm(&self, a: SparseVar, b: Var) -> Var {
        assert_eq!(
            a.cols, b.rows,
            "spmm: inner dimensions differ ({} vs {})",
            a.cols, b.rows
        );
        let value = {
            let sparse = self.sparse_nodes.borrow();
            let nodes = self.nodes.borrow();
            sparse[a.id].matrix.spmm(&nodes[b.id].value)
        };
        self.push(Op::Spmm { sparse: a.id }, Parents::one(b.id), value)
    }

    /// Matrix transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.transpose();
        self.push(Op::Transpose, Parents::one(a.id), value)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid, Parents::one(a.id), value)
    }

    /// Element-wise ReLU.
    pub fn relu(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| x.max(0.0));
        self.push(Op::Relu, Parents::one(a.id), value)
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(f64::tanh);
        self.push(Op::Tanh, Parents::one(a.id), value)
    }

    /// Element-wise exponential.
    pub fn exp(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(f64::exp);
        self.push(Op::Exp, Parents::one(a.id), value)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(f64::ln);
        self.push(Op::Ln, Parents::one(a.id), value)
    }

    /// Sum of all elements as a `1x1` matrix.
    pub fn sum_all(&self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.nodes.borrow()[a.id].value.sum()]);
        self.push(Op::SumAll, Parents::one(a.id), value)
    }

    /// Per-row sums as an `n x 1` column vector.
    pub fn sum_rows(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.row_sums();
        self.push(Op::SumRows, Parents::one(a.id), value)
    }

    /// Per-column sums as a `1 x m` row vector.
    pub fn sum_cols(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.col_sums();
        self.push(Op::SumCols, Parents::one(a.id), value)
    }

    /// Broadcasts a `1x1` scalar to a `rows x cols` matrix.
    pub fn broadcast_scalar(&self, a: Var, rows: usize, cols: usize) -> Var {
        assert_eq!(a.shape(), (1, 1), "broadcast_scalar requires a 1x1 input");
        let s = self.nodes.borrow()[a.id].value.scalar();
        self.push(
            Op::BroadcastScalar { rows, cols },
            Parents::one(a.id),
            Matrix::full(rows, cols, s),
        )
    }

    /// Broadcasts an `n x 1` column vector across `cols` columns.
    pub fn col_broadcast(&self, a: Var, cols: usize) -> Var {
        assert_eq!(a.cols, 1, "col_broadcast requires an n x 1 input");
        let value = self.nodes.borrow()[a.id].value.broadcast_col(cols);
        self.push(Op::ColBroadcast { cols }, Parents::one(a.id), value)
    }

    /// Broadcasts a `1 x m` row vector across `rows` rows.
    pub fn row_broadcast(&self, a: Var, rows: usize) -> Var {
        assert_eq!(a.rows, 1, "row_broadcast requires a 1 x m input");
        let value = self.nodes.borrow()[a.id].value.broadcast_row(rows);
        self.push(Op::RowBroadcast { rows }, Parents::one(a.id), value)
    }

    /// Selects rows `indices` of `a`.
    pub fn gather_rows(&self, a: Var, indices: &[usize]) -> Var {
        let value = self.nodes.borrow()[a.id].value.gather_rows(indices);
        self.push(
            Op::GatherRows {
                indices: Rc::new(indices.to_vec()),
            },
            Parents::one(a.id),
            value,
        )
    }

    /// Scatters the rows of `a` into a `total_rows x cols` zero matrix at `indices`.
    pub fn scatter_rows(&self, a: Var, indices: &[usize], total_rows: usize) -> Var {
        assert_eq!(a.rows, indices.len(), "scatter_rows: row count must match index count");
        let value = self.nodes.borrow()[a.id].value.scatter_rows(indices, total_rows);
        self.push(
            Op::ScatterRows {
                indices: Rc::new(indices.to_vec()),
                total_rows,
            },
            Parents::one(a.id),
            value,
        )
    }

    // ---- composite conveniences -------------------------------------------------

    /// `a ⊙ c` where `c` is a plain matrix (recorded as a constant leaf).
    pub fn mul_const(&self, a: Var, c: &Matrix) -> Var {
        let c = self.constant(c.clone());
        self.mul(a, c)
    }

    /// `a + c` where `c` is a plain matrix (recorded as a constant leaf).
    pub fn add_const(&self, a: Var, c: &Matrix) -> Var {
        let c = self.constant(c.clone());
        self.add(a, c)
    }

    /// Mean of all elements as a `1x1` matrix.
    pub fn mean_all(&self, a: Var) -> Var {
        let n = (a.rows * a.cols) as f64;
        let s = self.sum_all(a);
        self.mul_scalar(s, 1.0 / n)
    }

    /// Element-wise division `a / b` (implemented as `a ⊙ b^{-1}`).
    pub fn div(&self, a: Var, b: Var) -> Var {
        let inv = self.pow_scalar(b, -1.0);
        self.mul(a, inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let tape = Tape::new();
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let v = tape.input(m.clone());
        assert_eq!(v.shape(), (2, 2));
        assert!(tape.value(v).approx_eq(&m, 0.0));
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn eager_values_match_matrix_ops() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.input(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let s = tape.add(a, b);
        let p = tape.matmul(a, b);
        assert!(tape
            .value(s)
            .approx_eq(&Matrix::from_vec(2, 2, vec![6.0, 8.0, 10.0, 12.0]), 1e-12));
        assert!(tape
            .value(p)
            .approx_eq(&Matrix::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]), 1e-12));
    }

    #[test]
    fn sigmoid_range() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_vec(1, 3, vec![-100.0, 0.0, 100.0]));
        let s = tape.value(tape.sigmoid(a));
        assert!(s[(0, 0)] < 1e-12);
        assert!((s[(0, 1)] - 0.5).abs() < 1e-12);
        assert!((s[(0, 2)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reductions_and_broadcasts() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        assert_eq!(tape.value(tape.sum_all(a)).scalar(), 21.0);
        assert!(tape
            .value(tape.sum_rows(a))
            .approx_eq(&Matrix::col_vector(&[6.0, 15.0]), 1e-12));
        assert!(tape
            .value(tape.sum_cols(a))
            .approx_eq(&Matrix::row_vector(&[5.0, 7.0, 9.0]), 1e-12));
        let s = tape.scalar(2.5);
        assert_eq!(tape.value(tape.broadcast_scalar(s, 2, 2)).sum(), 10.0);
        let c = tape.input(Matrix::col_vector(&[1.0, 2.0]));
        assert_eq!(tape.value(tape.col_broadcast(c, 3)).shape(), (2, 3));
        let r = tape.input(Matrix::row_vector(&[1.0, 2.0, 3.0]));
        assert_eq!(tape.value(tape.row_broadcast(r, 2)).shape(), (2, 3));
    }

    #[test]
    fn gather_scatter_ops() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64));
        let g = tape.gather_rows(a, &[3, 1]);
        assert_eq!(tape.value(g).row(0), &[6.0, 7.0]);
        let s = tape.scatter_rows(g, &[3, 1], 4);
        assert_eq!(tape.value(s).row(3), &[6.0, 7.0]);
        assert_eq!(tape.value(s).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn div_matches_manual() {
        let tape = Tape::new();
        let a = tape.input(Matrix::row_vector(&[2.0, 9.0]));
        let b = tape.input(Matrix::row_vector(&[4.0, 3.0]));
        let d = tape.div(a, b);
        assert!(tape.value(d).approx_eq(&Matrix::row_vector(&[0.5, 3.0]), 1e-12));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let tape = Tape::new();
        let a = tape.input(Matrix::zeros(2, 2));
        let b = tape.input(Matrix::zeros(2, 3));
        let _ = tape.add(a, b);
    }
}
