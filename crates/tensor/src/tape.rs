//! The autodiff tape: eagerly-evaluated operations recorded as a DAG.
//!
//! Every operation immediately computes its [`Matrix`] value and records a node
//! referencing its parents. Gradients ([`crate::grad::grad`]) are produced by
//! *emitting more tape operations*, which makes the gradient expressions themselves
//! differentiable — the double-backward capability GEAttack's bilevel objective
//! needs (the outer gradient w.r.t. the adjacency matrix flows through the inner
//! explainer gradient-descent steps).

use std::cell::{Ref, RefCell};

use crate::matrix::Matrix;

/// Handle to a value recorded on a [`Tape`].
///
/// `Var` is a cheap `Copy` handle: it stores the node id plus the value's shape so
/// shape checks do not need to touch the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    pub(crate) id: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
}

impl Var {
    /// Node id within its tape.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of rows of the recorded value.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the recorded value.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of the recorded value.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Primitive differentiable operations.
///
/// Composite functions (softmax, cross-entropy, GCN normalization, ...) are built
/// from these in [`crate::nn`]; keeping the primitive set small keeps the
/// vector-Jacobian-product rules in `grad.rs` short and auditable.
///
/// Some variants carry shape payloads that are only read by `Debug` output; they
/// are kept because they make tape dumps self-describing when debugging.
#[allow(dead_code)]
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Leaf node (input or constant); has no parents.
    Leaf,
    Add,
    Sub,
    Neg,
    /// Element-wise (Hadamard) product.
    Mul,
    AddScalar(f64),
    MulScalar(f64),
    /// Element-wise power with a constant exponent.
    PowScalar(f64),
    MatMul,
    Transpose,
    Sigmoid,
    Relu,
    Tanh,
    Exp,
    Ln,
    /// Sum of all elements into a `1x1` matrix.
    SumAll,
    /// Per-row sums into an `n x 1` matrix.
    SumRows,
    /// Per-column sums into a `1 x m` matrix.
    SumCols,
    /// Broadcast of a `1x1` scalar to `rows x cols`.
    BroadcastScalar {
        rows: usize,
        cols: usize,
    },
    /// Broadcast of an `n x 1` column vector across `cols` columns.
    ColBroadcast {
        cols: usize,
    },
    /// Broadcast of a `1 x m` row vector across `rows` rows.
    RowBroadcast {
        rows: usize,
    },
    /// Row selection (`indices.len() x cols`).
    GatherRows {
        indices: Vec<usize>,
    },
    /// Row scattering into a `total_rows x cols` zero matrix.
    ScatterRows {
        indices: Vec<usize>,
        total_rows: usize,
    },
}

pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) parents: Vec<usize>,
    pub(crate) value: Matrix,
}

/// An autodiff tape (a growable arena of [`Node`]s).
///
/// A tape is intended to be short-lived: create one per training step / attack
/// iteration, record the forward (and any gradient) computation, read the results
/// out as [`Matrix`] values and drop it.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self {
            nodes: RefCell::new(Vec::new()),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Records a leaf holding `value` (an input the caller may later differentiate
    /// with respect to).
    pub fn input(&self, value: Matrix) -> Var {
        self.push(Op::Leaf, vec![], value)
    }

    /// Records a leaf holding `value`. Semantically identical to [`Tape::input`];
    /// the distinct name documents intent (constants are never differentiated
    /// against, though doing so simply yields zeros).
    pub fn constant(&self, value: Matrix) -> Var {
        self.push(Op::Leaf, vec![], value)
    }

    /// Convenience: records a `1x1` constant.
    pub fn scalar(&self, value: f64) -> Var {
        self.constant(Matrix::from_vec(1, 1, vec![value]))
    }

    /// Clones the value currently stored for `v`.
    pub fn value(&self, v: Var) -> Matrix {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Borrows the value stored for `v` without cloning.
    pub fn value_ref(&self, v: Var) -> Ref<'_, Matrix> {
        Ref::map(self.nodes.borrow(), |nodes| &nodes[v.id].value)
    }

    pub(crate) fn push(&self, op: Op, parents: Vec<usize>, value: Matrix) -> Var {
        debug_assert!(!value.has_non_finite(), "tape op {op:?} produced a non-finite value");
        let rows = value.rows();
        let cols = value.cols();
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node { op, parents, value });
        Var { id, rows, cols }
    }

    pub(crate) fn with_node<R>(&self, id: usize, f: impl FnOnce(&Node) -> R) -> R {
        f(&self.nodes.borrow()[id])
    }

    pub(crate) fn parents_of(&self, id: usize) -> Vec<usize> {
        self.nodes.borrow()[id].parents.clone()
    }

    pub(crate) fn op_of(&self, id: usize) -> Op {
        self.nodes.borrow()[id].op.clone()
    }

    pub(crate) fn var_for(&self, id: usize) -> Var {
        let nodes = self.nodes.borrow();
        let v = &nodes[id].value;
        Var {
            id,
            rows: v.rows(),
            cols: v.cols(),
        }
    }

    // ---- primitive operations -------------------------------------------------

    fn assert_same_shape(a: Var, b: Var, what: &str) {
        assert_eq!(
            a.shape(),
            b.shape(),
            "{what}: shape mismatch {:?} vs {:?}",
            a.shape(),
            b.shape()
        );
    }

    /// Element-wise sum `a + b`.
    pub fn add(&self, a: Var, b: Var) -> Var {
        Self::assert_same_shape(a, b, "add");
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.add(&nodes[b.id].value)
        };
        self.push(Op::Add, vec![a.id, b.id], value)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        Self::assert_same_shape(a, b, "sub");
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.sub(&nodes[b.id].value)
        };
        self.push(Op::Sub, vec![a.id, b.id], value)
    }

    /// Element-wise negation `-a`.
    pub fn neg(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| -x);
        self.push(Op::Neg, vec![a.id], value)
    }

    /// Element-wise (Hadamard) product `a ⊙ b`.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        Self::assert_same_shape(a, b, "mul");
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.hadamard(&nodes[b.id].value)
        };
        self.push(Op::Mul, vec![a.id, b.id], value)
    }

    /// Adds the constant `s` to every element.
    pub fn add_scalar(&self, a: Var, s: f64) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| x + s);
        self.push(Op::AddScalar(s), vec![a.id], value)
    }

    /// Multiplies every element by the constant `s`.
    pub fn mul_scalar(&self, a: Var, s: f64) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| x * s);
        self.push(Op::MulScalar(s), vec![a.id], value)
    }

    /// Element-wise power `a^p` with constant exponent `p`.
    pub fn pow_scalar(&self, a: Var, p: f64) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| x.powf(p));
        self.push(Op::PowScalar(p), vec![a.id], value)
    }

    /// Matrix product `a @ b`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        assert_eq!(
            a.cols, b.rows,
            "matmul: inner dimensions differ ({} vs {})",
            a.cols, b.rows
        );
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.matmul(&nodes[b.id].value)
        };
        self.push(Op::MatMul, vec![a.id, b.id], value)
    }

    /// Matrix transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.transpose();
        self.push(Op::Transpose, vec![a.id], value)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid, vec![a.id], value)
    }

    /// Element-wise ReLU.
    pub fn relu(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(|x| x.max(0.0));
        self.push(Op::Relu, vec![a.id], value)
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(f64::tanh);
        self.push(Op::Tanh, vec![a.id], value)
    }

    /// Element-wise exponential.
    pub fn exp(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(f64::exp);
        self.push(Op::Exp, vec![a.id], value)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.map(f64::ln);
        self.push(Op::Ln, vec![a.id], value)
    }

    /// Sum of all elements as a `1x1` matrix.
    pub fn sum_all(&self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.nodes.borrow()[a.id].value.sum()]);
        self.push(Op::SumAll, vec![a.id], value)
    }

    /// Per-row sums as an `n x 1` column vector.
    pub fn sum_rows(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.row_sums();
        self.push(Op::SumRows, vec![a.id], value)
    }

    /// Per-column sums as a `1 x m` row vector.
    pub fn sum_cols(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.id].value.col_sums();
        self.push(Op::SumCols, vec![a.id], value)
    }

    /// Broadcasts a `1x1` scalar to a `rows x cols` matrix.
    pub fn broadcast_scalar(&self, a: Var, rows: usize, cols: usize) -> Var {
        assert_eq!(a.shape(), (1, 1), "broadcast_scalar requires a 1x1 input");
        let s = self.nodes.borrow()[a.id].value.scalar();
        self.push(
            Op::BroadcastScalar { rows, cols },
            vec![a.id],
            Matrix::full(rows, cols, s),
        )
    }

    /// Broadcasts an `n x 1` column vector across `cols` columns.
    pub fn col_broadcast(&self, a: Var, cols: usize) -> Var {
        assert_eq!(a.cols, 1, "col_broadcast requires an n x 1 input");
        let value = self.nodes.borrow()[a.id].value.broadcast_col(cols);
        self.push(Op::ColBroadcast { cols }, vec![a.id], value)
    }

    /// Broadcasts a `1 x m` row vector across `rows` rows.
    pub fn row_broadcast(&self, a: Var, rows: usize) -> Var {
        assert_eq!(a.rows, 1, "row_broadcast requires a 1 x m input");
        let value = self.nodes.borrow()[a.id].value.broadcast_row(rows);
        self.push(Op::RowBroadcast { rows }, vec![a.id], value)
    }

    /// Selects rows `indices` of `a`.
    pub fn gather_rows(&self, a: Var, indices: &[usize]) -> Var {
        let value = self.nodes.borrow()[a.id].value.gather_rows(indices);
        self.push(
            Op::GatherRows {
                indices: indices.to_vec(),
            },
            vec![a.id],
            value,
        )
    }

    /// Scatters the rows of `a` into a `total_rows x cols` zero matrix at `indices`.
    pub fn scatter_rows(&self, a: Var, indices: &[usize], total_rows: usize) -> Var {
        assert_eq!(a.rows, indices.len(), "scatter_rows: row count must match index count");
        let value = self.nodes.borrow()[a.id].value.scatter_rows(indices, total_rows);
        self.push(
            Op::ScatterRows {
                indices: indices.to_vec(),
                total_rows,
            },
            vec![a.id],
            value,
        )
    }

    // ---- composite conveniences -------------------------------------------------

    /// `a ⊙ c` where `c` is a plain matrix (recorded as a constant leaf).
    pub fn mul_const(&self, a: Var, c: &Matrix) -> Var {
        let c = self.constant(c.clone());
        self.mul(a, c)
    }

    /// `a + c` where `c` is a plain matrix (recorded as a constant leaf).
    pub fn add_const(&self, a: Var, c: &Matrix) -> Var {
        let c = self.constant(c.clone());
        self.add(a, c)
    }

    /// Mean of all elements as a `1x1` matrix.
    pub fn mean_all(&self, a: Var) -> Var {
        let n = (a.rows * a.cols) as f64;
        let s = self.sum_all(a);
        self.mul_scalar(s, 1.0 / n)
    }

    /// Element-wise division `a / b` (implemented as `a ⊙ b^{-1}`).
    pub fn div(&self, a: Var, b: Var) -> Var {
        let inv = self.pow_scalar(b, -1.0);
        self.mul(a, inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let tape = Tape::new();
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let v = tape.input(m.clone());
        assert_eq!(v.shape(), (2, 2));
        assert!(tape.value(v).approx_eq(&m, 0.0));
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn eager_values_match_matrix_ops() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.input(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let s = tape.add(a, b);
        let p = tape.matmul(a, b);
        assert!(tape
            .value(s)
            .approx_eq(&Matrix::from_vec(2, 2, vec![6.0, 8.0, 10.0, 12.0]), 1e-12));
        assert!(tape
            .value(p)
            .approx_eq(&Matrix::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]), 1e-12));
    }

    #[test]
    fn sigmoid_range() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_vec(1, 3, vec![-100.0, 0.0, 100.0]));
        let s = tape.value(tape.sigmoid(a));
        assert!(s[(0, 0)] < 1e-12);
        assert!((s[(0, 1)] - 0.5).abs() < 1e-12);
        assert!((s[(0, 2)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reductions_and_broadcasts() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        assert_eq!(tape.value(tape.sum_all(a)).scalar(), 21.0);
        assert!(tape
            .value(tape.sum_rows(a))
            .approx_eq(&Matrix::col_vector(&[6.0, 15.0]), 1e-12));
        assert!(tape
            .value(tape.sum_cols(a))
            .approx_eq(&Matrix::row_vector(&[5.0, 7.0, 9.0]), 1e-12));
        let s = tape.scalar(2.5);
        assert_eq!(tape.value(tape.broadcast_scalar(s, 2, 2)).sum(), 10.0);
        let c = tape.input(Matrix::col_vector(&[1.0, 2.0]));
        assert_eq!(tape.value(tape.col_broadcast(c, 3)).shape(), (2, 3));
        let r = tape.input(Matrix::row_vector(&[1.0, 2.0, 3.0]));
        assert_eq!(tape.value(tape.row_broadcast(r, 2)).shape(), (2, 3));
    }

    #[test]
    fn gather_scatter_ops() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64));
        let g = tape.gather_rows(a, &[3, 1]);
        assert_eq!(tape.value(g).row(0), &[6.0, 7.0]);
        let s = tape.scatter_rows(g, &[3, 1], 4);
        assert_eq!(tape.value(s).row(3), &[6.0, 7.0]);
        assert_eq!(tape.value(s).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn div_matches_manual() {
        let tape = Tape::new();
        let a = tape.input(Matrix::row_vector(&[2.0, 9.0]));
        let b = tape.input(Matrix::row_vector(&[4.0, 3.0]));
        let d = tape.div(a, b);
        assert!(tape.value(d).approx_eq(&Matrix::row_vector(&[0.5, 3.0]), 1e-12));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let tape = Tape::new();
        let a = tape.input(Matrix::zeros(2, 2));
        let b = tape.input(Matrix::zeros(2, 3));
        let _ = tape.add(a, b);
    }
}
