//! Dense, row-major `f64` matrices.
//!
//! This is the value type carried by every autodiff tape node. It is deliberately
//! simple: a contiguous `Vec<f64>` with explicit `rows`/`cols`, plus the handful of
//! kernels the rest of the workspace needs (element-wise arithmetic, `matmul`,
//! broadcasting along rows/columns, reductions and row gathering/scattering).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
///
/// Vectors are represented as `n x 1` (column) or `1 x n` (row) matrices.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:+.4}", self[(i, j)])?;
                if j + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a matrix where every element equals `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a column vector (`n x 1`) from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Builds a row vector (`1 x n`) from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// View of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies `values` into row `i`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols);
        self.row_mut(i).copy_from_slice(values);
    }

    /// Returns the scalar value of a `1x1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1x1`.
    pub fn scalar(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "scalar() requires a 1x1 matrix");
        self.data[0]
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape matrices element-wise with `f`.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|x| x * s)
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * other` using an i-k-j loop order so the inner loop
    /// streams over contiguous rows of both operands, register-blocked through
    /// [`crate::kernels::mul_row_panels`]. Zero `a_ik` entries are skipped (the
    /// same stream a [`crate::SparseMatrix`] of `self` would store), which keeps
    /// the dense product bit-identical to the sparse `spmm` — the zero-skip is
    /// also load-bearing for exactness: `acc + 0.0` flips a `-0.0` accumulator.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        let n = other.cols;
        let bs = other.as_slice();
        for i in 0..self.rows {
            let entries = self.row(i).iter().copied().enumerate().filter(|&(_, a_ik)| a_ik != 0.0);
            crate::kernels::mul_row_panels(entries, bs, n, &mut out.data[i * n..(i + 1) * n]);
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column vector (`rows x 1`) of per-row sums.
    pub fn row_sums(&self) -> Self {
        let mut out = Self::zeros(self.rows, 1);
        for i in 0..self.rows {
            out[(i, 0)] = self.row(i).iter().sum();
        }
        out
    }

    /// Row vector (`1 x cols`) of per-column sums.
    pub fn col_sums(&self) -> Self {
        let mut out = Self::zeros(1, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(0, j)] += self[(i, j)];
            }
        }
        out
    }

    /// Column vector of per-row maxima.
    pub fn row_max(&self) -> Self {
        let mut out = Self::zeros(self.rows, 1);
        for i in 0..self.rows {
            out[(i, 0)] = self.row(i).iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        }
        out
    }

    /// Index of the maximum element in row `i`.
    pub fn argmax_row(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Largest element of the whole matrix.
    pub fn max(&self) -> f64 {
        self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element of the whole matrix.
    pub fn min(&self) -> f64 {
        self.data.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Selects the given rows into a new `indices.len() x cols` matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.rows, "gather_rows index {i} out of bounds ({})", self.rows);
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Scatters the rows of `self` (a `indices.len() x cols` matrix) into a
    /// `total_rows x cols` zero matrix at positions `indices`, accumulating
    /// duplicates.
    pub fn scatter_rows(&self, indices: &[usize], total_rows: usize) -> Self {
        assert_eq!(self.rows, indices.len(), "scatter_rows index count mismatch");
        let mut out = Self::zeros(total_rows, self.cols);
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < total_rows, "scatter_rows index {i} out of bounds ({total_rows})");
            let src = self.row(k);
            let dst = out.row_mut(i);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        out
    }

    /// Broadcasts a column vector (`rows x 1`) across `cols` columns.
    pub fn broadcast_col(&self, cols: usize) -> Self {
        assert_eq!(self.cols, 1, "broadcast_col requires an n x 1 matrix");
        Self::from_fn(self.rows, cols, |i, _| self[(i, 0)])
    }

    /// Broadcasts a row vector (`1 x cols`) across `rows` rows.
    pub fn broadcast_row(&self, rows: usize) -> Self {
        assert_eq!(self.rows, 1, "broadcast_row requires a 1 x n matrix");
        Self::from_fn(rows, self.cols, |_, j| self[(0, j)])
    }

    /// Returns `true` when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_eye_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(3, 2).sum(), 6.0);
        let i = Matrix::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let i = Matrix::eye(4);
        assert!(a.matmul(&i).approx_eq(&a, 1e-12));
        assert!(i.matmul(&a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64) - (j as f64) * 0.5);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn row_and_col_sums() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(m.row_sums().approx_eq(&Matrix::col_vector(&[6.0, 15.0]), 1e-12));
        assert!(m.col_sums().approx_eq(&Matrix::row_vector(&[5.0, 7.0, 9.0]), 1e-12));
        assert_eq!(m.sum(), 21.0);
        assert!((m.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        let g = m.gather_rows(&[4, 0, 2]);
        assert_eq!(g.row(0), m.row(4));
        assert_eq!(g.row(1), m.row(0));
        let s = g.scatter_rows(&[4, 0, 2], 5);
        assert_eq!(s.row(4), m.row(4));
        assert_eq!(s.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn scatter_accumulates_duplicates() {
        let g = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = g.scatter_rows(&[1, 1], 3);
        assert_eq!(s.row(1), &[4.0, 6.0]);
    }

    #[test]
    fn broadcast_shapes_and_values() {
        let c = Matrix::col_vector(&[1.0, 2.0]);
        let b = c.broadcast_col(3);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b[(1, 2)], 2.0);
        let r = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let b = r.broadcast_row(2);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b[(1, 0)], 1.0);
    }

    #[test]
    fn argmax_and_max() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.3, 0.5, 0.2, 0.7]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 2);
        assert_eq!(m.max(), 0.9);
        assert_eq!(m.min(), 0.1);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![2.0, 0.5, -1.0]);
        assert!(a.hadamard(&b).approx_eq(&Matrix::row_vector(&[2.0, 1.0, -3.0]), 1e-12));
        assert!(a.scale(2.0).approx_eq(&Matrix::row_vector(&[2.0, 4.0, 6.0]), 1e-12));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m[(0, 1)] = f64::NAN;
        assert!(m.has_non_finite());
    }
}
