//! Weighted compressed-sparse-row matrices and their kernels.
//!
//! [`SparseMatrix`] is the sparse counterpart of [`Matrix`]: a CSR structure with
//! `f64` values, built for the workspace's one sparse hot shape — a (normalized)
//! graph adjacency multiplying dense feature/embedding blocks. Two kernels carry
//! the whole sparse compute core:
//!
//! * [`SparseMatrix::spmm`] — CSR · dense, register-blocked (see [`crate::kernels`]).
//!   Per output row the stored entries are accumulated in ascending column order,
//!   which is the **exact** floating-point operation sequence of [`Matrix::matmul`]
//!   (an i-k-j loop that skips zero `a_ik`; the builders filter explicit zeros so
//!   the stored stream *is* the non-zero stream). Sparse and dense forward passes
//!   are therefore bit-for-bit identical, which is what lets the dense path remain
//!   a byte-exact oracle for the sparse one — and the unblocked
//!   [`SparseMatrix::spmm_reference`] scalar kernel stays around as the oracle the
//!   blocked kernel is pinned against.
//! * [`SparseMatrix::sddmm`] — sampled dense-dense matmul: for `C = A · B`, the
//!   gradient `∂L/∂A[i,j] = ⟨∂L/∂C[i,·], B[j,·]⟩` evaluated **only at requested
//!   positions** instead of all `n²` entries. The attack loops only ever consume
//!   adjacency gradients at the stored entries plus the candidate endpoints of one
//!   target node, so this turns the backward cost from `O(n²·f)` into
//!   `O((nnz + |positions|)·f)`.

use crate::matrix::Matrix;

/// A sparse `rows x cols` matrix in compressed-sparse-row form.
///
/// Within each row, column indices are strictly ascending. Explicit zeros are
/// **filtered at construction** (both builders drop `0.0` entries), so the hot
/// kernels never branch on `v == 0.0`: every stored value is non-zero, and the
/// stored stream is exactly the stream the zero-skipping dense `matmul` would
/// consume. A zero handed to a builder still round-trips through
/// [`SparseMatrix::to_dense`] unchanged — the position is simply not stored.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` entry lists. Entries
    /// within a row must have strictly ascending column indices. Entries with
    /// value `0.0` are validated but not stored.
    ///
    /// # Panics
    /// Panics on out-of-range or non-ascending columns.
    pub fn from_rows(rows: usize, cols: usize, row_entries: &[Vec<(usize, f64)>]) -> Self {
        assert_eq!(row_entries.len(), rows, "one entry list per row");
        let nnz = row_entries.iter().map(Vec::len).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for entries in row_entries {
            let mut last: Option<usize> = None;
            for &(j, v) in entries {
                assert!(j < cols, "column {j} out of range for {cols} columns");
                assert!(last.is_none_or(|l| j > l), "columns must be strictly ascending");
                last = Some(j);
                if v == 0.0 {
                    continue;
                }
                indices.push(j);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Builds a CSR matrix holding every non-zero entry of a dense matrix.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Materializes the dense form (tests and small subproblems only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for e in self.indptr[i]..self.indptr[i + 1] {
                out[(i, self.indices[e])] = self.values[e];
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries (all non-zero: the builders filter zeros).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices of row `i`, ascending.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[usize] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i`, aligned with [`SparseMatrix::row_indices`].
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.indptr[i]..self.indptr[i + 1]]
    }

    /// The stored value at `(i, j)`, or `0.0` when the position is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self.row_indices(i).binary_search(&j) {
            Ok(k) => self.row_values(i)[k],
            Err(_) => 0.0,
        }
    }

    /// Whether position `(i, j)` is stored.
    pub fn is_stored(&self, i: usize, j: usize) -> bool {
        self.row_indices(i).binary_search(&j).is_ok()
    }

    /// Every stored position as `(row, col)`, in row-major order.
    pub fn stored_positions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for &j in self.row_indices(i) {
                out.push((i, j));
            }
        }
        out
    }

    /// The transpose, as CSR (counting sort over columns; deterministic).
    pub fn transpose(&self) -> SparseMatrix {
        let mut counts = vec![0usize; self.cols];
        for &j in &self.indices {
            counts[j] += 1;
        }
        let mut indptr = Vec::with_capacity(self.cols + 1);
        indptr.push(0);
        for c in &counts {
            indptr.push(indptr.last().unwrap() + c);
        }
        let mut cursor = indptr[..self.cols].to_vec();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for i in 0..self.rows {
            for e in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[e];
                let slot = cursor[j];
                cursor[j] += 1;
                indices[slot] = i;
                values[slot] = self.values[e];
            }
        }
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Sparse-times-dense product `self · b`, register-blocked.
    ///
    /// Accumulation order per output element is ascending stored column — exactly
    /// the operation sequence of the zero-skipping dense [`Matrix::matmul`] and of
    /// the scalar [`SparseMatrix::spmm_reference`], so the result is bit-identical
    /// to both (the blocking only regroups *which output columns* an entry's
    /// multiply-adds land in, never the per-element add order).
    pub fn spmm(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, b.cols());
        self.spmm_into(b, &mut out);
        out
    }

    /// [`SparseMatrix::spmm`] into a caller-provided output buffer.
    ///
    /// Every element of `out` is overwritten and its prior contents are ignored
    /// — the blocked kernel's first sweep is write-only, so no zeroed (or even
    /// initialized-to-anything-specific) buffer is required. Hot loops that
    /// compute many products of the same shape can reuse one allocation and
    /// skip the page-faulting cost of a fresh zeroed matrix per call.
    pub fn spmm_into(&self, b: &Matrix, out: &mut Matrix) {
        // Unlabeled detail span: the guard is inert (one relaxed atomic load)
        // unless a recorder at Detail level is installed, keeping the kernel's
        // hot path free of allocations.
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Detail, "spmm");
        assert_eq!(
            self.cols,
            b.rows(),
            "spmm: inner dimensions differ ({} vs {})",
            self.cols,
            b.rows()
        );
        let n = b.cols();
        assert_eq!(
            out.shape(),
            (self.rows, n),
            "spmm_into: output shape {:?} does not match result shape ({}, {})",
            out.shape(),
            self.rows,
            n
        );
        let bs = b.as_slice();
        for i in 0..self.rows {
            let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
            let entries = self.indices[lo..hi]
                .iter()
                .copied()
                .zip(self.values[lo..hi].iter().copied());
            crate::kernels::mul_row_panels(entries, bs, n, out.row_mut(i));
        }
    }

    /// The original unblocked scalar spmm loop, kept as the oracle the blocked
    /// [`SparseMatrix::spmm`] is pinned against (bit-for-bit, see the equivalence
    /// suites). Benchmarked as the `scalar` baseline of the `spmm_kernels` group.
    pub fn spmm_reference(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, b.cols());
        self.spmm_reference_into(b, &mut out);
        out
    }

    /// [`SparseMatrix::spmm_reference`] into a caller-provided output buffer.
    ///
    /// The scalar loop accumulates in place, so unlike the blocked
    /// [`SparseMatrix::spmm_into`] it must first zero-fill `out` — the pass the
    /// allocating form gets implicitly (and lazily) from the zeroed allocation.
    pub fn spmm_reference_into(&self, b: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            b.rows(),
            "spmm: inner dimensions differ ({} vs {})",
            self.cols,
            b.rows()
        );
        let n = b.cols();
        assert_eq!(
            out.shape(),
            (self.rows, n),
            "spmm_reference_into: output shape {:?} does not match result shape ({}, {})",
            out.shape(),
            self.rows,
            n
        );
        out.as_mut_slice().fill(0.0);
        for i in 0..self.rows {
            let out_row = out.row_mut(i);
            for e in self.indptr[i]..self.indptr[i + 1] {
                let v = self.values[e];
                if v == 0.0 {
                    continue;
                }
                let b_row = b.row(self.indices[e]);
                for j in 0..n {
                    out_row[j] += v * b_row[j];
                }
            }
        }
    }

    /// Sampled dense-dense matmul: for each requested position `(i, j)` returns
    /// `⟨g[i,·], b[j,·]⟩` — the gradient `∂L/∂A[i,j]` of `C = A · B` given
    /// `g = ∂L/∂C`, evaluated only where asked.
    ///
    /// Bounds are validated in one pre-pass so the per-position loop is
    /// assert-free; consecutive positions sharing a row reuse one `g.row(i)`
    /// load (stored positions arrive row-major, so runs are long); and the dot
    /// itself is the unrolled **in-order** [`crate::kernels::dot_in_order`], so
    /// every returned value is bit-identical to the naive
    /// `zip(g.row(i), b.row(j)).map(|..| x*y).sum()`.
    pub fn sddmm(positions: &[(usize, usize)], g: &Matrix, b: &Matrix) -> Vec<f64> {
        assert_eq!(g.cols(), b.cols(), "sddmm: g and b must share their inner dimension");
        for &(i, j) in positions {
            assert!(i < g.rows() && j < b.rows(), "sddmm position ({i},{j}) out of range");
        }
        let mut out = Vec::with_capacity(positions.len());
        let mut p = 0;
        while p < positions.len() {
            let i = positions[p].0;
            let g_row = g.row(i);
            while p < positions.len() && positions[p].0 == i {
                out.push(crate::kernels::dot_in_order(g_row, b.row(positions[p].1)));
                p += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SparseMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 0 3 0 ]
        SparseMatrix::from_rows(3, 3, &[vec![(0, 1.0), (2, 2.0)], vec![], vec![(1, 3.0)]])
    }

    #[test]
    fn roundtrip_dense() {
        let s = example();
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.get(0, 2), 2.0);
        assert_eq!(s.get(1, 1), 0.0);
        assert!(s.is_stored(2, 1));
        assert!(!s.is_stored(0, 1));
        let d = s.to_dense();
        assert_eq!(SparseMatrix::from_dense(&d), s);
        assert_eq!(s.stored_positions(), vec![(0, 0), (0, 2), (2, 1)]);
    }

    #[test]
    fn spmm_matches_dense_matmul_bitwise() {
        let s = example();
        let b = Matrix::from_fn(3, 2, |i, j| 0.31 * (i as f64 + 1.0) - 0.77 * (j as f64));
        let sparse = s.spmm(&b);
        let dense = s.to_dense().matmul(&b);
        assert_eq!(sparse.as_slice(), dense.as_slice(), "spmm must be bit-identical");
    }

    #[test]
    fn explicit_zeros_are_filtered_but_roundtrip_unchanged() {
        let s = SparseMatrix::from_rows(2, 2, &[vec![(0, 0.0), (1, 2.0)], vec![(0, 1.0)]]);
        // The zero entry is dropped at construction, not stored…
        assert_eq!(s.nnz(), 2);
        assert!(!s.is_stored(0, 0));
        assert_eq!(s.get(0, 0), 0.0);
        // …and the dense round-trip is exactly what storing the zero would give.
        let with_zero = Matrix::from_fn(2, 2, |i, j| [[0.0, 2.0], [1.0, 0.0]][i][j]);
        assert!(s.to_dense().approx_eq(&with_zero, 0.0));
        let b = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64 + 0.5);
        assert_eq!(s.spmm(&b).as_slice(), s.to_dense().matmul(&b).as_slice());
    }

    #[test]
    fn blocked_spmm_matches_reference_bitwise_across_widths() {
        // Widths 1..=19 cover the 8-panel, the 4-panel, and every scalar
        // remainder, plus rows with zero entries.
        let s = SparseMatrix::from_rows(
            4,
            5,
            &[
                vec![(0, 0.31), (3, -1.7), (4, 0.02)],
                vec![],
                vec![(1, 2.5)],
                vec![(0, -0.875), (1, 1.0e-3), (2, 7.25), (3, 0.5), (4, -3.0)],
            ],
        );
        for n in 0..=19 {
            let b = Matrix::from_fn(5, n, |i, j| ((i * 19 + j) as f64).sin() - 0.4);
            let blocked = s.spmm(&b);
            let reference = s.spmm_reference(&b);
            assert_eq!(blocked.as_slice(), reference.as_slice(), "width {n}");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let s = example();
        let t = s.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 2), 3.0);
        assert_eq!(t.transpose(), s);
        assert!(t.to_dense().approx_eq(&s.to_dense().transpose(), 0.0));
    }

    #[test]
    fn sddmm_matches_dense_gradient() {
        let b = Matrix::from_fn(3, 4, |i, j| (i as f64) * 0.3 - (j as f64) * 0.2 + 0.1);
        let g = Matrix::from_fn(3, 4, |i, j| (i as f64 + 1.0) * 0.5 + (j as f64) * 0.25);
        // Dense gradient of C = A·B w.r.t. A is g · Bᵀ.
        let dense_grad = g.matmul(&b.transpose());
        let positions = vec![(0, 0), (0, 1), (2, 2), (1, 0)];
        let sampled = SparseMatrix::sddmm(&positions, &g, &b);
        for (&(i, j), &v) in positions.iter().zip(&sampled) {
            assert!((v - dense_grad[(i, j)]).abs() < 1e-12, "mismatch at ({i},{j})");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_rows_rejected() {
        let _ = SparseMatrix::from_rows(1, 3, &[vec![(2, 1.0), (0, 1.0)]]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn spmm_shape_mismatch_panics() {
        let s = example();
        let _ = s.spmm(&Matrix::zeros(2, 2));
    }
}
