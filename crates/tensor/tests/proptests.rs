//! Property-based tests of the autodiff engine: analytic gradients must agree with
//! central finite differences for randomly generated inputs and expressions, and
//! the matrix kernels must satisfy their algebraic identities.

use proptest::prelude::*;

use geattack_tensor::{grad::grad, grad_full, Matrix, SparseMatrix, Tape, Var};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols).prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Random sparse square matrices shaped like the workspace's adjacencies: a
/// random undirected edge set with random weights (zero density included).
fn sparse_adjacency_strategy(n: usize) -> impl Strategy<Value = SparseMatrix> {
    proptest::collection::vec((0usize..n, 0usize..n, -2.0f64..2.0), 0..(n * 2)).prop_map(move |triplets| {
        let mut dense = Matrix::zeros(n, n);
        for (u, v, w) in triplets {
            if u != v && w != 0.0 {
                dense[(u, v)] = w;
                dense[(v, u)] = w;
            }
        }
        SparseMatrix::from_dense(&dense)
    })
}

fn finite_diff(f: &dyn Fn(&Matrix) -> f64, x0: &Matrix, eps: f64) -> Matrix {
    let mut out = Matrix::zeros(x0.rows(), x0.cols());
    for i in 0..x0.rows() {
        for j in 0..x0.cols() {
            let mut plus = x0.clone();
            plus[(i, j)] += eps;
            let mut minus = x0.clone();
            minus[(i, j)] -= eps;
            out[(i, j)] = (f(&plus) - f(&minus)) / (2.0 * eps);
        }
    }
    out
}

fn check_against_finite_diff(build: impl Fn(&Tape, Var) -> Var, x0: Matrix, tol: f64) {
    let f = |m: &Matrix| -> f64 {
        let tape = Tape::new();
        let v = tape.input(m.clone());
        tape.value(build(&tape, v)).scalar()
    };
    let tape = Tape::new();
    let x = tape.input(x0.clone());
    let y = build(&tape, x);
    let analytic = tape.value(grad(&tape, y, &[x])[0]);
    let numeric = finite_diff(&f, &x0, 1e-5);
    for i in 0..x0.rows() {
        for j in 0..x0.cols() {
            let a = analytic[(i, j)];
            let n = numeric[(i, j)];
            assert!(
                (a - n).abs() <= tol * (1.0 + n.abs()),
                "gradient mismatch at ({i},{j}): analytic {a}, numeric {n}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gradient_of_sigmoid_chain_matches_finite_diff(x in matrix_strategy(3, 4)) {
        check_against_finite_diff(
            |t, v| {
                let s = t.sigmoid(v);
                let m = t.mul(s, s);
                t.sum_all(m)
            },
            x,
            1e-5,
        );
    }

    #[test]
    fn gradient_of_matmul_chain_matches_finite_diff(x in matrix_strategy(3, 3)) {
        check_against_finite_diff(
            |t, v| {
                let w = t.constant(Matrix::from_fn(3, 2, |i, j| 0.4 * i as f64 - 0.3 * j as f64 + 0.2));
                let h = t.tanh(t.matmul(v, w));
                t.sum_all(t.mul(h, h))
            },
            x,
            1e-5,
        );
    }

    #[test]
    fn gradient_of_softmax_loss_matches_finite_diff(x in matrix_strategy(2, 4)) {
        check_against_finite_diff(
            |t, v| {
                let lp = geattack_tensor::nn::log_softmax_rows(t, v);
                geattack_tensor::nn::masked_nll(t, lp, &[0, 1], &[1, 3], 4)
            },
            x,
            1e-5,
        );
    }

    #[test]
    fn double_backward_of_cubic_matches_closed_form(x in matrix_strategy(2, 3)) {
        // f = sum(x^3) => d²f/dx² applied to an all-ones vector is 6x.
        let tape = Tape::new();
        let v = tape.input(x.clone());
        let f = tape.sum_all(tape.pow_scalar(v, 3.0));
        let df = grad(&tape, f, &[v])[0];
        let g = tape.sum_all(df);
        let d2 = tape.value(grad(&tape, g, &[v])[0]);
        let expected = x.map(|e| 6.0 * e);
        prop_assert!(d2.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(3, 4),
        c in matrix_strategy(4, 2),
    ) {
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn transpose_of_product_reverses_order(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn softmax_rows_are_probability_distributions(x in matrix_strategy(4, 5)) {
        let tape = Tape::new();
        let v = tape.input(x);
        let s = tape.value(geattack_tensor::nn::softmax_rows(&tape, v));
        for i in 0..4 {
            let row_sum: f64 = s.row(i).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9);
            prop_assert!(s.row(i).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn spmm_forward_is_bitwise_equal_to_dense_matmul(
        a in sparse_adjacency_strategy(6),
        b in matrix_strategy(6, 3),
    ) {
        // The sparse kernel must replay the dense zero-skipping matmul exactly —
        // the property that makes the dense path a byte-exact oracle.
        let tape = Tape::new();
        let av = tape.sparse_constant(a.clone());
        let bv = tape.input(b.clone());
        let sparse = tape.value(tape.spmm(av, bv));
        let dense = a.to_dense().matmul(&b);
        prop_assert_eq!(sparse.as_slice(), dense.as_slice());
    }

    #[test]
    fn spmm_dense_backward_is_bitwise_equal_to_dense_matmul_backward(
        a in sparse_adjacency_strategy(5),
        b in matrix_strategy(5, 2),
    ) {
        // ∂ sum((A·B)²)/∂B through the sparse op vs the dense op.
        let tape = Tape::new();
        let av = tape.sparse_constant(a.clone());
        let bv = tape.input(b.clone());
        let c = tape.spmm(av, bv);
        let loss = tape.sum_all(tape.mul(c, c));
        let sparse_grad = tape.value(grad(&tape, loss, &[bv])[0]);

        let tape = Tape::new();
        let ad = tape.constant(a.to_dense());
        let bv = tape.input(b);
        let c = tape.matmul(ad, bv);
        let loss = tape.sum_all(tape.mul(c, c));
        let dense_grad = tape.value(grad(&tape, loss, &[bv])[0]);
        prop_assert_eq!(sparse_grad.as_slice(), dense_grad.as_slice());
    }

    #[test]
    fn masked_sddmm_backward_matches_dense_adjacency_gradient(
        a in sparse_adjacency_strategy(5),
        b in matrix_strategy(5, 3),
        extra in proptest::collection::vec((0usize..5, 0usize..5), 0..6),
    ) {
        // The candidate mask mixes stored entries with arbitrary (structurally
        // zero) positions; both kinds must match the full dense gradient.
        let mut positions = a.stored_positions();
        positions.extend(extra.iter().copied().filter(|p| !a.is_stored(p.0, p.1)));
        positions.sort_unstable();
        positions.dedup();

        let tape = Tape::new();
        let av = tape.sparse_input(a.clone(), positions.clone());
        let bv = tape.constant(b.clone());
        let c = tape.spmm(av, bv);
        let loss = tape.sum_all(tape.mul(c, c));
        let (_, sparse_grads) = grad_full(&tape, loss, &[], &[av]);

        let tape = Tape::new();
        let ad = tape.input(a.to_dense());
        let bv = tape.constant(b);
        let c = tape.matmul(ad, bv);
        let loss = tape.sum_all(tape.mul(c, c));
        let dense = tape.value(grad(&tape, loss, &[ad])[0]);

        for (&(i, j), &v) in positions.iter().zip(&sparse_grads[0]) {
            prop_assert!(
                (v - dense[(i, j)]).abs() < 1e-10,
                "masked gradient mismatch at ({}, {}): {} vs {}", i, j, v, dense[(i, j)]
            );
        }
    }

    #[test]
    fn gcn_normalization_is_symmetric_and_bounded(edges in proptest::collection::vec((0usize..6, 0usize..6), 0..12)) {
        let mut adj = Matrix::zeros(6, 6);
        for (u, v) in edges {
            if u != v {
                adj[(u, v)] = 1.0;
                adj[(v, u)] = 1.0;
            }
        }
        let norm = geattack_tensor::nn::gcn_normalize_matrix(&adj);
        prop_assert!(norm.approx_eq(&norm.transpose(), 1e-12));
        prop_assert!(norm.max() <= 1.0 + 1e-12);
        prop_assert!(norm.min() >= 0.0);
    }
}
