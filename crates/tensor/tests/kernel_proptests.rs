//! Property-based tests of the register-blocked sparse kernels: the blocked
//! spmm must be bit-for-bit identical to the scalar reference (and to the
//! zero-skipping dense matmul) on arbitrary CSR matrices, across every panel
//! remainder width, and the f32 mirror kernels must stay shape-correct and
//! finite while tracking the f64 results.

use proptest::prelude::*;

use geattack_tensor::{Matrix, MatrixF32, SparseMatrix, SparseMatrixF32};

/// Random rectangular CSR matrices built row-by-row: rows are independently
/// empty, sparse or dense-ish, so panel kernels see empty rows, single-entry
/// rows and long runs. Values include exact zeros (filtered at construction).
fn csr_strategy(rows: usize, cols: usize) -> impl Strategy<Value = SparseMatrix> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..cols, -2.0f64..2.0), 0..(cols + 1)),
        rows..(rows + 1),
    )
    .prop_map(move |row_lists| {
        let row_entries: Vec<Vec<(usize, f64)>> = row_lists
            .into_iter()
            .map(|mut entries| {
                entries.sort_by_key(|&(j, _)| j);
                entries.dedup_by_key(|&mut (j, _)| j);
                // Squash small magnitudes to exact zero so construction-time
                // filtering of explicit zeros is exercised.
                for e in &mut entries {
                    if e.1.abs() < 0.2 {
                        e.1 = 0.0;
                    }
                }
                entries
            })
            .collect();
        SparseMatrix::from_rows(rows, cols, &row_entries)
    })
}

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols).prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence: blocked spmm == scalar reference, bitwise, for
    /// every panel remainder width 1..=7 (below one 4-panel) and for widths that
    /// exercise the 8-panel loop plus a remainder.
    #[test]
    fn blocked_spmm_is_bitwise_equal_to_scalar_reference(
        a in csr_strategy(7, 5),
        width in 1usize..8,
        seed in 0u64..1000,
    ) {
        for n in [width, 8 + width, 16 + width] {
            let b = Matrix::from_fn(5, n, |i, j| {
                let x = (seed as f64 + 1.0) * (i as f64 + 0.7) - 1.3 * j as f64;
                (x * 0.37).sin()
            });
            let blocked = a.spmm(&b);
            let reference = a.spmm_reference(&b);
            prop_assert_eq!(blocked.as_slice(), reference.as_slice(), "width {}", n);
        }
    }

    /// The `_into` variants fully overwrite a reused (dirty) buffer: results are
    /// bit-identical to the allocating forms no matter what the buffer held.
    #[test]
    fn spmm_into_overwrites_dirty_buffers_bitwise(
        a in csr_strategy(7, 5),
        b in matrix_strategy(5, 6),
        garbage in -100.0f64..100.0,
    ) {
        let mut out = Matrix::from_fn(7, 6, |i, j| garbage * (i as f64 + 1.0) - j as f64);
        a.spmm_into(&b, &mut out);
        let fresh = a.spmm(&b);
        prop_assert_eq!(out.as_slice(), fresh.as_slice());

        let mut out_ref = Matrix::from_fn(7, 6, |i, j| garbage - (i * j) as f64);
        a.spmm_reference_into(&b, &mut out_ref);
        prop_assert_eq!(out_ref.as_slice(), fresh.as_slice());
    }

    /// The blocked kernel also replays the dense zero-skipping matmul exactly —
    /// the dense path stays a byte-exact oracle for the sparse one.
    #[test]
    fn blocked_spmm_is_bitwise_equal_to_dense_matmul(
        a in csr_strategy(6, 6),
        b in matrix_strategy(6, 5),
    ) {
        let sparse = a.spmm(&b);
        let dense = a.to_dense().matmul(&b);
        prop_assert_eq!(sparse.as_slice(), dense.as_slice());
    }

    /// Explicit zeros never survive construction, and filtering them does not
    /// change what the matrix computes.
    #[test]
    fn construction_filters_zeros_without_changing_results(
        a in csr_strategy(6, 4),
        b in matrix_strategy(4, 3),
    ) {
        for i in 0..6 {
            prop_assert!(a.row_values(i).iter().all(|&v| v != 0.0), "explicit zero stored in row {}", i);
        }
        let rebuilt = SparseMatrix::from_dense(&a.to_dense());
        prop_assert_eq!(rebuilt.nnz(), a.nnz());
        let via_rebuilt = rebuilt.spmm(&b);
        let direct = a.spmm(&b);
        prop_assert_eq!(via_rebuilt.as_slice(), direct.as_slice());
    }

    /// The grouped sddmm computes each position's dot product exactly as the
    /// straightforward per-position fold does.
    #[test]
    fn sddmm_matches_per_position_dot_bitwise(
        g in matrix_strategy(5, 6),
        b in matrix_strategy(4, 6),
        positions in proptest::collection::vec((0usize..5, 0usize..4), 0..12),
    ) {
        let mut positions = positions;
        positions.sort_unstable();
        positions.dedup();
        let out = SparseMatrix::sddmm(&positions, &g, &b);
        prop_assert_eq!(out.len(), positions.len());
        for (&(i, j), &v) in positions.iter().zip(&out) {
            let naive: f64 = g.row(i).iter().zip(b.row(j)).map(|(&x, &y)| x * y).sum();
            prop_assert_eq!(v.to_bits(), naive.to_bits(), "position ({}, {})", i, j);
        }
    }

    /// The f32 spmm mirror: correct shape, finite outputs, and within
    /// single-precision tolerance of the f64 result.
    #[test]
    fn f32_spmm_is_finite_and_tracks_f64(
        a in csr_strategy(6, 5),
        b in matrix_strategy(5, 7),
    ) {
        let a32 = SparseMatrixF32::from_f64(&a);
        let b32 = MatrixF32::from_f64(&b);
        let out32 = a32.spmm(&b32);
        prop_assert_eq!(out32.shape(), (6, 7));
        prop_assert!(!out32.has_non_finite());
        let out64 = a.spmm(&b);
        for (x32, x64) in out32.as_slice().iter().zip(out64.as_slice()) {
            prop_assert!((*x32 as f64 - x64).abs() < 1e-4, "{} vs {}", x32, x64);
        }
    }

    /// The f32 dense matmul mirror: correct shape, finite, tracks f64.
    #[test]
    fn f32_matmul_is_finite_and_tracks_f64(
        a in matrix_strategy(4, 6),
        b in matrix_strategy(6, 5),
    ) {
        let out32 = MatrixF32::from_f64(&a).matmul(&MatrixF32::from_f64(&b));
        prop_assert_eq!(out32.shape(), (4, 5));
        prop_assert!(!out32.has_non_finite());
        let out64 = a.matmul(&b);
        for (x32, x64) in out32.as_slice().iter().zip(out64.as_slice()) {
            prop_assert!((*x32 as f64 - x64).abs() < 1e-4, "{} vs {}", x32, x64);
        }
    }
}
