//! Name-based registry of every known graph family.
//!
//! The registry is the single point where a scenario spec's `family` string
//! becomes a generator: the four synthetic families of this crate (plus the
//! heterophilous SBM preset) and the three citation datasets wrapped by
//! [`geattack_graph::CitationFamily`]. Names are case-insensitive and accept
//! `_` for `-`.

use geattack_graph::{CitationFamily, DatasetName, GraphFamily};

use crate::families::{BaShapes, KRegular, PowerlawCluster, StochasticBlockModel, TreeCycles, WattsStrogatz};

/// Registry keys of every built-in family, in presentation order.
pub const FAMILY_NAMES: [&str; 11] = [
    "ba-shapes",
    "powerlaw-cluster",
    "powerlaw-cluster-huge",
    "sbm",
    "sbm-het",
    "watts-strogatz",
    "k-regular",
    "tree-cycles",
    "citeseer",
    "cora",
    "acm",
];

/// Resolves a family name to its generator. Returns `None` for unknown names.
pub fn resolve(name: &str) -> Option<Box<dyn GraphFamily>> {
    match canonical(name).as_str() {
        "ba-shapes" => Some(Box::new(BaShapes::default())),
        "powerlaw-cluster" => Some(Box::new(PowerlawCluster::default())),
        "powerlaw-cluster-huge" => Some(Box::new(PowerlawCluster::huge())),
        "sbm" => Some(Box::new(StochasticBlockModel::homophilous())),
        "sbm-het" => Some(Box::new(StochasticBlockModel::heterophilous())),
        "watts-strogatz" => Some(Box::new(WattsStrogatz::default())),
        "k-regular" => Some(Box::new(KRegular::default())),
        "tree-cycles" => Some(Box::new(TreeCycles::default())),
        "citeseer" => Some(Box::new(CitationFamily::new(DatasetName::Citeseer))),
        "cora" => Some(Box::new(CitationFamily::new(DatasetName::Cora))),
        "acm" => Some(Box::new(CitationFamily::new(DatasetName::Acm))),
        _ => None,
    }
}

/// Whether `name` resolves to a known family.
pub fn is_known(name: &str) -> bool {
    FAMILY_NAMES.contains(&canonical(name).as_str())
}

/// Canonical registry form of a family name: lower-case, `-` separators.
pub fn canonical(name: &str) -> String {
    name.trim().to_ascii_lowercase().replace('_', "-")
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_graph::FamilyConfig;

    #[test]
    fn every_listed_family_resolves_to_its_name() {
        for name in FAMILY_NAMES {
            let family = resolve(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(family.name(), name);
        }
    }

    #[test]
    fn names_are_case_and_separator_insensitive() {
        assert!(resolve("BA_Shapes").is_some());
        assert!(resolve("  Tree-Cycles ").is_some());
        assert!(is_known("WATTS_STROGATZ"));
        assert!(!is_known("erdos-renyi"));
        assert!(resolve("erdos-renyi").is_none());
    }

    #[test]
    fn sbm_presets_differ_in_homophily() {
        let config = FamilyConfig::new(0.25, 3);
        let hom = resolve("sbm").unwrap().load(&config);
        let het = resolve("sbm-het").unwrap().load(&config);
        assert!(
            hom.edge_homophily() > het.edge_homophily() + 0.2,
            "homophilous preset {} must clearly exceed heterophilous {}",
            hom.edge_homophily(),
            het.edge_homophily()
        );
    }
}
