//! # geattack-scenarios
//!
//! The scenario subsystem: pluggable graph-family generators plus the
//! declarative sweep specifications that drive the `geattack-sweep` binary.
//!
//! The paper evaluates GEAttack on three citation graphs; this crate widens the
//! evaluation surface to arbitrary graph families behind the
//! [`geattack_graph::GraphFamily`] trait:
//!
//! * [`families::BaShapes`] — preferential attachment with planted house motifs;
//! * [`families::PowerlawCluster`] — Holme–Kim preferential attachment with
//!   triad formation (hubs *and* clustering);
//! * [`families::StochasticBlockModel`] — block communities with tunable
//!   homophily (`sbm` and `sbm-het` presets);
//! * [`families::WattsStrogatz`] — small-world ring lattices;
//! * [`families::KRegular`] — hub-free random `k`-regular expanders;
//! * [`families::TreeCycles`] — balanced binary trees with cycle motifs;
//! * the three citation datasets, adapted by `geattack-graph`.
//!
//! [`registry`] resolves family names to generators; [`spec`] defines the
//! serde-deserializable [`ScenarioSpec`] (one graph) and [`SweepSpec`] (a full
//! `{family x scale x seed x attacker x explainer x budget}` grid). Execution
//! lives in `geattack_core::engine`, which reuses one prepared experiment per
//! (family, scale, seed, explainer) cell across all attackers and budgets.

pub mod families;
pub mod registry;
pub mod spec;

pub use families::{BaShapes, KRegular, PowerlawCluster, StochasticBlockModel, TreeCycles, WattsStrogatz};
pub use registry::{canonical, is_known, resolve, FAMILY_NAMES};
pub use spec::{BudgetSpec, ScenarioSpec, SweepSpec};
