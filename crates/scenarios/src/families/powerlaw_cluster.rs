//! Holme–Kim powerlaw-cluster graphs: preferential attachment with triad
//! formation.
//!
//! Plain Barabási–Albert growth yields the heavy-tailed degree distribution of
//! real networks but almost no triangles; Holme & Kim (2002) interleave each
//! preferential-attachment step with a *triad-formation* step — with
//! probability `triad`, the new node also links to a random neighbour of the
//! node it just attached to — producing hubs **and** high clustering at once.
//! That combination (social-network-like structure) is a distinct regime from
//! both the motif-planted BA-Shapes and the near-regular small-world ring:
//! explanation masks concentrate on dense triangle neighbourhoods while
//! gradient attacks still find cheap hub edges.
//!
//! Labels are assigned by attachment wave (contiguous growth phases), so early
//! high-degree nodes and late low-degree nodes carry different classes while
//! features stay class-correlated through [`topic_features`].
//!
//! Generation is CSR-native: a [`GraphBuilder`] plus a [`DegreeTree`] replace
//! the old dense matrix and linear roulette scan, so the `huge` preset grows
//! 100k-node graphs in `O(n·m·log n)` time and `O(E)` memory while every
//! existing preset stays byte-identical (same RNG stream, same picks).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::family::{stream_seed, topic_features, FamilyConfig, GraphFamily};
use geattack_graph::{Graph, GraphBuilder};

use super::{feature_dim, DegreeTree};

/// Holme–Kim generator. Reference scale: 500 nodes, 2 attachment edges per new
/// node, 60% triad-formation probability, 4 growth-wave classes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerlawCluster {
    /// Node count at scale 1.0.
    pub nodes: usize,
    /// Edges each new node attaches with (the BA `m` parameter).
    pub attach_edges: usize,
    /// Probability of a triad-formation step after each attachment.
    pub triad: f64,
    /// Number of growth-wave classes.
    pub classes: usize,
    /// Registry name (the registry also exposes the 100k-node `huge` preset as
    /// a distinct family).
    pub name: &'static str,
}

impl Default for PowerlawCluster {
    fn default() -> Self {
        Self {
            nodes: 500,
            attach_edges: 2,
            triad: 0.6,
            classes: 4,
            name: "powerlaw-cluster",
        }
    }
}

impl PowerlawCluster {
    /// The 100k-node preset, registered as `powerlaw-cluster-huge`. Same shape
    /// parameters as the default family — only the reference node count grows,
    /// exercising the sparse end-to-end path at a scale the dense core could
    /// never hold in memory.
    pub fn huge() -> Self {
        Self {
            nodes: 100_000,
            name: "powerlaw-cluster-huge",
            ..Self::default()
        }
    }
}

impl GraphFamily for PowerlawCluster {
    fn name(&self) -> &'static str {
        self.name
    }

    fn reference_nodes(&self) -> usize {
        self.nodes
    }

    fn generate(&self, config: &FamilyConfig) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(self.name(), config.seed));
        let n = ((self.nodes as f64 * config.scale).round() as usize).max(60);
        let m = self.attach_edges.max(1).min(n - 1);

        let mut builder = GraphBuilder::new(n);
        let mut degree = DegreeTree::new(n);
        let add = |builder: &mut GraphBuilder, degree: &mut DegreeTree, u: usize, v: usize| -> bool {
            if builder.add_edge(u, v) {
                degree.add(u, 1);
                degree.add(v, 1);
                return true;
            }
            false
        };

        // Seed clique of m+1 nodes, as in the BA base.
        for u in 0..=m {
            for v in 0..u {
                add(&mut builder, &mut degree, u, v);
            }
        }

        // Growth: each new node makes m attachments. The first is always
        // preferential; each subsequent one is, with probability `triad`, a
        // triad-formation step toward a random neighbour of the previous
        // attachment target (falling back to preferential attachment when
        // every such neighbour is already linked).
        for u in (m + 1)..n {
            let preferential = |rng: &mut ChaCha8Rng, degree: &DegreeTree, u: usize| -> usize {
                let total = degree.prefix(u);
                let ticket = rng.gen_range(0..total.max(1));
                if total == 0 {
                    0
                } else {
                    degree.pick(ticket)
                }
            };
            let mut last_target: Option<usize> = None;
            let mut attached = 0usize;
            let mut guard = 0usize;
            while attached < m && guard < 50 * m {
                guard += 1;
                let target = match last_target {
                    Some(anchor) if rng.gen::<f64>() < self.triad => {
                        // Triad formation: a uniformly random neighbour of the
                        // anchor that `u` is not yet linked to. Only nodes below
                        // `u` exist yet, so the anchor's ascending neighbour
                        // slice filtered to `w < u` enumerates exactly the old
                        // dense scan's candidate list, in the same order.
                        let candidates: Vec<usize> = builder
                            .neighbors(anchor)
                            .iter()
                            .copied()
                            .filter(|&w| w < u && !builder.has_edge(u, w))
                            .collect();
                        if candidates.is_empty() {
                            preferential(&mut rng, &degree, u)
                        } else {
                            candidates[rng.gen_range(0..candidates.len())]
                        }
                    }
                    _ => preferential(&mut rng, &degree, u),
                };
                if add(&mut builder, &mut degree, u, target) {
                    attached += 1;
                    last_target = Some(target);
                }
            }
        }

        // Growth waves as classes: node i's class is its attachment phase.
        let labels: Vec<usize> = (0..n).map(|i| (i * self.classes) / n).collect();
        let d = feature_dim(config.scale);
        let features = topic_features(n, d, self.classes, &labels, 16, 0.85, &mut rng);
        Graph::from_csr(builder.into_csr(), features, labels, self.classes)
    }
}
