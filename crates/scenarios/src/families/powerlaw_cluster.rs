//! Holme–Kim powerlaw-cluster graphs: preferential attachment with triad
//! formation.
//!
//! Plain Barabási–Albert growth yields the heavy-tailed degree distribution of
//! real networks but almost no triangles; Holme & Kim (2002) interleave each
//! preferential-attachment step with a *triad-formation* step — with
//! probability `triad`, the new node also links to a random neighbour of the
//! node it just attached to — producing hubs **and** high clustering at once.
//! That combination (social-network-like structure) is a distinct regime from
//! both the motif-planted BA-Shapes and the near-regular small-world ring:
//! explanation masks concentrate on dense triangle neighbourhoods while
//! gradient attacks still find cheap hub edges.
//!
//! Labels are assigned by attachment wave (contiguous growth phases), so early
//! high-degree nodes and late low-degree nodes carry different classes while
//! features stay class-correlated through [`topic_features`].

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::family::{stream_seed, topic_features, FamilyConfig, GraphFamily};
use geattack_graph::Graph;
use geattack_tensor::Matrix;

use super::feature_dim;

/// Holme–Kim generator. Reference scale: 500 nodes, 2 attachment edges per new
/// node, 60% triad-formation probability, 4 growth-wave classes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerlawCluster {
    /// Node count at scale 1.0.
    pub nodes: usize,
    /// Edges each new node attaches with (the BA `m` parameter).
    pub attach_edges: usize,
    /// Probability of a triad-formation step after each attachment.
    pub triad: f64,
    /// Number of growth-wave classes.
    pub classes: usize,
}

impl Default for PowerlawCluster {
    fn default() -> Self {
        Self {
            nodes: 500,
            attach_edges: 2,
            triad: 0.6,
            classes: 4,
        }
    }
}

impl GraphFamily for PowerlawCluster {
    fn name(&self) -> &'static str {
        "powerlaw-cluster"
    }

    fn reference_nodes(&self) -> usize {
        self.nodes
    }

    fn generate(&self, config: &FamilyConfig) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(self.name(), config.seed));
        let n = ((self.nodes as f64 * config.scale).round() as usize).max(60);
        let m = self.attach_edges.max(1).min(n - 1);

        let mut adj = Matrix::zeros(n, n);
        let mut degree = vec![0usize; n];
        let add = |adj: &mut Matrix, degree: &mut Vec<usize>, u: usize, v: usize| -> bool {
            if u != v && adj[(u, v)] < 0.5 {
                adj[(u, v)] = 1.0;
                adj[(v, u)] = 1.0;
                degree[u] += 1;
                degree[v] += 1;
                return true;
            }
            false
        };

        // Seed clique of m+1 nodes, as in the BA base.
        for u in 0..=m {
            for v in 0..u {
                add(&mut adj, &mut degree, u, v);
            }
        }

        // Growth: each new node makes m attachments. The first is always
        // preferential; each subsequent one is, with probability `triad`, a
        // triad-formation step toward a random neighbour of the previous
        // attachment target (falling back to preferential attachment when
        // every such neighbour is already linked).
        for u in (m + 1)..n {
            let preferential = |rng: &mut ChaCha8Rng, degree: &[usize], u: usize| -> usize {
                let total: usize = degree[..u].iter().sum();
                let mut ticket = rng.gen_range(0..total.max(1));
                for (v, &d) in degree[..u].iter().enumerate() {
                    if ticket < d {
                        return v;
                    }
                    ticket -= d;
                }
                0
            };
            let mut last_target: Option<usize> = None;
            let mut attached = 0usize;
            let mut guard = 0usize;
            while attached < m && guard < 50 * m {
                guard += 1;
                let target = match last_target {
                    Some(anchor) if rng.gen::<f64>() < self.triad => {
                        // Triad formation: a uniformly random neighbour of the
                        // anchor that `u` is not yet linked to.
                        let candidates: Vec<usize> = (0..u)
                            .filter(|&w| adj[(anchor, w)] > 0.5 && w != u && adj[(u, w)] < 0.5)
                            .collect();
                        if candidates.is_empty() {
                            preferential(&mut rng, &degree, u)
                        } else {
                            candidates[rng.gen_range(0..candidates.len())]
                        }
                    }
                    _ => preferential(&mut rng, &degree, u),
                };
                if add(&mut adj, &mut degree, u, target) {
                    attached += 1;
                    last_target = Some(target);
                }
            }
        }

        // Growth waves as classes: node i's class is its attachment phase.
        let labels: Vec<usize> = (0..n).map(|i| (i * self.classes) / n).collect();
        let d = feature_dim(config.scale);
        let features = topic_features(n, d, self.classes, &labels, 16, 0.85, &mut rng);
        Graph::new(adj, features, labels, self.classes)
    }
}
