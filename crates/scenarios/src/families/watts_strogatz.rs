//! Watts–Strogatz small-world ring.
//!
//! A ring lattice where every node is connected to its `k` nearest neighbours,
//! with each lattice edge rewired to a uniformly random endpoint with
//! probability `rewire`. The result keeps the lattice's high clustering while
//! the rewired shortcuts collapse the diameter — a narrow, almost-regular
//! degree distribution with long-range edges, the structural opposite of the
//! hub-dominated BA family. Class labels are contiguous arcs of the ring, so
//! the (mostly local) edges are homophilous while every rewired shortcut is a
//! potential cross-class edge.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::family::{stream_seed, topic_features, FamilyConfig, GraphFamily};
use geattack_graph::{Graph, GraphBuilder};

use super::feature_dim;

/// Watts–Strogatz generator. Reference scale: a 500-node ring, 4 neighbours per
/// node, 10% rewiring, 4 arc classes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WattsStrogatz {
    /// Node count at scale 1.0.
    pub nodes: usize,
    /// Lattice degree (each node connects to the `k/2` nearest on both sides).
    pub lattice_k: usize,
    /// Probability of rewiring each lattice edge.
    pub rewire: f64,
    /// Number of contiguous arc classes.
    pub classes: usize,
}

impl Default for WattsStrogatz {
    fn default() -> Self {
        Self {
            nodes: 500,
            lattice_k: 4,
            rewire: 0.1,
            classes: 4,
        }
    }
}

impl GraphFamily for WattsStrogatz {
    fn name(&self) -> &'static str {
        "watts-strogatz"
    }

    fn reference_nodes(&self) -> usize {
        self.nodes
    }

    fn generate(&self, config: &FamilyConfig) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(self.name(), config.seed));
        let n = ((self.nodes as f64 * config.scale).round() as usize).max(60);
        let half_k = (self.lattice_k / 2).max(1);

        let mut builder = GraphBuilder::new(n);
        for u in 0..n {
            for j in 1..=half_k {
                let v = (u + j) % n;
                // Rewire the lattice edge (u, v) away from v with probability
                // `rewire`, keeping the endpoint at u (Watts–Strogatz rule).
                let target = if rng.gen::<f64>() < self.rewire {
                    rng.gen_range(0..n)
                } else {
                    v
                };
                builder.add_edge(u, target);
            }
        }

        // Contiguous arcs of the ring as classes: local lattice edges stay
        // within an arc, rewired shortcuts usually cross arcs.
        let labels: Vec<usize> = (0..n).map(|i| (i * self.classes) / n).collect();
        let d = feature_dim(config.scale);
        let features = topic_features(n, d, self.classes, &labels, 18, 0.85, &mut rng);
        Graph::from_csr(builder.into_csr(), features, labels, self.classes)
    }
}
