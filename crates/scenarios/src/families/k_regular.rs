//! Random `k`-regular expander graphs.
//!
//! The union of `k/2` Hamiltonian cycles over a shuffled node order is (up to
//! rare coincident edges) a `k`-regular graph, and random regular graphs of
//! degree `k ≥ 3` are expanders with high probability: no hubs, no local
//! clustering, diameter `O(log n)`. This is the adversarial *worst case* for
//! degree-based victim bucketing (every victim has the same budget under the
//! paper's `Δ = degree` rule) and a stress test for explainers, whose masks
//! cannot lean on degree or community structure.
//!
//! The first cycle visits nodes in index order, so class labels — contiguous
//! arcs, as in the Watts–Strogatz family — keep a homophilous backbone while
//! the remaining random cycles act as long-range expander edges.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::family::{stream_seed, topic_features, FamilyConfig, GraphFamily};
use geattack_graph::{Graph, GraphBuilder};

use super::feature_dim;

/// `k`-regular expander generator. Reference scale: 500 nodes, degree 4, 4 arc
/// classes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KRegular {
    /// Node count at scale 1.0.
    pub nodes: usize,
    /// Target degree (rounded down to the nearest even number, minimum 2:
    /// the construction superimposes `k/2` Hamiltonian cycles).
    pub k: usize,
    /// Number of contiguous arc classes.
    pub classes: usize,
}

impl Default for KRegular {
    fn default() -> Self {
        Self {
            nodes: 500,
            k: 4,
            classes: 4,
        }
    }
}

impl GraphFamily for KRegular {
    fn name(&self) -> &'static str {
        "k-regular"
    }

    fn reference_nodes(&self) -> usize {
        self.nodes
    }

    fn generate(&self, config: &FamilyConfig) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(self.name(), config.seed));
        let n = ((self.nodes as f64 * config.scale).round() as usize).max(60);
        let cycles = (self.k / 2).max(1);

        let mut builder = GraphBuilder::new(n);
        let add_cycle = |builder: &mut GraphBuilder, order: &[usize]| {
            for i in 0..order.len() {
                builder.add_edge(order[i], order[(i + 1) % order.len()]);
            }
        };

        // Cycle 0: the identity ring, guaranteeing connectivity and giving the
        // arc labels a homophilous backbone. Remaining cycles: random
        // Hamiltonian cycles through Fisher–Yates-shuffled orders. Coincident
        // edges (rare for n ≥ 60) just lower two degrees by one, so the graph
        // is `k`-regular up to a handful of `k-1` nodes.
        let identity: Vec<usize> = (0..n).collect();
        add_cycle(&mut builder, &identity);
        for _ in 1..cycles {
            let mut order = identity.clone();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..i + 1);
                order.swap(i, j);
            }
            add_cycle(&mut builder, &order);
        }

        let labels: Vec<usize> = (0..n).map(|i| (i * self.classes) / n).collect();
        let d = feature_dim(config.scale);
        let features = topic_features(n, d, self.classes, &labels, 18, 0.85, &mut rng);
        Graph::from_csr(builder.into_csr(), features, labels, self.classes)
    }
}
