//! Barabási–Albert base graph with planted "house" motifs (BA-Shapes).
//!
//! The benchmark GNNExplainer itself is evaluated on (Ying et al., 2019): a
//! preferential-attachment base graph whose heavy-tailed degree distribution
//! contains hubs, plus planted 5-node house motifs whose members carry
//! structural role labels. Hubs make gradient attacks cheap while motif nodes
//! give the explainer crisp local structure — the opposite regime from the
//! homophilous citation graphs the paper evaluates on.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::family::{stream_seed, topic_features, FamilyConfig, GraphFamily};
use geattack_graph::{Graph, GraphBuilder};

use super::{feature_dim, DegreeTree};

/// Number of classes: base node plus the three house roles.
const CLASSES: usize = 4;

/// The five house-motif nodes in order: top, two middles, two bottoms.
/// Edges: roof (top-mid, top-mid, mid-mid) and walls (mid-bot, mid-bot, bot-bot).
const HOUSE_EDGES: [(usize, usize); 6] = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4)];
const HOUSE_LABELS: [usize; 5] = [1, 2, 2, 3, 3];

/// BA-Shapes generator. Reference scale (`scale = 1.0`): a 300-node BA base
/// with 80 planted houses (700 nodes total).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaShapes {
    /// Base-graph size at scale 1.0.
    pub base_nodes: usize,
    /// Number of planted house motifs at scale 1.0.
    pub motifs: usize,
    /// Edges each new base node attaches with (the BA `m` parameter).
    pub attach_edges: usize,
}

impl Default for BaShapes {
    fn default() -> Self {
        Self {
            base_nodes: 300,
            motifs: 80,
            attach_edges: 2,
        }
    }
}

impl GraphFamily for BaShapes {
    fn name(&self) -> &'static str {
        "ba-shapes"
    }

    fn reference_nodes(&self) -> usize {
        self.base_nodes + self.motifs * 5
    }

    fn generate(&self, config: &FamilyConfig) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(self.name(), config.seed));
        let n_base = ((self.base_nodes as f64 * config.scale).round() as usize).max(30);
        let motifs = ((self.motifs as f64 * config.scale).round() as usize).max(4);
        let n = n_base + 5 * motifs;

        let mut builder = GraphBuilder::new(n);
        let mut degree = DegreeTree::new(n);
        let add = |builder: &mut GraphBuilder, degree: &mut DegreeTree, u: usize, v: usize| {
            if builder.add_edge(u, v) {
                degree.add(u, 1);
                degree.add(v, 1);
            }
        };

        // Preferential-attachment base: seed clique of m+1 nodes, then each new
        // node attaches to `m` distinct existing nodes sampled proportionally to
        // their current degree (Fenwick roulette over the cumulative degree sum).
        let m = self.attach_edges.max(1).min(n_base - 1);
        for u in 0..=m {
            for v in 0..u {
                add(&mut builder, &mut degree, u, v);
            }
        }
        for u in (m + 1)..n_base {
            let mut chosen: Vec<usize> = Vec::with_capacity(m);
            while chosen.len() < m {
                let total = degree.prefix(u);
                let ticket = rng.gen_range(0..total.max(1));
                let pick = if total == 0 { 0 } else { degree.pick(ticket) };
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
            for v in chosen {
                add(&mut builder, &mut degree, u, v);
            }
        }

        // Plant the houses: five fresh nodes each, wired as a house and attached
        // to a uniformly random base node through the first bottom node.
        let mut labels = vec![0usize; n];
        for k in 0..motifs {
            let offset = n_base + 5 * k;
            for &(a, b) in &HOUSE_EDGES {
                add(&mut builder, &mut degree, offset + a, offset + b);
            }
            for (i, &role) in HOUSE_LABELS.iter().enumerate() {
                labels[offset + i] = role;
            }
            let anchor = rng.gen_range(0..n_base);
            add(&mut builder, &mut degree, offset + 3, anchor);
        }

        let d = feature_dim(config.scale);
        let features = topic_features(n, d, CLASSES, &labels, 16, 0.85, &mut rng);
        Graph::from_csr(builder.into_csr(), features, labels, CLASSES)
    }
}
