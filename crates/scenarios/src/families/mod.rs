//! The synthetic graph families of the scenario subsystem.
//!
//! Each family is a [`geattack_graph::GraphFamily`]: a seeded, deterministic
//! generator with a characteristic topology. Together with the citation
//! adapters from `geattack-graph` they cover six structurally distinct
//! regimes — hub-dominated preferential attachment with planted motifs
//! ([`ba_shapes`]), hub-and-triangle powerlaw-cluster graphs
//! ([`powerlaw_cluster`]), block-community graphs with tunable homophily
//! ([`sbm`]), near-regular small-world rings ([`watts_strogatz`]),
//! hub-free `k`-regular expanders ([`k_regular`]) and sparse bridge-heavy
//! trees with cycle motifs ([`tree_cycles`]).

pub mod ba_shapes;
pub mod k_regular;
pub mod powerlaw_cluster;
pub mod sbm;
pub mod tree_cycles;
pub mod watts_strogatz;

pub use ba_shapes::BaShapes;
pub use k_regular::KRegular;
pub use powerlaw_cluster::PowerlawCluster;
pub use sbm::StochasticBlockModel;
pub use tree_cycles::TreeCycles;
pub use watts_strogatz::WattsStrogatz;

/// Feature dimensionality shared by the synthetic families: enough topic words
/// per class for a GCN to learn from, scaled down with the graph so quick-mode
/// sweeps stay fast.
pub(crate) fn feature_dim(scale: f64) -> usize {
    ((160.0 * scale).round() as usize).max(64)
}

/// Fenwick (binary-indexed) tree over node degrees, for `O(log n)`
/// degree-proportional roulette picks in the preferential-attachment families.
///
/// [`DegreeTree::pick`] returns exactly the node the generators' original
/// linear scan over `degree[..u]` returned — the smallest `v` whose cumulative
/// degree prefix exceeds the ticket — so swapping the scan for the tree leaves
/// every RNG-driven graph byte-identical while dropping generation from
/// `O(n²·m)` to `O(n·m·log n)`.
pub(crate) struct DegreeTree {
    tree: Vec<usize>,
}

impl DegreeTree {
    /// A tree over `n` nodes, all with degree zero.
    pub(crate) fn new(n: usize) -> Self {
        Self { tree: vec![0; n + 1] }
    }

    /// Increments node `v`'s degree by `delta`.
    pub(crate) fn add(&mut self, v: usize, delta: usize) {
        let mut i = v + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of the degrees of nodes `0..k`.
    pub(crate) fn prefix(&self, k: usize) -> usize {
        let mut i = k;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// The smallest `v` with `prefix(v + 1) > ticket` — i.e. the node a linear
    /// roulette scan lands on. Requires `ticket < prefix(n)`.
    pub(crate) fn pick(&self, mut ticket: usize) -> usize {
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut bit = n.next_power_of_two();
        while bit > 0 {
            let next = pos + bit;
            if next <= n && self.tree[next] <= ticket {
                ticket -= self.tree[next];
                pos = next;
            }
            bit >>= 1;
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::DegreeTree;

    #[test]
    fn pick_matches_linear_roulette_scan() {
        let degrees = [0usize, 3, 0, 1, 5, 0, 2];
        let mut tree = DegreeTree::new(degrees.len());
        for (v, &d) in degrees.iter().enumerate() {
            tree.add(v, d);
        }
        let total: usize = degrees.iter().sum();
        assert_eq!(tree.prefix(degrees.len()), total);
        assert_eq!(tree.prefix(4), 4);
        for ticket in 0..total {
            // Reference: the generators' original linear scan.
            let mut remaining = ticket;
            let mut expected = 0;
            for (v, &d) in degrees.iter().enumerate() {
                if remaining < d {
                    expected = v;
                    break;
                }
                remaining -= d;
            }
            assert_eq!(tree.pick(ticket), expected, "ticket {ticket}");
        }
    }
}
