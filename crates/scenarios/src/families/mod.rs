//! The synthetic graph families of the scenario subsystem.
//!
//! Each family is a [`geattack_graph::GraphFamily`]: a seeded, deterministic
//! generator with a characteristic topology. Together with the citation
//! adapters from `geattack-graph` they cover six structurally distinct
//! regimes — hub-dominated preferential attachment with planted motifs
//! ([`ba_shapes`]), hub-and-triangle powerlaw-cluster graphs
//! ([`powerlaw_cluster`]), block-community graphs with tunable homophily
//! ([`sbm`]), near-regular small-world rings ([`watts_strogatz`]),
//! hub-free `k`-regular expanders ([`k_regular`]) and sparse bridge-heavy
//! trees with cycle motifs ([`tree_cycles`]).

pub mod ba_shapes;
pub mod k_regular;
pub mod powerlaw_cluster;
pub mod sbm;
pub mod tree_cycles;
pub mod watts_strogatz;

pub use ba_shapes::BaShapes;
pub use k_regular::KRegular;
pub use powerlaw_cluster::PowerlawCluster;
pub use sbm::StochasticBlockModel;
pub use tree_cycles::TreeCycles;
pub use watts_strogatz::WattsStrogatz;

/// Feature dimensionality shared by the synthetic families: enough topic words
/// per class for a GCN to learn from, scaled down with the graph so quick-mode
/// sweeps stay fast.
pub(crate) fn feature_dim(scale: f64) -> usize {
    ((160.0 * scale).round() as usize).max(64)
}
