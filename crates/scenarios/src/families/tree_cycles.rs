//! Balanced binary tree with attached cycle motifs (Tree-Cycles).
//!
//! The second motif benchmark of the GNNExplainer paper: a balanced binary
//! tree (label 0) with fixed-length cycles (label 1) hanging off uniformly
//! random tree nodes. The tree is sparse and hub-free with many bridge edges;
//! every cycle is a crisp structural explanation. Attacking a cycle node while
//! staying out of its explanation is maximally hard here, which is exactly the
//! stress the scenario sweep wants to put on GEAttack's evasion term.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::family::{stream_seed, topic_features, FamilyConfig, GraphFamily};
use geattack_graph::{Graph, GraphBuilder};

use super::feature_dim;

/// Tree-Cycles generator. Reference scale: a 511-node balanced binary tree with
/// 60 hexagon cycles (871 nodes total).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeCycles {
    /// Tree size at scale 1.0.
    pub tree_nodes: usize,
    /// Number of attached cycles at scale 1.0.
    pub cycles: usize,
    /// Nodes per cycle.
    pub cycle_len: usize,
}

impl Default for TreeCycles {
    fn default() -> Self {
        Self {
            tree_nodes: 511,
            cycles: 60,
            cycle_len: 6,
        }
    }
}

impl GraphFamily for TreeCycles {
    fn name(&self) -> &'static str {
        "tree-cycles"
    }

    fn reference_nodes(&self) -> usize {
        self.tree_nodes + self.cycles * self.cycle_len
    }

    fn generate(&self, config: &FamilyConfig) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(self.name(), config.seed));
        let n_tree = ((self.tree_nodes as f64 * config.scale).round() as usize).max(31);
        let cycles = ((self.cycles as f64 * config.scale).round() as usize).max(3);
        let len = self.cycle_len.max(3);
        let n = n_tree + cycles * len;

        let mut builder = GraphBuilder::new(n);

        // Complete binary tree on nodes 0..n_tree: node i's parent is (i-1)/2.
        for u in 1..n_tree {
            builder.add_edge(u, (u - 1) / 2);
        }

        // Cycles: `len` fresh nodes wired as a ring, anchored to a random tree
        // node through the ring's first node.
        for k in 0..cycles {
            let offset = n_tree + k * len;
            for i in 0..len {
                builder.add_edge(offset + i, offset + (i + 1) % len);
            }
            let anchor = rng.gen_range(0..n_tree);
            builder.add_edge(offset, anchor);
        }

        // Binary structural labels: tree vs. cycle membership.
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= n_tree)).collect();
        let d = feature_dim(config.scale);
        let features = topic_features(n, d, 2, &labels, 14, 0.85, &mut rng);
        Graph::from_csr(builder.into_csr(), features, labels, 2)
    }
}
