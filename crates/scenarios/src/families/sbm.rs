//! Stochastic block model with tunable homophily.
//!
//! Nodes are partitioned into equally-sized blocks; each pair of nodes is an
//! edge independently with probability `p_in` (same block) or `p_out`
//! (different blocks). Both probabilities are derived from a target average
//! degree and a target edge homophily, so the family sweeps cleanly from the
//! citation-like homophilous regime (`homophily = 0.8`) to the heterophilous
//! regime (`homophily = 0.3`) where GCN aggregation — and hence both the attack
//! gradients and the explanation structure — behaves very differently.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_graph::family::{stream_seed, topic_features, FamilyConfig, GraphFamily};
use geattack_graph::Graph;

use super::feature_dim;

/// Stochastic block model generator. Reference scale: 480 nodes in 4 blocks
/// with average degree ~6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StochasticBlockModel {
    /// Node count at scale 1.0.
    pub nodes: usize,
    /// Number of blocks (= classes).
    pub blocks: usize,
    /// Target average degree.
    pub avg_degree: f64,
    /// Target fraction of intra-block edges in `(0, 1)`.
    pub homophily: f64,
    /// Registry name (the registry exposes homophilous and heterophilous
    /// presets as distinct families).
    name: &'static str,
}

impl StochasticBlockModel {
    /// The homophilous preset (`homophily = 0.8`), registered as `sbm`.
    pub fn homophilous() -> Self {
        Self::preset("sbm", 0.8)
    }

    /// The heterophilous preset (`homophily = 0.3`), registered as `sbm-het`.
    pub fn heterophilous() -> Self {
        Self::preset("sbm-het", 0.3)
    }

    /// A preset with a custom registry name and homophily target.
    pub fn preset(name: &'static str, homophily: f64) -> Self {
        assert!(homophily > 0.0 && homophily < 1.0, "homophily must be in (0, 1)");
        Self {
            nodes: 480,
            blocks: 4,
            avg_degree: 6.0,
            homophily,
            name,
        }
    }
}

impl GraphFamily for StochasticBlockModel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn reference_nodes(&self) -> usize {
        self.nodes
    }

    fn generate(&self, config: &FamilyConfig) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(self.name(), config.seed));
        let n = ((self.nodes as f64 * config.scale).round() as usize).max(60);
        let k = self.blocks;
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();

        // Expected intra-block pairs ~ n^2/(2k), inter pairs ~ n^2 (k-1)/(2k);
        // solving for the homophily and average-degree targets gives:
        let p_in = (self.homophily * self.avg_degree * k as f64 / n as f64).min(1.0);
        let p_out = ((1.0 - self.homophily) * self.avg_degree * k as f64 / ((k - 1) as f64 * n as f64)).min(1.0);

        // The Bernoulli draw per pair is the family's RNG contract, so the loop
        // stays O(n²) time — but the edges collect straight into a sparse list.
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let p = if labels[u] == labels[v] { p_in } else { p_out };
                if rng.gen::<f64>() < p {
                    edges.push((u, v));
                }
            }
        }

        let d = feature_dim(config.scale);
        let features = topic_features(n, d, k, &labels, 18, 0.85, &mut rng);
        Graph::from_edges(n, &edges, features, labels, k)
    }
}
