//! Declarative scenario and sweep specifications (JSON).
//!
//! A [`ScenarioSpec`] names one graph: a registry family plus optional scale
//! and seed overrides. A [`SweepSpec`] describes a full experiment grid —
//! `{family x scale x seed x attacker x explainer x budget}` — that the
//! `geattack-sweep` binary expands, executes and aggregates. Attacker and
//! explainer names are kept as strings here so the spec layer stays free of the
//! pipeline crates; the sweep executor resolves (and rejects) them against
//! `geattack-core` before any cell runs.
//!
//! Both types serialize to/from JSON through the workspace's serde shim. The
//! deserializer fills in defaults for omitted grid axes, so the minimal useful
//! sweep spec is just a name, a family list and an attacker list.

use serde::{Deserialize, Error, Serialize, Value};

use geattack_graph::{FamilyConfig, Graph};

use crate::registry;

/// One concrete graph scenario: a family name plus optional scale/seed
/// overrides. `None` means "inherit from the surrounding pipeline config".
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Registry name of the graph family (see [`registry::FAMILY_NAMES`]).
    pub family: String,
    /// Scale override in `(0, 1]`.
    pub scale: Option<f64>,
    /// Seed override.
    pub seed: Option<u64>,
}

impl ScenarioSpec {
    /// A scenario inheriting scale and seed from the pipeline.
    pub fn named(family: impl Into<String>) -> Self {
        Self {
            family: family.into(),
            scale: None,
            seed: None,
        }
    }

    /// Checks the family exists and the overrides are usable.
    pub fn validate(&self) -> Result<(), String> {
        if !registry::is_known(&self.family) {
            return Err(format!(
                "unknown graph family `{}` (known: {})",
                self.family,
                registry::FAMILY_NAMES.join(", ")
            ));
        }
        if let Some(scale) = self.scale {
            if !(scale > 0.0 && scale <= 1.0) {
                return Err(format!("scenario scale {scale} out of (0, 1]"));
            }
        }
        Ok(())
    }

    /// Generates the scenario's graph (largest connected component), using
    /// `default_scale`/`default_seed` where the spec does not override them.
    pub fn load(&self, default_scale: f64, default_seed: u64) -> Result<Graph, String> {
        self.validate()?;
        let family = registry::resolve(&self.family).expect("validated above");
        let config = FamilyConfig::new(self.scale.unwrap_or(default_scale), self.seed.unwrap_or(default_seed));
        Ok(family.load(&config))
    }
}

impl Serialize for ScenarioSpec {
    fn serialize(&self) -> Value {
        let mut fields = vec![("family".to_string(), Value::String(self.family.clone()))];
        if let Some(scale) = self.scale {
            fields.push(("scale".to_string(), Value::Number(scale)));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed".to_string(), Value::Number(seed as f64)));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ScenarioSpec {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        // Accept both the object form and a bare family-name string.
        if let Value::String(family) = value {
            return Ok(Self::named(family.clone()));
        }
        Ok(Self {
            family: String::deserialize(value.get_field("family")?)?,
            scale: optional(value, "scale")?,
            seed: optional(value, "seed")?,
        })
    }
}

/// Per-victim edge budget of one grid axis value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetSpec {
    /// The paper's default: `Δ = max(degree(victim), 1)`.
    Degree,
    /// A fixed number of edge insertions for every victim.
    Fixed(usize),
}

impl BudgetSpec {
    /// Parses `"degree"` or a positive integer string/number of edges.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("degree") {
            return Ok(BudgetSpec::Degree);
        }
        match s.parse::<usize>() {
            Ok(edges) if edges > 0 => Ok(BudgetSpec::Fixed(edges)),
            _ => Err(format!("budget must be `degree` or a positive edge count, got `{s}`")),
        }
    }

    /// Canonical string form (`degree` or the edge count).
    pub fn label(&self) -> String {
        match self {
            BudgetSpec::Degree => "degree".to_string(),
            BudgetSpec::Fixed(edges) => edges.to_string(),
        }
    }
}

impl Serialize for BudgetSpec {
    fn serialize(&self) -> Value {
        Value::String(self.label())
    }
}

impl Deserialize for BudgetSpec {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => BudgetSpec::parse(s).map_err(Error),
            Value::Number(n) if *n >= 1.0 && n.fract() == 0.0 => Ok(BudgetSpec::Fixed(*n as usize)),
            other => Err(Error(format!(
                "budget must be `\"degree\"` or an edge count, found {}",
                other.kind()
            ))),
        }
    }
}

/// A declarative experiment grid over scenarios, attackers, explainers, seeds
/// and budgets.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (used for the report and its JSON artifact).
    pub name: String,
    /// Graph families to sweep (registry names).
    pub families: Vec<String>,
    /// Dataset scales; defaults to `[0.1]`.
    pub scales: Vec<f64>,
    /// Independent seeds; defaults to `[0, 1]`.
    pub seeds: Vec<u64>,
    /// Attacker names (resolved by the executor against `AttackerKind::parse`).
    pub attackers: Vec<String>,
    /// Explainer names; defaults to `["gnnexplainer"]`.
    pub explainers: Vec<String>,
    /// Per-victim budgets; defaults to `[degree]`.
    pub budgets: Vec<BudgetSpec>,
    /// Victims per cell; defaults to 8.
    pub victims: usize,
    /// Use the fast pipeline profile (reduced explainer epochs etc.); defaults
    /// to `true`. `false` selects the paper-scale training profile.
    pub quick: bool,
}

impl SweepSpec {
    /// A minimal spec with the documented defaults for every omitted axis.
    pub fn new(name: impl Into<String>, families: Vec<String>, attackers: Vec<String>) -> Self {
        Self {
            name: name.into(),
            families,
            scales: vec![0.1],
            seeds: vec![0, 1],
            attackers,
            explainers: vec!["gnnexplainer".to_string()],
            budgets: vec![BudgetSpec::Degree],
            victims: 8,
            quick: true,
        }
    }

    /// Parses a sweep spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let spec: SweepSpec = serde_json::from_str(text).map_err(|e| format!("invalid sweep spec: {e}"))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation: every axis non-empty, families known, scales in
    /// range. Attacker/explainer strings are resolved by the executor.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("sweep name must not be empty".to_string());
        }
        for (axis, empty) in [
            ("families", self.families.is_empty()),
            ("scales", self.scales.is_empty()),
            ("seeds", self.seeds.is_empty()),
            ("attackers", self.attackers.is_empty()),
            ("explainers", self.explainers.is_empty()),
            ("budgets", self.budgets.is_empty()),
        ] {
            if empty {
                return Err(format!("sweep axis `{axis}` must not be empty"));
            }
        }
        for family in &self.families {
            ScenarioSpec::named(family.clone()).validate()?;
        }
        for &scale in &self.scales {
            if !(scale > 0.0 && scale <= 1.0) {
                return Err(format!("sweep scale {scale} out of (0, 1]"));
            }
        }
        if self.victims == 0 {
            return Err("sweep needs at least one victim per cell".to_string());
        }
        // Duplicate axis values would silently run duplicate cells and inflate
        // the aggregates, so they are rejected up front. Attacker/explainer
        // *aliases* that resolve to the same kind are caught by the executor,
        // which knows the resolution.
        reject_duplicates("families", self.families.iter().map(|f| registry::canonical(f)))?;
        reject_duplicates("scales", self.scales.iter().map(|s| s.to_bits()))?;
        reject_duplicates("seeds", self.seeds.iter().copied())?;
        reject_duplicates(
            "attackers",
            self.attackers.iter().map(|a| a.trim().to_ascii_lowercase()),
        )?;
        reject_duplicates(
            "explainers",
            self.explainers.iter().map(|e| e.trim().to_ascii_lowercase()),
        )?;
        reject_duplicates("budgets", self.budgets.iter().map(|b| b.label()))?;
        Ok(())
    }

    /// Stable content fingerprint of the spec (32 hex chars).
    ///
    /// Two processes sweeping the same grid derive the same hash, so shard
    /// reports can prove at merge time that they were produced by one spec.
    /// The hash covers the canonical serialized form, which makes it
    /// insensitive to JSON layout but sensitive to every axis value.
    pub fn content_hash(&self) -> String {
        let canonical = serde_json::to_string(self).expect("specs always serialize");
        geattack_cache::hash::hex128(geattack_cache::fnv1a128(canonical.as_bytes()))
    }

    /// Number of (family, scale, seed, explainer) experiment preparations.
    pub fn prepared_cells(&self) -> usize {
        self.families.len() * self.scales.len() * self.seeds.len() * self.explainers.len()
    }

    /// Total number of result cells in the grid.
    pub fn total_cells(&self) -> usize {
        self.prepared_cells() * self.attackers.len() * self.budgets.len()
    }
}

impl Serialize for SweepSpec {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::String(self.name.clone())),
            ("families".to_string(), self.families.serialize()),
            ("scales".to_string(), self.scales.serialize()),
            ("seeds".to_string(), self.seeds.serialize()),
            ("attackers".to_string(), self.attackers.serialize()),
            ("explainers".to_string(), self.explainers.serialize()),
            ("budgets".to_string(), self.budgets.serialize()),
            ("victims".to_string(), self.victims.serialize()),
            ("quick".to_string(), self.quick.serialize()),
        ])
    }
}

impl Deserialize for SweepSpec {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let defaults = SweepSpec::new("", Vec::new(), Vec::new());
        Ok(Self {
            name: String::deserialize(value.get_field("name")?)?,
            families: Vec::deserialize(value.get_field("families")?)?,
            scales: optional(value, "scales")?.unwrap_or(defaults.scales),
            seeds: optional(value, "seeds")?.unwrap_or(defaults.seeds),
            attackers: Vec::deserialize(value.get_field("attackers")?)?,
            explainers: optional(value, "explainers")?.unwrap_or(defaults.explainers),
            budgets: optional(value, "budgets")?.unwrap_or(defaults.budgets),
            victims: optional(value, "victims")?.unwrap_or(defaults.victims),
            quick: optional(value, "quick")?.unwrap_or(defaults.quick),
        })
    }
}

/// Errors when a sweep axis contains the same (canonicalized) value twice.
fn reject_duplicates<T: std::hash::Hash + Eq + std::fmt::Debug>(
    axis: &str,
    values: impl Iterator<Item = T>,
) -> Result<(), String> {
    let mut seen = std::collections::HashSet::new();
    for value in values {
        if let Some(duplicate) = seen.replace(value) {
            return Err(format!("sweep axis `{axis}` lists {duplicate:?} more than once"));
        }
    }
    Ok(())
}

/// Reads an optional object field: absent (or `null`) means `None`.
fn optional<T: Deserialize>(value: &Value, field: &str) -> Result<Option<T>, Error> {
    match value.get_field(field) {
        Ok(Value::Null) | Err(_) => Ok(None),
        Ok(present) => T::deserialize(present).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_json_fills_defaults() {
        let spec =
            SweepSpec::from_json(r#"{ "name": "demo", "families": ["ba-shapes", "cora"], "attackers": ["fga-t"] }"#)
                .unwrap();
        assert_eq!(spec.scales, vec![0.1]);
        assert_eq!(spec.seeds, vec![0, 1]);
        assert_eq!(spec.explainers, vec!["gnnexplainer".to_string()]);
        assert_eq!(spec.budgets, vec![BudgetSpec::Degree]);
        assert_eq!(spec.victims, 8);
        assert!(spec.quick);
        // 2 families x 1 scale x 2 seeds x 1 explainer.
        assert_eq!(spec.prepared_cells(), 4);
        assert_eq!(spec.total_cells(), 4);
    }

    #[test]
    fn explicit_axes_roundtrip_through_json() {
        let mut spec = SweepSpec::new(
            "full",
            vec!["sbm".to_string(), "tree-cycles".to_string()],
            vec!["geattack".to_string(), "nettack".to_string()],
        );
        spec.budgets = vec![BudgetSpec::Degree, BudgetSpec::Fixed(3)];
        spec.victims = 5;
        spec.quick = false;
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back = SweepSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unknown_family_is_rejected() {
        let err =
            SweepSpec::from_json(r#"{ "name": "x", "families": ["petersen"], "attackers": ["fga"] }"#).unwrap_err();
        assert!(err.contains("unknown graph family"), "{err}");
    }

    #[test]
    fn empty_axes_and_bad_scales_are_rejected() {
        let err = SweepSpec::from_json(r#"{ "name": "x", "families": [], "attackers": ["fga"] }"#).unwrap_err();
        assert!(err.contains("families"), "{err}");
        let err =
            SweepSpec::from_json(r#"{ "name": "x", "families": ["sbm"], "attackers": ["fga"], "scales": [1.5] }"#)
                .unwrap_err();
        assert!(err.contains("out of (0, 1]"), "{err}");
    }

    #[test]
    fn duplicate_axis_values_are_rejected() {
        // Case/separator variants of the same family are one value after
        // canonicalization, so they would duplicate every cell of the grid.
        let err =
            SweepSpec::from_json(r#"{ "name": "d", "families": ["sbm", "SBM"], "attackers": ["fga"] }"#).unwrap_err();
        assert!(err.contains("`families`") && err.contains("more than once"), "{err}");
        let err =
            SweepSpec::from_json(r#"{ "name": "d", "families": ["sbm"], "attackers": ["fga"], "seeds": [1, 2, 1] }"#)
                .unwrap_err();
        assert!(err.contains("`seeds`"), "{err}");
        let err =
            SweepSpec::from_json(r#"{ "name": "d", "families": ["sbm"], "attackers": ["fga", "FGA"] }"#).unwrap_err();
        assert!(err.contains("`attackers`"), "{err}");
        let err =
            SweepSpec::from_json(r#"{ "name": "d", "families": ["sbm"], "attackers": ["fga"], "budgets": [2, "2"] }"#)
                .unwrap_err();
        assert!(err.contains("`budgets`"), "{err}");
    }

    #[test]
    fn budgets_accept_strings_and_numbers() {
        let spec = SweepSpec::from_json(
            r#"{ "name": "b", "families": ["sbm"], "attackers": ["fga"], "budgets": ["degree", "2", 4] }"#,
        )
        .unwrap();
        assert_eq!(
            spec.budgets,
            vec![BudgetSpec::Degree, BudgetSpec::Fixed(2), BudgetSpec::Fixed(4)]
        );
        assert!(BudgetSpec::parse("0").is_err());
        assert!(BudgetSpec::parse("many").is_err());
        assert_eq!(BudgetSpec::Fixed(7).label(), "7");
    }

    #[test]
    fn scenario_spec_loads_with_inherited_and_overridden_knobs() {
        let inherited = ScenarioSpec::named("tree-cycles").load(0.1, 3).unwrap();
        let overridden = ScenarioSpec {
            family: "tree-cycles".to_string(),
            scale: Some(0.2),
            seed: Some(3),
        }
        .load(0.1, 99)
        .unwrap();
        assert!(overridden.num_nodes() > inherited.num_nodes());
        assert!(ScenarioSpec::named("nope").load(0.1, 0).is_err());
    }

    #[test]
    fn content_hash_is_stable_and_axis_sensitive() {
        let spec = SweepSpec::new("h", vec!["sbm".to_string()], vec!["fga".to_string()]);
        let hash = spec.content_hash();
        assert_eq!(hash.len(), 32);
        assert_eq!(hash, spec.clone().content_hash(), "hashing is deterministic");
        // Round-tripping through JSON (layout changes, content does not)
        // preserves the hash.
        let reparsed = SweepSpec::from_json(&serde_json::to_string_pretty(&spec).unwrap()).unwrap();
        assert_eq!(reparsed.content_hash(), hash);
        // Any axis change moves the hash.
        let mut other = spec.clone();
        other.seeds.push(7);
        assert_ne!(other.content_hash(), hash);
        let mut other = spec.clone();
        other.victims += 1;
        assert_ne!(other.content_hash(), hash);
        let mut other = spec;
        other.budgets = vec![BudgetSpec::Fixed(2)];
        assert_ne!(other.content_hash(), hash);
    }

    #[test]
    fn scenario_spec_accepts_bare_string_form() {
        let spec: ScenarioSpec = serde_json::from_str(r#""ba-shapes""#).unwrap();
        assert_eq!(spec, ScenarioSpec::named("ba-shapes"));
    }
}
