//! Property tests of the scenario generators: every family must be seed-
//! deterministic, connected after LCC extraction, class-structured enough to
//! train on, and shaped like the topology it claims to model.

use proptest::prelude::*;

use geattack_graph::{FamilyConfig, GraphFamily};
use geattack_scenarios::{registry, StochasticBlockModel};

/// The synthetic families (the citation adapters are covered by the
/// `geattack-graph` unit tests).
const SYNTHETIC: [&str; 7] = [
    "ba-shapes",
    "powerlaw-cluster",
    "sbm",
    "sbm-het",
    "watts-strogatz",
    "k-regular",
    "tree-cycles",
];

fn family(name: &str) -> Box<dyn GraphFamily> {
    registry::resolve(name).unwrap_or_else(|| panic!("{name} must resolve"))
}

fn degree_stats(graph: &geattack_graph::Graph) -> (f64, usize) {
    let n = graph.num_nodes();
    let degrees: Vec<usize> = (0..n).map(|i| graph.degree(i)).collect();
    let avg = degrees.iter().sum::<usize>() as f64 / n as f64;
    let max = degrees.iter().copied().max().unwrap_or(0);
    (avg, max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn generation_is_deterministic_per_seed(seed in 0u64..1000, idx in 0usize..SYNTHETIC.len()) {
        let name = SYNTHETIC[idx];
        let config = FamilyConfig::new(0.1, seed);
        let a = family(name).generate(&config);
        let b = family(name).generate(&config);
        prop_assert!(a.csr() == b.csr(), "{name}: adjacency differs");
        prop_assert!(a.features().approx_eq(b.features(), 0.0), "{name}: features differ");
        prop_assert_eq!(a.labels(), b.labels(), "{name}: labels differ");
    }

    #[test]
    fn different_seeds_give_different_graphs(seed in 0u64..1000, idx in 0usize..SYNTHETIC.len()) {
        let name = SYNTHETIC[idx];
        let a = family(name).generate(&FamilyConfig::new(0.12, seed));
        let b = family(name).generate(&FamilyConfig::new(0.12, seed + 1));
        prop_assert!(
            a.csr() != b.csr() || !a.features().approx_eq(b.features(), 0.0),
            "{}: seeds {} and {} produced identical graphs",
            name, seed, seed + 1
        );
    }

    #[test]
    fn load_returns_a_connected_graph(seed in 0u64..200, idx in 0usize..SYNTHETIC.len()) {
        let name = SYNTHETIC[idx];
        let graph = family(name).load(&FamilyConfig::new(0.1, seed));
        let comps = graph.csr().connected_components();
        prop_assert!(comps.iter().all(|&c| c == comps[0]), "{name}: LCC must be one component");
        prop_assert!(graph.num_nodes() >= 30, "{name}: LCC too small ({} nodes)", graph.num_nodes());
        // Every class must survive preprocessing so stratified splits work.
        for class in 0..graph.num_classes() {
            prop_assert!(
                !graph.nodes_with_label(class).is_empty(),
                "{name}: class {class} vanished in the LCC"
            );
        }
    }

    #[test]
    fn sbm_homophily_is_within_tolerance(seed in 0u64..100) {
        for (name, target) in [("sbm", 0.8), ("sbm-het", 0.3)] {
            let graph = family(name).generate(&FamilyConfig::new(0.5, seed));
            let h = graph.edge_homophily();
            prop_assert!(
                (h - target).abs() < 0.1,
                "{name}: realized homophily {h} too far from target {target}"
            );
        }
    }

    #[test]
    fn degree_distributions_match_the_family_shape(seed in 0u64..50) {
        // BA-Shapes is hub-dominated: the max degree towers over the average.
        let ba = family("ba-shapes").generate(&FamilyConfig::new(0.3, seed));
        let (ba_avg, ba_max) = degree_stats(&ba);
        prop_assert!(
            ba_max as f64 > 3.0 * ba_avg,
            "ba-shapes: expected hubs (max {ba_max} vs avg {ba_avg:.2})"
        );

        // Watts-Strogatz stays near-regular around the lattice degree.
        let ws = family("watts-strogatz").generate(&FamilyConfig::new(0.3, seed));
        let (ws_avg, ws_max) = degree_stats(&ws);
        prop_assert!(
            (ws_max as f64) < 2.5 * ws_avg,
            "watts-strogatz: expected near-regular degrees (max {ws_max} vs avg {ws_avg:.2})"
        );

        // Tree-Cycles is sparse: parent + two children + a few cycle anchors.
        let tc = family("tree-cycles").generate(&FamilyConfig::new(0.3, seed));
        let (tc_avg, _) = degree_stats(&tc);
        prop_assert!(
            tc_avg < 3.5,
            "tree-cycles: average degree {tc_avg:.2} too high for a tree with motifs"
        );

        // Powerlaw-cluster keeps BA's hubs while the triad steps add the
        // triangles preferential attachment alone lacks: ablating the triad
        // probability to zero must collapse the triangle count.
        let pc = family("powerlaw-cluster").generate(&FamilyConfig::new(0.3, seed));
        let (pc_avg, pc_max) = degree_stats(&pc);
        prop_assert!(
            pc_max as f64 > 3.0 * pc_avg,
            "powerlaw-cluster: expected hubs (max {pc_max} vs avg {pc_avg:.2})"
        );
        let no_triads = geattack_scenarios::PowerlawCluster {
            triad: 0.0,
            ..Default::default()
        }
        .generate(&FamilyConfig::new(0.3, seed));
        // Preferential attachment alone already closes some triangles through
        // the hubs, so the bar is a robust 1.5x, not a fixed count.
        prop_assert!(
            2 * triangle_count(&pc) > 3 * triangle_count(&no_triads).max(1),
            "triad formation must drive the clustering ({} vs {} triangles without triads)",
            triangle_count(&pc),
            triangle_count(&no_triads)
        );

        // k-regular is the hub-free extreme: every degree is k (= 4), up to
        // the rare coincident edge of the superimposed random cycles.
        let kr = family("k-regular").generate(&FamilyConfig::new(0.3, seed));
        let n = kr.num_nodes();
        let degrees: Vec<usize> = (0..n).map(|i| kr.degree(i)).collect();
        prop_assert!(degrees.iter().all(|&d| d <= 4), "k-regular: degree above k");
        let exactly_k = degrees.iter().filter(|&&d| d == 4).count();
        prop_assert!(
            exactly_k * 10 >= n * 9,
            "k-regular: only {exactly_k}/{n} nodes reached degree k"
        );
    }
}

/// Number of triangles (each counted once) in the graph: for every edge
/// `(i, j)` with `i < j`, count the common neighbors above `j` by merging the
/// two ascending CSR neighbor lists.
fn triangle_count(graph: &geattack_graph::Graph) -> usize {
    let mut count = 0;
    for (i, j) in graph.edges() {
        let (mut a, mut b) = (graph.neighbors(i), graph.neighbors(j));
        while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => a = &a[1..],
                std::cmp::Ordering::Greater => b = &b[1..],
                std::cmp::Ordering::Equal => {
                    if x > j {
                        count += 1;
                    }
                    a = &a[1..];
                    b = &b[1..];
                }
            }
        }
    }
    count
}

#[test]
fn scale_grows_every_family() {
    for name in SYNTHETIC {
        let small = family(name).generate(&FamilyConfig::new(0.1, 0));
        let large = family(name).generate(&FamilyConfig::new(0.6, 0));
        assert!(
            large.num_nodes() > small.num_nodes(),
            "{name}: scale 0.6 ({} nodes) not larger than scale 0.1 ({} nodes)",
            large.num_nodes(),
            small.num_nodes()
        );
    }
}

#[test]
fn tunable_homophily_is_exposed_programmatically() {
    let custom = StochasticBlockModel::preset("sbm-custom", 0.55);
    let graph = custom.generate(&FamilyConfig::new(0.5, 7));
    let h = graph.edge_homophily();
    assert!((h - 0.55).abs() < 0.1, "custom homophily preset realized {h}");
}
