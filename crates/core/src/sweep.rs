//! Sweep grids, shard bookkeeping and report assembly — the declarative side
//! of the experiment engine.
//!
//! A [`SweepSpec`] describes a grid of `{family x scale x seed x attacker x
//! explainer x budget}` cells. This module owns everything about that grid
//! that does *not* execute experiments: the deterministic expansion into
//! [`PlannedCell`]s, the [`Shard`] arithmetic partitioning it, the
//! [`SweepCell`]/[`SweepReport`] result types, strict [`merge_shards`]
//! reassembly and the `--dry-run` plan renderer. Execution lives in
//! [`crate::engine`]: [`crate::engine::Engine::submit`] turns a spec into a
//! streaming session whose final [`SweepRun`] carries a [`ShardReport`] of
//! exactly these cells.
//!
//! **Sharding.** Every run is a [`Shard`] of the grid — the default is the
//! trivial shard `0/1`. Prepared cell `p` (in deterministic grid order)
//! belongs to shard `p % N`, so `--shard 0/2` and `--shard 1/2` partition the
//! grid with no coordination. Each shard emits a [`ShardReport`] carrying the
//! spec and its content hash; [`merge_shards`] validates a complete,
//! non-overlapping, same-spec set of shard reports and reassembles the exact
//! [`SweepReport`] an unsharded run produces — byte-identical, because the
//! unsharded path itself goes through the same merge of its single shard.

use serde::{Deserialize, Serialize};

use geattack_scenarios::SweepSpec;

use crate::error::{GeError, Result};
use crate::evaluation::MeanStd;
use crate::registry::{builtin_attackers, builtin_explainers, AttackerRegistry, ExplainerRegistry};
use crate::report::to_json;

/// One fully-specified grid cell's results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// Graph family (registry name).
    pub family: String,
    /// Dataset scale of this cell.
    pub scale: f64,
    /// Seed of this cell.
    pub seed: u64,
    /// Inspector explainer display name.
    pub explainer: String,
    /// Attacker display name.
    pub attacker: String,
    /// Budget label (`degree` or the fixed edge count).
    pub budget: String,
    /// Node count of the generated graph (after LCC).
    pub nodes: usize,
    /// Undirected edge count of the generated graph.
    pub edges: usize,
    /// Victims actually attacked in this cell.
    pub victims: usize,
    /// Attack success rate toward any wrong label.
    pub asr: f64,
    /// Attack success rate toward the assigned target label.
    pub asr_t: f64,
    /// Mean Precision@K of adversarial-edge detection.
    pub precision: f64,
    /// Mean Recall@K.
    pub recall: f64,
    /// Mean F1@K.
    pub f1: f64,
    /// Mean NDCG@K.
    pub ndcg: f64,
}

/// Seed-aggregated results of one (family, scale, explainer, attacker, budget)
/// grid point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepAggregate {
    /// Graph family (registry name).
    pub family: String,
    /// Dataset scale.
    pub scale: f64,
    /// Inspector explainer display name.
    pub explainer: String,
    /// Attacker display name.
    pub attacker: String,
    /// Budget label.
    pub budget: String,
    /// Number of seeds aggregated (only cells with at least one victim count).
    pub seeds: usize,
    /// Total victims across seeds.
    pub victims: usize,
    /// ASR over seeds.
    pub asr: MeanStd,
    /// ASR-T over seeds.
    pub asr_t: MeanStd,
    /// Precision@K over seeds.
    pub precision: MeanStd,
    /// Recall@K over seeds.
    pub recall: MeanStd,
    /// F1@K over seeds.
    pub f1: MeanStd,
    /// NDCG@K over seeds.
    pub ndcg: MeanStd,
}

/// The aggregated artifact of one sweep run: the spec that produced it, every
/// raw cell in grid order, and the per-grid-point aggregates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// Sweep name (from the spec).
    pub sweep: String,
    /// The spec that was executed (round-trips through JSON).
    pub spec: SweepSpec,
    /// Raw per-seed cells, in deterministic grid order.
    pub cells: Vec<SweepCell>,
    /// Seed-aggregated grid points, in deterministic grid order.
    pub aggregates: Vec<SweepAggregate>,
}

impl SweepReport {
    /// Serializes the report as deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        to_json(self)
    }

    /// Renders a compact markdown summary of the aggregates.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## Sweep `{}`\n\n", self.sweep);
        out.push_str(
            "| Family | Scale | Explainer | Attacker | Budget | Victims | ASR-T (%) | F1@K (%) | NDCG@K (%) |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for a in &self.aggregates {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {:.2}±{:.2} | {:.2}±{:.2} | {:.2}±{:.2} |\n",
                a.family,
                a.scale,
                a.explainer,
                a.attacker,
                a.budget,
                a.victims,
                a.asr_t.mean * 100.0,
                a.asr_t.std * 100.0,
                a.f1.mean * 100.0,
                a.f1.std * 100.0,
                a.ndcg.mean * 100.0,
                a.ndcg.std * 100.0,
            ));
        }
        out
    }
}

/// One slice of a sharded sweep: shard `index` of `count` runs the prepared
/// cells whose deterministic grid position `p` satisfies `p % count == index`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// The trivial shard covering the whole grid.
    pub const FULL: Shard = Shard { index: 0, count: 1 };

    /// Parses the `I/N` form of `--shard` (zero-based: `0/2` and `1/2` are
    /// the two halves of a two-way split).
    pub fn parse(s: &str) -> Result<Self> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| GeError::Shard(format!("shard must look like I/N (zero-based), got `{s}`")))?;
        let parse = |part: &str, what: &str| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| GeError::Shard(format!("shard {what} must be an integer, got `{part}`")))
        };
        let shard = Shard {
            index: parse(index, "index")?,
            count: parse(count, "count")?,
        };
        shard.validate()?;
        Ok(shard)
    }

    /// Checks the index addresses one of `count` shards.
    pub fn validate(&self) -> Result<()> {
        if self.count == 0 {
            return Err(GeError::Shard("shard count must be at least 1".to_string()));
        }
        if self.index >= self.count {
            return Err(GeError::Shard(format!(
                "shard index {} out of range for {} shards (indices are zero-based)",
                self.index, self.count
            )));
        }
        Ok(())
    }

    /// Whether this shard runs the prepared cell at grid position `p`.
    pub fn owns(&self, p: usize) -> bool {
        p % self.count == self.index
    }

    /// The complete `count`-way split of the grid, in index order — the
    /// coordinator's shard plan. Rejects a zero-way split.
    pub fn split(count: usize) -> Result<Vec<Shard>> {
        if count == 0 {
            return Err(GeError::Shard("shard count must be at least 1".to_string()));
        }
        Ok((0..count).map(|index| Shard { index, count }).collect())
    }

    /// How many of the first `cells` grid positions this shard owns (its
    /// prepared-cell workload, for progress accounting).
    pub fn owned_count(&self, cells: usize) -> usize {
        // Positions owned: index, index + count, index + 2·count, … < cells.
        if self.index >= cells {
            0
        } else {
            (cells - self.index - 1) / self.count + 1
        }
    }

    /// Display form (`0/2`).
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }
}

/// The raw output of one shard's execution: everything [`merge_shards`] needs
/// to validate and reassemble the full report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardReport {
    /// Sweep name (from the spec).
    pub sweep: String,
    /// Content hash of the spec (shards of one sweep must agree).
    pub spec_hash: String,
    /// Zero-based index of this shard.
    pub shard_index: usize,
    /// Total number of shards in the split.
    pub shard_count: usize,
    /// The spec the shard executed.
    pub spec: SweepSpec,
    /// This shard's result cells, in deterministic grid order.
    pub cells: Vec<SweepCell>,
}

impl ShardReport {
    /// Serializes the shard report as deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        to_json(self)
    }

    /// Parses a shard report from JSON text.
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| GeError::Shard(format!("invalid shard report: {e}")))
    }
}

/// One finished sweep execution: the shard report plus run-level metadata
/// (cache counters, prepared-cell count) for the `.meta.json` sidecar.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// The cells this run produced, as a shard report (`0/1` when unsharded).
    pub shard: ShardReport,
    /// Cache counters, when a cache directory was in use.
    pub cache: Option<geattack_cache::CacheCounters>,
    /// Number of experiments this run prepared (== cache hits + misses when
    /// caching).
    pub prepared_cells: usize,
    /// Aggregated session timing: per-phase totals and the per-cell latency
    /// distribution.
    pub telemetry: crate::telemetry::SweepTelemetry,
}

impl SweepRun {
    /// Renders the run's metadata sidecar (spec hash, shard, prepared-cell
    /// count, cache counters, aggregated timing) as pretty JSON. This lives
    /// *next to* the report instead of inside it so cold and warm runs stay
    /// byte-identical on the report while still surfacing their cache and
    /// timing behavior.
    pub fn meta_json(&self) -> String {
        use serde::Value;
        let cache = match &self.cache {
            None => Value::Null,
            Some(c) => Value::Object(vec![
                ("hits".to_string(), Value::Number(c.hits as f64)),
                ("misses".to_string(), Value::Number(c.misses as f64)),
                ("evictions".to_string(), Value::Number(c.evictions as f64)),
            ]),
        };
        let shard = if self.shard.shard_count == 1 {
            Value::Null
        } else {
            Value::String(format!("{}/{}", self.shard.shard_index, self.shard.shard_count))
        };
        // Round timing to microsecond granularity so the sidecar stays tidy;
        // the values are nondeterministic either way.
        let ms = |v: f64| Value::Number((v * 1e3).round() / 1e3);
        let t = &self.telemetry;
        let telemetry = Value::Object(vec![
            ("planned_cells".to_string(), Value::Number(t.planned_cells as f64)),
            ("finished_cells".to_string(), Value::Number(t.finished_cells as f64)),
            ("failed_cells".to_string(), Value::Number(t.failed_cells as f64)),
            (
                "phase_totals_ms".to_string(),
                Value::Object(vec![
                    ("prepare".to_string(), ms(t.phase_totals.prepare_ms)),
                    ("attack".to_string(), ms(t.phase_totals.attack_ms)),
                    ("explain".to_string(), ms(t.phase_totals.explain_ms)),
                    ("detect".to_string(), ms(t.phase_totals.detect_ms)),
                    ("total".to_string(), ms(t.phase_totals.total_ms)),
                ]),
            ),
            (
                "cell_latency_ms".to_string(),
                Value::Object(vec![
                    ("count".to_string(), Value::Number(t.cell_latency.count as f64)),
                    ("p50".to_string(), ms(t.cell_latency.p50)),
                    ("p95".to_string(), ms(t.cell_latency.p95)),
                    ("p99".to_string(), ms(t.cell_latency.p99)),
                    ("max".to_string(), ms(t.cell_latency.max)),
                ]),
            ),
        ]);
        let meta = Value::Object(vec![
            ("sweep".to_string(), Value::String(self.shard.sweep.clone())),
            ("spec_hash".to_string(), Value::String(self.shard.spec_hash.clone())),
            ("shard".to_string(), shard),
            ("prepared_cells".to_string(), Value::Number(self.prepared_cells as f64)),
            ("result_cells".to_string(), Value::Number(self.shard.cells.len() as f64)),
            ("cache".to_string(), cache),
            ("telemetry".to_string(), telemetry),
        ]);
        serde_json::to_string_pretty(&meta).expect("metadata always serializes")
    }
}

/// One (family, scale, seed, explainer) preparation unit of the grid, at its
/// deterministic grid position. This is both the scheduler's work unit and
/// the `Planned` payload of the engine's event stream.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedCell {
    /// Deterministic grid position (shard assignment is `position % N`).
    pub position: usize,
    /// Graph family (canonical registry name).
    pub family: String,
    /// Dataset scale of this cell.
    pub scale: f64,
    /// Seed of this cell.
    pub seed: u64,
    /// Inspector explainer display name.
    pub explainer: String,
}

/// The spec's attacker/explainer axes resolved against a registry pair: the
/// plugins themselves plus their display names, both in axis order.
pub(crate) struct ResolvedAxes {
    pub attackers: Vec<String>,
    pub explainers: Vec<String>,
    pub attacker_plugins: Vec<std::sync::Arc<dyn crate::registry::AttackerPlugin>>,
    pub explainer_plugins: Vec<std::sync::Arc<dyn crate::registry::ExplainerPlugin>>,
}

/// Resolves the spec's attacker/explainer name axes against a registry pair
/// (one lookup per name), rejecting unknown names and alias duplicates.
pub(crate) fn resolve_axes(
    spec: &SweepSpec,
    attackers: &AttackerRegistry,
    explainers: &ExplainerRegistry,
) -> Result<ResolvedAxes> {
    let attacker_plugins: Vec<_> = spec
        .attackers
        .iter()
        .map(|name| attackers.resolve(name))
        .collect::<Result<_>>()?;
    let explainer_plugins: Vec<_> = spec
        .explainers
        .iter()
        .map(|name| explainers.resolve(name))
        .collect::<Result<_>>()?;
    let attacker_names: Vec<String> = attacker_plugins.iter().map(|p| p.name().to_string()).collect();
    let explainer_names: Vec<String> = explainer_plugins.iter().map(|p| p.name().to_string()).collect();
    // Spec validation rejects literal duplicates, but aliases ("fga-t" and
    // "fgat") only collide after resolution — duplicate kinds would run (and
    // aggregate) the same cells twice.
    for (axis, duplicated) in [
        ("attackers", has_duplicates(&attacker_names)),
        ("explainers", has_duplicates(&explainer_names)),
    ] {
        if duplicated {
            return Err(GeError::InvalidSpec(format!(
                "sweep axis `{axis}` lists the same {axis} under two aliases"
            )));
        }
    }
    Ok(ResolvedAxes {
        attackers: attacker_names,
        explainers: explainer_names,
        attacker_plugins,
        explainer_plugins,
    })
}

/// Expands the preparation grid in deterministic order: family, scale, seed,
/// explainer (innermost). Shard assignment and merge reassembly both index
/// into this order, so it must never change silently.
pub(crate) fn expand_prep_cells(spec: &SweepSpec, explainers: &[String]) -> Vec<PlannedCell> {
    let mut prep_cells = Vec::with_capacity(spec.prepared_cells());
    for family in &spec.families {
        for &scale in &spec.scales {
            for &seed in &spec.seeds {
                for explainer in explainers {
                    prep_cells.push(PlannedCell {
                        position: prep_cells.len(),
                        family: geattack_scenarios::canonical(family),
                        scale,
                        seed,
                        explainer: explainer.clone(),
                    });
                }
            }
        }
    }
    prep_cells
}

/// Combines a complete set of shard reports into the full [`SweepReport`],
/// resolving attacker/explainer names against the builtin registries. An
/// engine with custom registrations merges through
/// [`crate::engine::Engine::merge`] instead.
pub fn merge_shards(shards: &[ShardReport]) -> Result<SweepReport> {
    merge_shards_with(shards, builtin_attackers(), builtin_explainers())
}

/// [`merge_shards`] against an explicit registry pair.
///
/// Validation is strict, because a silently-wrong merge poisons every
/// downstream aggregate: the shards must share one sweep (same spec content
/// hash, which each embedded spec is re-checked against), agree on the shard
/// count, neither overlap nor leave an index missing, and carry exactly the
/// cells their grid slice predicts. Cells are reassembled in deterministic
/// grid order and re-aggregated, so merging the single `0/1` shard of an
/// unsharded run reproduces that run's report byte-for-byte — the unsharded
/// path itself goes through this function.
pub(crate) fn merge_shards_with(
    shards: &[ShardReport],
    attackers: &AttackerRegistry,
    explainers: &ExplainerRegistry,
) -> Result<SweepReport> {
    let first = shards
        .first()
        .ok_or_else(|| GeError::Shard("cannot merge zero shard reports".to_string()))?;
    let count = first.shard_count;
    for shard in shards {
        if shard.spec_hash != shard.spec.content_hash() {
            return Err(GeError::Shard(format!(
                "shard {}/{} embeds a spec that does not match its spec hash (corrupt or tampered report)",
                shard.shard_index, shard.shard_count
            )));
        }
        if shard.spec_hash != first.spec_hash || shard.sweep != first.sweep {
            return Err(GeError::Shard(format!(
                "shard {}/{} belongs to a different sweep (spec hash {} != {})",
                shard.shard_index, shard.shard_count, shard.spec_hash, first.spec_hash
            )));
        }
        if shard.shard_count != count {
            return Err(GeError::Shard(format!(
                "inconsistent shard counts: {} and {}",
                shard.shard_count, count
            )));
        }
        if shard.shard_index >= count {
            return Err(GeError::Shard(format!(
                "shard index {} out of range for {count} shards",
                shard.shard_index
            )));
        }
    }
    // Completeness needs one report per index, so a declared count beyond the
    // given reports is already a missing-shard error — checked *before* the
    // count-sized allocation so a corrupt report claiming 10^18 shards fails
    // cleanly instead of aborting on OOM.
    if count > shards.len() {
        return Err(GeError::Shard(format!(
            "missing shard reports: {count} shards declared, got {}",
            shards.len()
        )));
    }
    let mut by_index: Vec<Option<&ShardReport>> = vec![None; count];
    for shard in shards {
        if by_index[shard.shard_index].is_some() {
            return Err(GeError::Shard(format!(
                "overlapping shards: shard {}/{count} appears more than once",
                shard.shard_index
            )));
        }
        by_index[shard.shard_index] = Some(shard);
    }
    if let Some(missing) = by_index.iter().position(|s| s.is_none()) {
        return Err(GeError::Shard(format!("missing shard {missing}/{count}")));
    }

    let spec = &first.spec;
    spec.validate().map_err(GeError::InvalidSpec)?;
    let axes = resolve_axes(spec, attackers, explainers)?;
    let prep_cells = expand_prep_cells(spec, &axes.explainers);
    let block = spec.attackers.len() * spec.budgets.len();

    // Each shard must carry exactly the cells its slice of the prep grid
    // predicts: one block of (attacker x budget) cells per owned prep cell.
    for (index, shard) in by_index.iter().enumerate() {
        let shard = shard.expect("completeness checked above");
        let owned = prep_cells.iter().filter(|cell| cell.position % count == index).count();
        if shard.cells.len() != owned * block {
            return Err(GeError::Shard(format!(
                "shard {index}/{count} carries {} cells, expected {} ({} prepared cells x {block})",
                shard.cells.len(),
                owned * block,
                owned
            )));
        }
    }

    // Reassemble in grid order: prep cell p's block comes from shard p % N.
    let mut cursors = vec![0usize; count];
    let mut cells = Vec::with_capacity(prep_cells.len() * block);
    for prep in &prep_cells {
        let p = prep.position;
        let shard = by_index[p % count].expect("completeness checked above");
        let start = cursors[p % count];
        cursors[p % count] += block;
        for cell in &shard.cells[start..start + block] {
            let matches = cell.family == prep.family
                && cell.scale.to_bits() == prep.scale.to_bits()
                && cell.seed == prep.seed
                && cell.explainer == prep.explainer;
            if !matches {
                return Err(GeError::Shard(format!(
                    "shard {}/{count} cell mismatch at grid position {p}: expected ({}, scale {}, seed {}, {}), found ({}, scale {}, seed {}, {})",
                    p % count,
                    prep.family,
                    prep.scale,
                    prep.seed,
                    prep.explainer,
                    cell.family,
                    cell.scale,
                    cell.seed,
                    cell.explainer,
                )));
            }
            cells.push(cell.clone());
        }
    }

    let aggregates = aggregate_cells(spec, &axes.explainers, &axes.attackers, &cells);
    Ok(SweepReport {
        sweep: spec.name.clone(),
        spec: spec.clone(),
        cells,
        aggregates,
    })
}

/// Renders the enumerated cell plan (`--dry-run`): one line per prepared cell
/// with its shard assignment, without running anything. Resolution goes
/// through the given registries (the engine passes its own).
pub(crate) fn plan_lines_with(
    spec: &SweepSpec,
    shard: Option<&Shard>,
    attackers: &AttackerRegistry,
    explainers: &ExplainerRegistry,
) -> Result<Vec<String>> {
    spec.validate().map_err(GeError::InvalidSpec)?;
    let axes = resolve_axes(spec, attackers, explainers)?;
    if let Some(shard) = shard {
        shard.validate()?;
    }
    let prep_cells = expand_prep_cells(spec, &axes.explainers);
    let block = axes.attackers.len() * spec.budgets.len();
    let mut lines = vec![format!(
        "sweep `{}`: {} prepared cells x {} (attacker x budget) = {} result cells",
        spec.name,
        prep_cells.len(),
        block,
        prep_cells.len() * block
    )];
    for cell in &prep_cells {
        let p = cell.position;
        let mut line = format!(
            "[{p:>3}] {} scale={} seed={} {}",
            cell.family, cell.scale, cell.seed, cell.explainer
        );
        if let Some(shard) = shard {
            let owner = p % shard.count;
            line.push_str(&format!(
                "  -> shard {owner}/{} ({})",
                shard.count,
                if shard.owns(p) { "run" } else { "skip" }
            ));
        }
        lines.push(line);
    }
    if let Some(shard) = shard {
        let owned = prep_cells.iter().filter(|c| shard.owns(c.position)).count();
        lines.push(format!(
            "shard {} runs {owned} of {} prepared cells ({} result cells)",
            shard.label(),
            prep_cells.len(),
            owned * block
        ));
    }
    Ok(lines)
}

/// Groups the raw cells over seeds, in deterministic grid order.
pub(crate) fn aggregate_cells(
    spec: &SweepSpec,
    explainers: &[String],
    attackers: &[String],
    cells: &[SweepCell],
) -> Vec<SweepAggregate> {
    let mut aggregates = Vec::new();
    for family in &spec.families {
        let family = geattack_scenarios::canonical(family);
        for &scale in &spec.scales {
            for explainer in explainers {
                for attacker in attackers {
                    for &budget in &spec.budgets {
                        // Cells whose victim selection came up empty carry
                        // artificial all-zero scores; they stay in the raw
                        // cell list (self-describing, victims = 0) but would
                        // corrupt the mean/std here, so — like the table
                        // runner — they do not contribute to aggregates.
                        let group: Vec<&SweepCell> = cells
                            .iter()
                            .filter(|c| {
                                c.victims > 0
                                    && c.family == family
                                    && c.scale == scale
                                    && &c.explainer == explainer
                                    && &c.attacker == attacker
                                    && c.budget == budget.label()
                            })
                            .collect();
                        if group.is_empty() {
                            continue;
                        }
                        let stat =
                            |f: fn(&SweepCell) -> f64| MeanStd::of(&group.iter().map(|c| f(c)).collect::<Vec<_>>());
                        aggregates.push(SweepAggregate {
                            family: family.clone(),
                            scale,
                            explainer: explainer.clone(),
                            attacker: attacker.clone(),
                            budget: budget.label(),
                            seeds: group.len(),
                            victims: group.iter().map(|c| c.victims).sum(),
                            asr: stat(|c| c.asr),
                            asr_t: stat(|c| c.asr_t),
                            precision: stat(|c| c.precision),
                            recall: stat(|c| c.recall),
                            f1: stat(|c| c.f1),
                            ndcg: stat(|c| c.ndcg),
                        });
                    }
                }
            }
        }
    }
    aggregates
}

/// Estimated preparation cost of one cell: `(reference_nodes·scale)² · epochs`.
/// GCN training is the dominant cost and each of its epochs was `O(n²·f)` dense
/// (now `O(nnz·f)` sparse, which still grows superlinearly in `n` through nnz
/// and the `n×f` dense blocks), so `n²` keeps the *relative* order right — all
/// this estimate is used for.
pub fn estimated_cost(cell: &PlannedCell) -> f64 {
    let reference = geattack_scenarios::resolve(&cell.family)
        .map(|family| family.reference_nodes())
        .unwrap_or(500);
    let n = (reference as f64 * cell.scale).max(1.0);
    n * n * geattack_gnn::TrainConfig::default().epochs as f64
}

/// Execution order of the owned prep cells: estimated cost descending, ties in
/// grid order (so equal-cost runs keep a stable, deterministic schedule).
pub(crate) fn execution_order(cells: &[PlannedCell]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| {
        estimated_cost(&cells[b])
            .partial_cmp(&estimated_cost(&cells[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Whether `values` contains the same resolved kind twice.
fn has_duplicates<T: PartialEq>(values: &[T]) -> bool {
    values.iter().enumerate().any(|(i, v)| values[..i].contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::pipeline::ExplainerKind;
    use geattack_cache::CacheCounters;
    use geattack_scenarios::BudgetSpec;

    pub(crate) fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("unit", vec!["tree-cycles".to_string()], vec!["rna".to_string()]);
        spec.scales = vec![0.07];
        spec.seeds = vec![0];
        spec.victims = 3;
        spec
    }

    /// A two-prep-cell spec (2 seeds) whose cells are cheap to fabricate.
    fn two_seed_spec() -> SweepSpec {
        let mut spec = tiny_spec();
        spec.seeds = vec![0, 1];
        spec
    }

    fn fabricated_cell(seed: u64, victims: usize, asr: f64) -> SweepCell {
        SweepCell {
            family: "tree-cycles".to_string(),
            scale: 0.07,
            seed,
            explainer: "GNNExplainer".to_string(),
            attacker: "RNA".to_string(),
            budget: "degree".to_string(),
            nodes: 50,
            edges: 60,
            victims,
            asr,
            asr_t: asr,
            precision: 0.1,
            recall: 0.1,
            f1: 0.1,
            ndcg: 0.1,
        }
    }

    /// A consistent shard report over `two_seed_spec` holding the given cells.
    fn fabricated_shard(index: usize, count: usize, cells: Vec<SweepCell>) -> ShardReport {
        let spec = two_seed_spec();
        ShardReport {
            sweep: spec.name.clone(),
            spec_hash: spec.content_hash(),
            shard_index: index,
            shard_count: count,
            spec,
            cells,
        }
    }

    fn run_sweep(spec: &SweepSpec, serial: bool) -> Result<SweepReport> {
        Engine::new().serial(serial).run_report(spec)
    }

    #[test]
    fn shard_split_enumerates_a_complete_partition() {
        let shards = Shard::split(3).expect("3-way split");
        assert_eq!(shards.len(), 3);
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!((shard.index, shard.count), (i, 3));
            shard.validate().expect("split shards validate");
        }
        // Every grid position is owned by exactly one shard of the split.
        for p in 0..10 {
            assert_eq!(shards.iter().filter(|s| s.owns(p)).count(), 1);
        }
        assert!(Shard::split(0).is_err(), "zero-way split must be rejected");
        assert_eq!(Shard::split(1).expect("trivial split"), vec![Shard::FULL]);
    }

    #[test]
    fn shard_owned_count_matches_brute_force_ownership() {
        for count in 1..5 {
            for index in 0..count {
                let shard = Shard { index, count };
                for cells in 0..12 {
                    let brute = (0..cells).filter(|&p| shard.owns(p)).count();
                    assert_eq!(
                        shard.owned_count(cells),
                        brute,
                        "shard {}/{} over {} cells",
                        index,
                        count,
                        cells
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_attacker_and_explainer_are_rejected_before_running() {
        let mut spec = tiny_spec();
        spec.attackers = vec!["metattack".to_string()];
        let err = run_sweep(&spec, true).unwrap_err().to_string();
        assert!(err.contains("unknown attacker"), "{err}");
        let mut spec = tiny_spec();
        spec.explainers = vec!["shap".to_string()];
        let err = run_sweep(&spec, true).unwrap_err().to_string();
        assert!(err.contains("unknown explainer"), "{err}");
    }

    #[test]
    fn zero_victim_cells_are_excluded_from_aggregates() {
        let spec = two_seed_spec();
        // Seed 1 found no victims; its all-zero scores must not drag the mean.
        let cells = vec![fabricated_cell(0, 3, 1.0), fabricated_cell(1, 0, 0.0)];
        let aggregates = aggregate_cells(&spec, &["GNNExplainer".to_string()], &["RNA".to_string()], &cells);
        assert_eq!(aggregates.len(), 1);
        assert_eq!(aggregates[0].seeds, 1, "only the seed with victims counts");
        assert_eq!(aggregates[0].victims, 3);
        assert!((aggregates[0].asr.mean - 1.0).abs() < 1e-12);
        assert_eq!(aggregates[0].asr.std, 0.0);
    }

    #[test]
    fn alias_duplicates_are_rejected_after_resolution() {
        // "fga-t" and "fgat" pass spec validation (different strings) but
        // resolve to the same attacker kind.
        let mut spec = tiny_spec();
        spec.attackers = vec!["fga-t".to_string(), "fgat".to_string()];
        let err = run_sweep(&spec, true).unwrap_err().to_string();
        assert!(err.contains("two aliases"), "{err}");
        let mut spec = tiny_spec();
        spec.explainers = vec!["gnnexplainer".to_string(), "gnn".to_string()];
        let err = run_sweep(&spec, true).unwrap_err().to_string();
        assert!(err.contains("two aliases"), "{err}");
    }

    #[test]
    fn tiny_sweep_produces_grid_ordered_cells_and_aggregates() {
        let mut spec = tiny_spec();
        spec.budgets = vec![BudgetSpec::Degree, BudgetSpec::Fixed(1)];
        let report = run_sweep(&spec, true).expect("sweep runs");
        assert_eq!(report.cells.len(), spec.total_cells());
        assert_eq!(report.cells[0].budget, "degree");
        assert_eq!(report.cells[1].budget, "1");
        assert_eq!(report.aggregates.len(), 2);
        assert_eq!(report.aggregates[0].seeds, 1);
        let md = report.to_markdown();
        assert!(md.contains("tree-cycles") && md.contains("RNA"), "{md}");
        let json = report.to_json();
        assert!(json.contains("\"aggregates\""));
    }

    #[test]
    fn execution_order_puts_expensive_cells_first_and_keeps_reports_in_grid_order() {
        let cell = |position: usize, family: &str, scale: f64, seed: u64| PlannedCell {
            position,
            family: family.to_string(),
            scale,
            seed,
            explainer: ExplainerKind::GnnExplainer.name().to_string(),
        };
        // Grid order interleaves small and large cells; execution must be by
        // estimated cost (≈ (reference_nodes·scale)²·epochs) descending.
        let cells = vec![
            cell(0, "tree-cycles", 0.08, 0), // ≈871·0.08 =  70 nodes
            cell(1, "tree-cycles", 0.4, 0),  // ≈871·0.40 = 348 nodes
            cell(2, "cora", 0.08, 0),        // ≈2485·0.08 = 199 nodes
            cell(3, "tree-cycles", 0.08, 1), // same cost as cell 0
        ];
        let order = execution_order(&cells);
        assert_eq!(order[0], 1, "the scaled-up tree-cycles cell runs first");
        assert_eq!(order[1], 2, "the citation-scale cell runs second");
        assert_eq!(order[2..], [0, 3], "equal-cost cells keep grid order");

        // End-to-end: a two-scale sweep re-sorts results back to grid order, so
        // the report enumerates scales exactly as the spec lists them.
        let mut spec = tiny_spec();
        spec.scales = vec![0.07, 0.12];
        let report = run_sweep(&spec, true).expect("sweep runs");
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].scale, 0.07, "grid order restored in the report");
        assert_eq!(report.cells[1].scale, 0.12);
    }

    #[test]
    fn shard_parse_accepts_valid_and_rejects_invalid_forms() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert_eq!(Shard::parse("1/2").unwrap(), Shard { index: 1, count: 2 });
        assert_eq!(Shard::parse("0/1").unwrap(), Shard::FULL);
        assert!(Shard::parse("2").unwrap_err().to_string().contains("I/N"));
        assert!(Shard::parse("a/b").unwrap_err().to_string().contains("integer"));
        assert!(Shard::parse("0/0").unwrap_err().to_string().contains("at least 1"));
        assert!(Shard::parse("2/2").unwrap_err().to_string().contains("zero-based"));
        assert!(Shard { index: 3, count: 2 }.validate().is_err());
        assert_eq!(Shard { index: 1, count: 3 }.label(), "1/3");
    }

    #[test]
    fn shard_ownership_partitions_the_grid() {
        let shards = [
            Shard { index: 0, count: 3 },
            Shard { index: 1, count: 3 },
            Shard { index: 2, count: 3 },
        ];
        for p in 0..20 {
            let owners = shards.iter().filter(|s| s.owns(p)).count();
            assert_eq!(owners, 1, "prep cell {p} owned exactly once");
        }
    }

    #[test]
    fn merge_rejects_overlapping_shards() {
        let a = fabricated_shard(0, 2, vec![fabricated_cell(0, 3, 1.0)]);
        let err = merge_shards(&[a.clone(), a]).unwrap_err().to_string();
        assert!(err.contains("overlapping"), "{err}");
    }

    #[test]
    fn merge_detects_missing_shards() {
        let a = fabricated_shard(0, 2, vec![fabricated_cell(0, 3, 1.0)]);
        let err = merge_shards(&[a]).unwrap_err().to_string();
        assert!(err.contains("missing shard"), "{err}");
        assert!(merge_shards(&[]).unwrap_err().to_string().contains("zero shard"));
        // An absurd declared count must error before allocating count slots.
        let huge = fabricated_shard(0, usize::MAX / 2, vec![fabricated_cell(0, 3, 1.0)]);
        let err = merge_shards(&[huge]).unwrap_err().to_string();
        assert!(err.contains("missing shard reports"), "{err}");
    }

    #[test]
    fn merge_rejects_spec_hash_mismatches() {
        let a = fabricated_shard(0, 2, vec![fabricated_cell(0, 3, 1.0)]);
        let mut b = fabricated_shard(1, 2, vec![fabricated_cell(1, 3, 0.5)]);
        // A shard of a *different* spec: consistent in itself (hash matches its
        // own spec) but not mergeable with `a`.
        b.spec.victims += 1;
        b.spec_hash = b.spec.content_hash();
        let err = merge_shards(&[a.clone(), b]).unwrap_err().to_string();
        assert!(err.contains("different sweep"), "{err}");

        // A tampered shard whose embedded spec no longer matches its hash.
        let mut tampered = fabricated_shard(1, 2, vec![fabricated_cell(1, 3, 0.5)]);
        tampered.spec_hash = "0".repeat(32);
        let err = merge_shards(&[a, tampered]).unwrap_err().to_string();
        assert!(err.contains("does not match its spec hash"), "{err}");
    }

    #[test]
    fn merge_rejects_inconsistent_counts_and_wrong_cell_counts() {
        let a = fabricated_shard(0, 2, vec![fabricated_cell(0, 3, 1.0)]);
        let b = fabricated_shard(1, 3, vec![fabricated_cell(1, 3, 0.5)]);
        assert!(merge_shards(&[a.clone(), b])
            .unwrap_err()
            .to_string()
            .contains("inconsistent shard counts"));

        // Shard 1 claims both prep cells' results: wrong cell count.
        let overfull = fabricated_shard(1, 2, vec![fabricated_cell(0, 3, 1.0), fabricated_cell(1, 3, 0.5)]);
        let err = merge_shards(&[a.clone(), overfull]).unwrap_err().to_string();
        assert!(err.contains("expected 1"), "{err}");

        // Right count, wrong identity: shard 1 carries seed 0's cell.
        let misplaced = fabricated_shard(1, 2, vec![fabricated_cell(0, 3, 0.5)]);
        let err = merge_shards(&[a, misplaced]).unwrap_err().to_string();
        assert!(err.contains("cell mismatch"), "{err}");
    }

    #[test]
    fn empty_shard_merges_cleanly() {
        // 2 prep cells split 3 ways: shard 2/3 owns nothing.
        let spec = two_seed_spec();
        let shard = |index: usize, cells: Vec<SweepCell>| ShardReport {
            sweep: spec.name.clone(),
            spec_hash: spec.content_hash(),
            shard_index: index,
            shard_count: 3,
            spec: spec.clone(),
            cells,
        };
        let report = merge_shards(&[
            shard(0, vec![fabricated_cell(0, 3, 1.0)]),
            shard(1, vec![fabricated_cell(1, 2, 0.5)]),
            shard(2, Vec::new()),
        ])
        .expect("empty shard merges");
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].seed, 0);
        assert_eq!(report.cells[1].seed, 1);
        assert_eq!(report.aggregates.len(), 1);
        assert_eq!(report.aggregates[0].seeds, 2);
    }

    #[test]
    fn merging_the_single_full_shard_reproduces_the_report() {
        let spec = tiny_spec();
        let run = Engine::new().serial(true).run(&spec, None).expect("runs");
        assert_eq!(run.prepared_cells, 1);
        assert!(run.cache.is_none());
        let merged = merge_shards(std::slice::from_ref(&run.shard)).expect("merges");
        let direct = run_sweep(&spec, true).expect("runs");
        assert_eq!(merged.to_json(), direct.to_json());
    }

    #[test]
    fn shard_report_round_trips_through_json() {
        let report = fabricated_shard(0, 2, vec![fabricated_cell(0, 3, 1.0)]);
        let back = ShardReport::from_json(&report.to_json()).expect("round-trips");
        assert_eq!(back.spec_hash, report.spec_hash);
        assert_eq!(back.shard_index, 0);
        assert_eq!(back.shard_count, 2);
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.spec, report.spec);
        assert!(ShardReport::from_json("{}").is_err());
    }

    #[test]
    fn plan_lines_enumerate_cells_and_shard_assignments() {
        let engine = Engine::new();
        let spec = two_seed_spec();
        let lines = engine.plan_lines(&spec, None).expect("plans");
        assert_eq!(lines.len(), 3, "header + one line per prep cell");
        assert!(lines[0].contains("2 prepared cells"), "{}", lines[0]);
        assert!(lines[1].contains("tree-cycles") && lines[1].contains("seed=0"));
        assert!(!lines[1].contains("shard"), "no shard column without --shard");

        let shard = Shard { index: 1, count: 2 };
        let lines = engine.plan_lines(&spec, Some(&shard)).expect("plans");
        assert_eq!(lines.len(), 4, "header + cells + shard summary");
        assert!(lines[1].contains("shard 0/2 (skip)"), "{}", lines[1]);
        assert!(lines[2].contains("shard 1/2 (run)"), "{}", lines[2]);
        assert!(lines[3].contains("runs 1 of 2"), "{}", lines[3]);

        let mut bad = spec;
        bad.attackers = vec!["metattack".to_string()];
        assert!(engine.plan_lines(&bad, None).is_err());
    }

    #[test]
    fn meta_json_reports_shard_cache_and_telemetry_state() {
        let mut telemetry = crate::telemetry::SweepTelemetry {
            planned_cells: 1,
            finished_cells: 1,
            ..Default::default()
        };
        telemetry.phase_totals.attack_ms = 12.3456789;
        let run = SweepRun {
            shard: fabricated_shard(1, 2, vec![fabricated_cell(1, 3, 0.5)]),
            cache: Some(CacheCounters {
                hits: 2,
                misses: 1,
                evictions: 0,
            }),
            prepared_cells: 1,
            telemetry,
        };
        let meta = run.meta_json();
        assert!(meta.contains("\"shard\": \"1/2\""), "{meta}");
        assert!(meta.contains("\"hits\": 2"), "{meta}");
        assert!(meta.contains("\"prepared_cells\": 1"), "{meta}");
        assert!(meta.contains("\"finished_cells\": 1"), "{meta}");
        assert!(meta.contains("\"attack\": 12.346"), "timing rounds to µs: {meta}");
        assert!(meta.contains("\"cell_latency_ms\""), "{meta}");

        let full = SweepRun {
            shard: fabricated_shard(0, 1, Vec::new()),
            cache: None,
            prepared_cells: 0,
            telemetry: Default::default(),
        };
        let meta = full.meta_json();
        assert!(meta.contains("\"shard\": null"), "{meta}");
        assert!(meta.contains("\"cache\": null"), "{meta}");
    }
}
