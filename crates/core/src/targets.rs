//! Victim (target node) selection and target-label assignment.
//!
//! Following the protocol of IG-Attack that the paper adopts (Section 5.1), 40
//! victims are selected from the correctly-classified test nodes: the 10 with the
//! highest classification margin, the 10 with the lowest margin, and the rest at
//! random. The *specific incorrect target label* for each victim is obtained by a
//! preliminary untargeted FGA pass: whatever wrong label FGA pushes the node to
//! becomes the label every targeted attacker must reach; victims FGA cannot flip
//! are discarded (the paper evaluates on the successfully attacked nodes).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_attack::{AttackContext, Fga, TargetedAttack};
use geattack_gnn::eval::prediction_from_probs;
use geattack_gnn::{node_predictions, Gcn};
use geattack_graph::Graph;
use geattack_tensor::Matrix;

/// A victim node together with the label the attacker must force.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// Node id.
    pub node: usize,
    /// Ground-truth label.
    pub true_label: usize,
    /// Specific incorrect label the attack must produce (ASR-T is measured against
    /// this label).
    pub target_label: usize,
    /// Degree of the node in the clean graph (used for the degree-bucketed plots).
    pub degree: usize,
}

/// Configuration of victim selection.
#[derive(Clone, Debug)]
pub struct VictimSelectionConfig {
    /// Total number of victims (the paper uses 40).
    pub count: usize,
    /// How many top-margin nodes to include.
    pub top_margin: usize,
    /// How many bottom-margin nodes to include.
    pub bottom_margin: usize,
    /// RNG seed for the random remainder.
    pub seed: u64,
}

impl Default for VictimSelectionConfig {
    fn default() -> Self {
        Self {
            count: 40,
            top_margin: 10,
            bottom_margin: 10,
            seed: 0,
        }
    }
}

/// Selects victim nodes among `candidate_nodes` (typically the test split).
///
/// Only nodes the clean model classifies correctly are eligible — attacking an
/// already-misclassified node is meaningless for ASR.
pub fn select_victims(
    model: &Gcn,
    graph: &Graph,
    candidate_nodes: &[usize],
    config: &VictimSelectionConfig,
) -> Vec<usize> {
    select_victims_from_probs(&model.predict_proba(graph), graph, candidate_nodes, config)
}

/// [`select_victims`] from a precomputed clean-graph probability matrix
/// (`model.predict_proba(graph)` or [`geattack_gnn::BatchedForward::probs`]).
/// The pipeline computes that forward once and shares it between victim
/// selection and PGExplainer training; results are identical to
/// [`select_victims`].
pub fn select_victims_from_probs(
    probs: &Matrix,
    graph: &Graph,
    candidate_nodes: &[usize],
    config: &VictimSelectionConfig,
) -> Vec<usize> {
    let mut correct: Vec<_> = candidate_nodes
        .iter()
        .map(|&i| prediction_from_probs(probs, graph, i))
        .filter(|p| p.predicted == p.label)
        .collect();
    correct.sort_by(|a, b| b.margin.partial_cmp(&a.margin).unwrap_or(std::cmp::Ordering::Equal));

    let total = config.count.min(correct.len());
    let top_n = config.top_margin.min(total);
    let bottom_n = config.bottom_margin.min(total.saturating_sub(top_n));

    let mut chosen: Vec<usize> = Vec::with_capacity(total);
    chosen.extend(correct.iter().take(top_n).map(|p| p.node));
    chosen.extend(correct.iter().rev().take(bottom_n).map(|p| p.node));

    let mut remaining: Vec<usize> = correct.iter().map(|p| p.node).filter(|n| !chosen.contains(n)).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    remaining.shuffle(&mut rng);
    chosen.extend(remaining.into_iter().take(total - chosen.len()));
    chosen
}

/// Runs the preliminary untargeted FGA pass to assign each victim its specific
/// target label. Victims whose prediction FGA cannot change are dropped.
pub fn assign_target_labels(model: &Gcn, graph: &Graph, victims: &[usize]) -> Vec<Victim> {
    let mut out = Vec::with_capacity(victims.len());
    for &node in victims {
        let true_label = graph.label(node);
        let ctx = AttackContext::with_degree_budget(model, graph, node, 0);
        let perturbation = Fga.attack(&ctx);
        if perturbation.is_empty() {
            continue;
        }
        let attacked = perturbation.apply(graph);
        let new_label = model.predict_proba(&attacked).argmax_row(node);
        if new_label != true_label {
            out.push(Victim {
                node,
                true_label,
                target_label: new_label,
                degree: graph.degree(node),
            });
        }
    }
    out
}

/// Selects victims with a specific clean-graph degree (used by Figures 2, 3 and 7,
/// which bucket victims by degree).
pub fn victims_with_degree(
    model: &Gcn,
    graph: &Graph,
    candidate_nodes: &[usize],
    degree: usize,
    count: usize,
    seed: u64,
) -> Vec<usize> {
    let mut eligible: Vec<usize> = node_predictions(model, graph, candidate_nodes)
        .into_iter()
        .filter(|p| p.predicted == p.label && graph.degree(p.node) == degree)
        .map(|p| p.node)
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ degree as u64);
    eligible.shuffle(&mut rng);
    eligible.truncate(count);
    eligible
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_gnn::{train, TrainConfig};
    use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
    use geattack_graph::stratified_split;

    fn setup() -> (Graph, Gcn, Vec<usize>) {
        let cfg = GeneratorConfig::at_scale(0.08, 81);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(
            &graph,
            &split,
            &TrainConfig {
                epochs: 80,
                patience: None,
                ..Default::default()
            },
        );
        (graph, trained.model, split.test)
    }

    #[test]
    fn selected_victims_are_correctly_classified() {
        let (graph, model, test_nodes) = setup();
        let config = VictimSelectionConfig {
            count: 12,
            top_margin: 4,
            bottom_margin: 4,
            seed: 1,
        };
        let victims = select_victims(&model, &graph, &test_nodes, &config);
        assert_eq!(victims.len(), 12);
        let preds = model.predict_labels(&graph);
        for &v in &victims {
            assert_eq!(preds[v], graph.label(v), "victim {v} is already misclassified");
            assert!(test_nodes.contains(&v));
        }
        // No duplicates.
        let mut unique = victims.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), victims.len());
    }

    #[test]
    fn target_labels_differ_from_truth() {
        let (graph, model, test_nodes) = setup();
        let config = VictimSelectionConfig {
            count: 8,
            top_margin: 2,
            bottom_margin: 2,
            seed: 2,
        };
        let victims = select_victims(&model, &graph, &test_nodes, &config);
        let assigned = assign_target_labels(&model, &graph, &victims);
        assert!(!assigned.is_empty(), "FGA pre-pass flipped no victims at all");
        for v in &assigned {
            assert_ne!(v.target_label, v.true_label);
            assert_eq!(v.degree, graph.degree(v.node));
        }
    }

    #[test]
    fn degree_bucketed_selection() {
        let (graph, model, test_nodes) = setup();
        let victims = victims_with_degree(&model, &graph, &test_nodes, 2, 5, 3);
        assert!(victims.len() <= 5);
        for &v in &victims {
            assert_eq!(graph.degree(v), 2);
        }
    }

    #[test]
    fn probs_based_selection_matches_model_based() {
        let (graph, model, test_nodes) = setup();
        let config = VictimSelectionConfig {
            count: 10,
            top_margin: 3,
            bottom_margin: 3,
            seed: 7,
        };
        let direct = select_victims(&model, &graph, &test_nodes, &config);
        let forward = geattack_gnn::BatchedForward::new(&model, &graph);
        let shared = select_victims_from_probs(forward.probs(), &graph, &test_nodes, &config);
        assert_eq!(direct, shared, "shared-forward selection diverged");
    }

    #[test]
    fn selection_is_deterministic() {
        let (graph, model, test_nodes) = setup();
        let config = VictimSelectionConfig {
            count: 10,
            top_margin: 3,
            bottom_margin: 3,
            seed: 7,
        };
        let a = select_victims(&model, &graph, &test_nodes, &config);
        let b = select_victims(&model, &graph, &test_nodes, &config);
        assert_eq!(a, b);
    }
}
