//! Open, name-keyed registries for attackers and explainers.
//!
//! The paper compares a fixed set of attackers (Tables 1–2) against two
//! explainers, and the original pipeline hard-coded both sets as closed enums.
//! Related work (*Explainable Graph Neural Networks Under Fire*, *Graph Neural
//! Network Explanations are Fragile*) makes clear the joint-attack evaluation
//! extends to many more attacker/explainer pairings, so the engine resolves
//! both axes through registries instead — mirroring the scenario-family
//! registry of `geattack-scenarios`.
//!
//! A registry maps case-insensitive names to trait-object factories:
//! [`AttackerPlugin`] builds a [`TargetedAttack`] from a [`Prepared`]
//! experiment, [`ExplainerPlugin`] builds the inspector [`Explainer`]. The
//! paper's [`AttackerKind`] / [`ExplainerKind`] enums remain as the builtin
//! registrations (their `parse` methods are lookups into the builtin
//! registries), and [`crate::engine::Engine`] carries its own registry pair so
//! custom attackers and explainers can be registered per engine without
//! touching any enum.

use std::sync::{Arc, OnceLock};

use geattack_attack::TargetedAttack;
use geattack_explain::{Explainer, GnnExplainer};

use crate::error::{GeError, Result};
use crate::pipeline::{AttackerKind, ExplainerKind, Prepared};

/// A named factory of attackers. `build` runs once per (prepared cell,
/// attacker) — per-victim cost lives inside the returned [`TargetedAttack`].
pub trait AttackerPlugin: Send + Sync {
    /// Display name used in reports and result cells (e.g. `"FGA-T&E"`).
    fn name(&self) -> &str;

    /// Case-insensitive lookup keys this plugin answers to (the display name
    /// is always accepted too).
    fn aliases(&self) -> Vec<String> {
        Vec::new()
    }

    /// The builtin kind behind this plugin, if any ([`AttackerKind::parse`]
    /// uses this to keep resolving through the registry).
    fn builtin_kind(&self) -> Option<AttackerKind> {
        None
    }

    /// Builds an attacker instance for one prepared experiment.
    fn build(&self, prepared: &Prepared) -> Result<Box<dyn TargetedAttack + Sync>>;
}

/// A named factory of inspector explainers.
pub trait ExplainerPlugin: Send + Sync {
    /// Display name used in reports and result cells (e.g. `"PGExplainer"`).
    fn name(&self) -> &str;

    /// Case-insensitive lookup keys this plugin answers to (the display name
    /// is always accepted too).
    fn aliases(&self) -> Vec<String> {
        Vec::new()
    }

    /// The builtin kind behind this plugin, if any ([`ExplainerKind::parse`]
    /// uses this to keep resolving through the registry).
    fn builtin_kind(&self) -> Option<ExplainerKind> {
        None
    }

    /// Which builtin preparation behaviour cells inspected by this explainer
    /// need: [`ExplainerKind::PgExplainer`] trains a PGExplainer during
    /// preparation (and keys the cache accordingly); everything else prepares
    /// like GNNExplainer (no extra trained state). Custom explainers that only
    /// need the graph and the trained model keep the default.
    fn prepare_kind(&self) -> ExplainerKind {
        ExplainerKind::GnnExplainer
    }

    /// Builds the inspector for one prepared experiment.
    fn inspector(&self, prepared: &Prepared) -> Result<Box<dyn Explainer + Sync>>;
}

/// The builtin attacker registration: a thin adapter over [`AttackerKind`].
struct BuiltinAttacker(AttackerKind);

impl AttackerPlugin for BuiltinAttacker {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn aliases(&self) -> Vec<String> {
        self.0.aliases().iter().map(|a| a.to_string()).collect()
    }

    fn builtin_kind(&self) -> Option<AttackerKind> {
        Some(self.0)
    }

    fn build(&self, prepared: &Prepared) -> Result<Box<dyn TargetedAttack + Sync>> {
        Ok(prepared.attacker(self.0))
    }
}

/// The builtin explainer registration: a thin adapter over [`ExplainerKind`].
struct BuiltinExplainer(ExplainerKind);

impl ExplainerPlugin for BuiltinExplainer {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn aliases(&self) -> Vec<String> {
        self.0.aliases().iter().map(|a| a.to_string()).collect()
    }

    fn builtin_kind(&self) -> Option<ExplainerKind> {
        Some(self.0)
    }

    fn prepare_kind(&self) -> ExplainerKind {
        self.0
    }

    fn inspector(&self, prepared: &Prepared) -> Result<Box<dyn Explainer + Sync>> {
        // `prepare_kind` routed preparation through the matching builtin path,
        // so the prepared state fits this inspector; a mismatch (PG requested
        // on GNN-prepared state) surfaces as a `Prepare` error, not a panic.
        match self.0 {
            ExplainerKind::GnnExplainer => Ok(Box::new(GnnExplainer::new(prepared.config().gnnexplainer.clone()))),
            ExplainerKind::PgExplainer => match &prepared.pg_explainer {
                Some(pg) => Ok(Box::new(Arc::clone(pg))),
                None => Err(GeError::Prepare(
                    "PGExplainer inspector requested but the prepared state has no trained PGExplainer".to_string(),
                )),
            },
        }
    }
}

/// Canonical registry key: trimmed, lower-case.
fn key(name: &str) -> String {
    name.trim().to_ascii_lowercase()
}

macro_rules! registry {
    ($name:ident, $plugin:ident, $kind_label:literal) => {
        /// A name-keyed, case-insensitive collection of plugins. Cheap to
        /// clone (entries are shared `Arc`s), so an engine session can carry
        /// its own snapshot across threads.
        #[derive(Clone)]
        pub struct $name {
            entries: Vec<Arc<dyn $plugin>>,
        }

        impl $name {
            /// An empty registry (no names resolve).
            pub fn empty() -> Self {
                Self { entries: Vec::new() }
            }

            /// Registered display names, in registration order.
            pub fn names(&self) -> Vec<String> {
                self.entries.iter().map(|p| p.name().to_string()).collect()
            }

            /// Registers a plugin, rejecting any name or alias that collides
            /// with an existing registration (case-insensitively).
            pub fn register(&mut self, plugin: Arc<dyn $plugin>) -> Result<()> {
                let mut keys = vec![key(plugin.name())];
                keys.extend(plugin.aliases().iter().map(|a| key(a)));
                for existing in &self.entries {
                    let taken = std::iter::once(existing.name().to_string())
                        .chain(existing.aliases())
                        .map(|k| key(&k))
                        .collect::<Vec<_>>();
                    if let Some(collision) = keys.iter().find(|k| taken.contains(k)) {
                        return Err(GeError::Registry(format!(
                            "{} name `{collision}` is already registered (by `{}`)",
                            $kind_label,
                            existing.name()
                        )));
                    }
                }
                self.entries.push(plugin);
                Ok(())
            }

            /// Resolves a case-insensitive name or alias to its plugin.
            pub fn resolve(&self, name: &str) -> Result<Arc<dyn $plugin>> {
                let wanted = key(name);
                self.entries
                    .iter()
                    .find(|p| key(p.name()) == wanted || p.aliases().iter().any(|a| key(a) == wanted))
                    .cloned()
                    .ok_or_else(|| GeError::unknown($kind_label, name, self.names()))
            }

            /// Whether a name resolves.
            pub fn is_known(&self, name: &str) -> bool {
                self.resolve(name).is_ok()
            }
        }
    };
}

registry!(AttackerRegistry, AttackerPlugin, "attacker");
registry!(ExplainerRegistry, ExplainerPlugin, "explainer");

impl AttackerRegistry {
    /// The paper's seven attackers (Tables 1–2), in column order.
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        for kind in AttackerKind::ALL {
            registry
                .register(Arc::new(BuiltinAttacker(kind)))
                .unwrap_or_else(|_| unreachable!("builtin attacker names are distinct"));
        }
        registry
    }
}

impl ExplainerRegistry {
    /// The paper's two inspector explainers.
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        for kind in ExplainerKind::ALL {
            registry
                .register(Arc::new(BuiltinExplainer(kind)))
                .unwrap_or_else(|_| unreachable!("builtin explainer names are distinct"));
        }
        registry
    }
}

/// Process-wide builtin registries, built once (the enums' `parse` methods and
/// the standalone `merge_shards` resolve against these).
fn builtins() -> &'static (AttackerRegistry, ExplainerRegistry) {
    static BUILTINS: OnceLock<(AttackerRegistry, ExplainerRegistry)> = OnceLock::new();
    BUILTINS.get_or_init(|| (AttackerRegistry::builtin(), ExplainerRegistry::builtin()))
}

/// Registry lookup behind [`AttackerKind::parse`].
pub(crate) fn builtin_attacker_kind(name: &str) -> Option<AttackerKind> {
    builtins().0.resolve(name).ok().and_then(|p| p.builtin_kind())
}

/// Registry lookup behind [`ExplainerKind::parse`].
pub(crate) fn builtin_explainer_kind(name: &str) -> Option<ExplainerKind> {
    builtins().1.resolve(name).ok().and_then(|p| p.builtin_kind())
}

/// The builtin attacker registry (shared, process-wide).
pub fn builtin_attackers() -> &'static AttackerRegistry {
    &builtins().0
}

/// The builtin explainer registry (shared, process-wide).
pub fn builtin_explainers() -> &'static ExplainerRegistry {
    &builtins().1
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Custom;

    impl AttackerPlugin for Custom {
        fn name(&self) -> &str {
            "Chaos"
        }

        fn aliases(&self) -> Vec<String> {
            vec!["chaos-monkey".to_string()]
        }

        fn build(&self, prepared: &Prepared) -> Result<Box<dyn TargetedAttack + Sync>> {
            Ok(prepared.attacker(AttackerKind::Rna))
        }
    }

    #[test]
    fn builtin_registries_resolve_every_kind_and_alias() {
        let attackers = AttackerRegistry::builtin();
        for kind in AttackerKind::ALL {
            assert!(attackers.is_known(kind.name()), "{} must resolve", kind.name());
            for alias in kind.aliases() {
                let plugin = attackers.resolve(alias).unwrap();
                assert_eq!(plugin.builtin_kind(), Some(kind));
            }
        }
        let explainers = ExplainerRegistry::builtin();
        for kind in ExplainerKind::ALL {
            let plugin = explainers.resolve(kind.name()).unwrap();
            assert_eq!(plugin.builtin_kind(), Some(kind));
            assert_eq!(plugin.prepare_kind(), kind);
        }
    }

    #[test]
    fn unknown_names_error_with_the_known_list() {
        let err = match AttackerRegistry::builtin().resolve("metattack") {
            Err(e) => e,
            Ok(_) => panic!("metattack must not resolve"),
        };
        let text = err.to_string();
        assert!(text.contains("unknown attacker `metattack`"), "{text}");
        assert!(text.contains("GEAttack"), "{text}");
    }

    #[test]
    fn custom_plugins_register_and_collisions_are_rejected() {
        let mut registry = AttackerRegistry::builtin();
        registry.register(Arc::new(Custom)).unwrap();
        assert!(registry.is_known("CHAOS"));
        assert!(registry.is_known("chaos-monkey"));
        assert_eq!(registry.resolve("chaos").unwrap().name(), "Chaos");

        // Registering the same name (or an alias colliding with a builtin)
        // again must fail loudly.
        let err = registry.register(Arc::new(Custom)).unwrap_err();
        assert!(err.to_string().contains("already registered"), "{err}");

        struct Alias;
        impl AttackerPlugin for Alias {
            fn name(&self) -> &str {
                "Different"
            }
            fn aliases(&self) -> Vec<String> {
                vec!["fga".to_string()]
            }
            fn build(&self, prepared: &Prepared) -> Result<Box<dyn TargetedAttack + Sync>> {
                Ok(prepared.attacker(AttackerKind::Fga))
            }
        }
        let err = registry.register(Arc::new(Alias)).unwrap_err();
        assert!(err.to_string().contains("`fga`"), "{err}");
    }

    #[test]
    fn parse_goes_through_the_registry() {
        assert_eq!(AttackerKind::parse("FGA-T&E"), Some(AttackerKind::FgaTE));
        assert_eq!(ExplainerKind::parse("pg"), Some(ExplainerKind::PgExplainer));
        assert_eq!(AttackerKind::parse("nope"), None);
    }
}
