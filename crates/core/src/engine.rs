//! The experiment engine: registry-driven, result-typed sweep execution with
//! a streaming session API.
//!
//! An [`Engine`] owns everything a long-lived host needs to execute sweep
//! specs repeatedly: the attacker/explainer [registries](crate::registry), an
//! optional shared [`CacheStore`] of prepared experiments, and the scheduling
//! policy (cost-ordered execution, shard slicing) that the `geattack-sweep`
//! binary used to hand-roll. Submitting a spec returns a [`SweepHandle`] — a
//! live session that streams [`CellEvent`]s as prepared cells complete, in
//! completion order, while the final [`SweepRun`] re-sorts every result back
//! to deterministic grid order so reports stay byte-identical run to run, in
//! parallel or serial, cold or warm, sharded or not.
//!
//! ```no_run
//! use geattack_core::engine::{CellEvent, Engine};
//! use geattack_scenarios::SweepSpec;
//!
//! let engine = Engine::new();
//! let spec = SweepSpec::new("demo", vec!["ba-shapes".into()], vec!["fga-t".into()]);
//! let mut session = engine.submit(spec).unwrap();
//! for event in session.by_ref() {
//!     if let CellEvent::Finished { position, cells, timing } = event {
//!         println!("cell {position}: {} results in {:.1} ms", cells.len(), timing.total_ms);
//!     }
//! }
//! let run = session.wait().unwrap(); // cells in grid order
//! # let _ = run;
//! ```
//!
//! Failures are per-cell: a cell whose preparation or attacker construction
//! fails surfaces as [`CellEvent::Failed`] and the session keeps executing
//! the remaining cells; [`SweepHandle::wait`] then returns
//! [`GeError::CellsFailed`] listing every failed position.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use geattack_cache::{CacheCounters, CacheStore};
use geattack_graph::datasets::GeneratorConfig;
use geattack_scenarios::{ScenarioSpec, SweepSpec};
use geattack_telemetry::{span_labeled, Histogram, Level, MetricsRegistry};

use crate::error::{CellFailure, GeError, Result};
use crate::evaluation::summarize_run;
use crate::persist::prepare_cached;
use crate::pipeline::{run_attacker_instrumented, BudgetRule, GraphSource, PipelineConfig};
use crate::registry::{AttackerPlugin, AttackerRegistry, ExplainerPlugin, ExplainerRegistry};
use crate::sweep::{
    estimated_cost, execution_order, expand_prep_cells, merge_shards_with, plan_lines_with, resolve_axes, PlannedCell,
    Shard, ShardReport, SweepCell, SweepReport, SweepRun,
};
use crate::telemetry::{CellTiming, LatencySummary, PhaseAccumulator, SweepTelemetry};

/// A shared cancellation flag for one sweep session. Cloning shares the flag;
/// setting it makes the session skip every cell that has not started yet —
/// each skipped cell surfaces as [`CellEvent::Failed`] with a
/// [`GeError::Cancelled`] error, and [`SweepHandle::wait`] returns
/// [`GeError::CellsFailed`] listing them. Cells already executing run to
/// completion (cancellation is cell-granular), so a cancelled session still
/// leaves the shared cache in a consistent state.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    reason: Arc<Mutex<String>>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the flag; every clone observes it. The first caller's reason wins.
    pub fn cancel(&self, reason: &str) {
        if let Ok(mut slot) = self.reason.lock() {
            if slot.is_empty() {
                *slot = reason.to_string();
            }
        }
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// The reason passed to the first [`CancelToken::cancel`] call
    /// (`"cancelled"` when cancelled without one, empty when not cancelled).
    pub fn reason(&self) -> String {
        let reason = self.reason.lock().map(|r| r.clone()).unwrap_or_default();
        if reason.is_empty() && self.is_cancelled() {
            "cancelled".to_string()
        } else {
            reason
        }
    }
}

/// One progress notification of a running sweep session.
///
/// Events arrive in *completion* order (the engine schedules the most
/// expensive cells first); `position` is always the deterministic grid
/// position, which is also what the final report is sorted by.
#[derive(Clone, Debug)]
pub enum CellEvent {
    /// Emitted once per owned prepared cell when the session starts, in grid
    /// order: the full execution plan.
    Planned {
        /// The planned preparation unit.
        cell: PlannedCell,
    },
    /// A prepared cell began executing (preparation + all its attack runs).
    Started {
        /// Grid position of the cell.
        position: usize,
    },
    /// A prepared cell finished: one result per (attacker x budget).
    Finished {
        /// Grid position of the cell.
        position: usize,
        /// The cell's results, in (attacker, budget) axis order.
        cells: Vec<SweepCell>,
        /// Per-phase wall-clock breakdown of the cell.
        timing: CellTiming,
    },
    /// A prepared cell failed. The session continues with the remaining cells.
    Failed {
        /// Grid position of the cell.
        position: usize,
        /// The structured cell error ([`GeError::kind`] classifies it).
        error: GeError,
    },
}

/// A live sweep session: an event stream plus the means to wait for the
/// assembled result. Iterate it (`for event in session.by_ref()`) to consume
/// events as cells complete, then call [`SweepHandle::wait`] for the final
/// [`SweepRun`]; calling `wait` without iterating first simply drains the
/// stream.
#[derive(Debug)]
pub struct SweepHandle {
    plan: Vec<PlannedCell>,
    events: Receiver<CellEvent>,
    worker: Option<JoinHandle<Result<SweepRun>>>,
}

impl SweepHandle {
    /// The owned prepared cells of this session, in grid order.
    pub fn plan(&self) -> &[PlannedCell] {
        &self.plan
    }

    /// Blocks for the next event; `None` once the session has emitted its
    /// last event.
    pub fn next_event(&mut self) -> Option<CellEvent> {
        self.events.recv().ok()
    }

    /// Drains any remaining events, joins the session and returns the
    /// assembled run (cells re-sorted to grid order). Errors with
    /// [`GeError::CellsFailed`] when any cell failed.
    pub fn wait(mut self) -> Result<SweepRun> {
        while self.next_event().is_some() {}
        let worker = self.worker.take().expect("wait consumes the handle");
        worker
            .join()
            .map_err(|_| GeError::Prepare("sweep session worker panicked".to_string()))?
    }
}

impl Iterator for SweepHandle {
    type Item = CellEvent;

    fn next(&mut self) -> Option<CellEvent> {
        self.next_event()
    }
}

/// Everything one session's worker needs, detached from the engine so the
/// engine itself stays borrow-free while sessions run.
struct SessionContext {
    spec: SweepSpec,
    shard: Shard,
    owned: Vec<PlannedCell>,
    attackers: Vec<Arc<dyn AttackerPlugin>>,
    explainers: Vec<Arc<dyn ExplainerPlugin>>,
    cache: Option<Arc<CacheStore>>,
    metrics: Arc<MetricsRegistry>,
    serial: bool,
    cancel: CancelToken,
}

/// The registry-driven, result-typed experiment core.
///
/// Construction is cheap; the expensive state (the prepared-experiment cache)
/// is shared across every session the engine runs, which is what lets the
/// `geattack-serve` daemon reuse preparations across requests.
#[derive(Clone)]
pub struct Engine {
    attackers: AttackerRegistry,
    explainers: ExplainerRegistry,
    cache: Option<Arc<CacheStore>>,
    metrics: Arc<MetricsRegistry>,
    serial: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the paper's builtin attacker/explainer registrations,
    /// no cache, parallel execution.
    pub fn new() -> Self {
        Engine {
            attackers: AttackerRegistry::builtin(),
            explainers: ExplainerRegistry::builtin(),
            cache: None,
            metrics: Arc::new(MetricsRegistry::new()),
            serial: false,
        }
    }

    /// Forces single-threaded execution (results are identical either way).
    pub fn serial(mut self, serial: bool) -> Self {
        self.serial = serial;
        self
    }

    /// Attaches an on-disk prepared-experiment cache, optionally bounded to
    /// `budget_mb` MiB (oldest-mtime entries are pruned after each write).
    pub fn with_cache(mut self, dir: PathBuf, budget_mb: Option<u64>) -> Result<Self> {
        let store = CacheStore::open_with_budget(dir, budget_mb.map(|mb| mb.saturating_mul(1024 * 1024)))
            .map_err(GeError::Cache)?;
        self.cache = Some(Arc::new(store));
        Ok(self)
    }

    /// Registers a custom attacker (rejecting name collisions).
    pub fn register_attacker(&mut self, plugin: Arc<dyn AttackerPlugin>) -> Result<()> {
        self.attackers.register(plugin)
    }

    /// Registers a custom explainer (rejecting name collisions).
    pub fn register_explainer(&mut self, plugin: Arc<dyn ExplainerPlugin>) -> Result<()> {
        self.explainers.register(plugin)
    }

    /// Display names of every registered attacker.
    pub fn attacker_names(&self) -> Vec<String> {
        self.attackers.names()
    }

    /// Display names of every registered explainer.
    pub fn explainer_names(&self) -> Vec<String> {
        self.explainers.names()
    }

    /// Counters of the shared cache, when one is attached. Counters accumulate
    /// over every session this engine ran.
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }

    /// Snapshot of the shared cache's metrics registry (`cache.*` counters
    /// plus `persist.bytes_encoded/decoded`), when a cache is attached.
    pub fn cache_metrics(&self) -> Option<geattack_telemetry::MetricsSnapshot> {
        self.cache.as_ref().map(|c| c.metrics().snapshot())
    }

    /// The engine's metrics registry: `cells.planned/started/finished/failed`
    /// counters plus `cell.total_ms` and `phase.{prepare,attack,explain,
    /// detect}_ms` latency histograms, accumulated over every session this
    /// engine (and its clones) ran. The serve daemon exports it on `stats`.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The prepared cells a (possibly sharded) session over `spec` would own,
    /// in grid order, without executing anything.
    pub fn plan(&self, spec: &SweepSpec, shard: Option<Shard>) -> Result<Vec<PlannedCell>> {
        spec.validate().map_err(GeError::InvalidSpec)?;
        let shard = shard.unwrap_or(Shard::FULL);
        shard.validate()?;
        let axes = resolve_axes(spec, &self.attackers, &self.explainers)?;
        Ok(expand_prep_cells(spec, &axes.explainers)
            .into_iter()
            .filter(|cell| shard.owns(cell.position))
            .collect())
    }

    /// Renders the enumerated `--dry-run` cell plan against this engine's
    /// registries.
    pub fn plan_lines(&self, spec: &SweepSpec, shard: Option<&Shard>) -> Result<Vec<String>> {
        plan_lines_with(spec, shard, &self.attackers, &self.explainers)
    }

    /// Merges a complete shard-report set against this engine's registries
    /// (identical to [`crate::sweep::merge_shards`] for builtin-only engines).
    pub fn merge(&self, shards: &[ShardReport]) -> Result<SweepReport> {
        merge_shards_with(shards, &self.attackers, &self.explainers)
    }

    /// Submits a whole-grid sweep session. See [`Engine::submit_shard`].
    pub fn submit(&self, spec: SweepSpec) -> Result<SweepHandle> {
        self.submit_shard(spec, None)
    }

    /// [`Engine::submit_cancellable`] with a fresh (never-cancelled) token.
    pub fn submit_shard(&self, spec: SweepSpec, shard: Option<Shard>) -> Result<SweepHandle> {
        self.submit_cancellable(spec, shard, CancelToken::new())
    }

    /// Estimated cost of the owned slice of `spec`'s grid, in the same
    /// arbitrary units as the cost-ordered scheduler (≈ Σ (nodes²·epochs) per
    /// prepared cell, scaled by the per-cell (attacker × budget) block size).
    /// Only relative order is meaningful; the serve daemon uses it for
    /// cost-aware admission so cheap requests never queue behind sweeps that
    /// are orders of magnitude heavier.
    pub fn estimate_cost(&self, spec: &SweepSpec, shard: Option<Shard>) -> Result<f64> {
        let cells = self.plan(spec, shard)?;
        let block = (spec.attackers.len() * spec.budgets.len()).max(1);
        Ok(cells.iter().map(estimated_cost).sum::<f64>() * block as f64)
    }

    /// Validates the spec, resolves its axes against the registries and
    /// starts executing the owned slice of the grid on a background session.
    /// Returns immediately with the streaming [`SweepHandle`]; all validation
    /// errors surface here, before anything runs. Setting `cancel` (from any
    /// thread) makes the session skip its remaining cells — see
    /// [`CancelToken`].
    pub fn submit_cancellable(
        &self,
        spec: SweepSpec,
        shard: Option<Shard>,
        cancel: CancelToken,
    ) -> Result<SweepHandle> {
        spec.validate().map_err(GeError::InvalidSpec)?;
        let shard = shard.unwrap_or(Shard::FULL);
        shard.validate()?;
        let axes = resolve_axes(&spec, &self.attackers, &self.explainers)?;
        let owned: Vec<PlannedCell> = expand_prep_cells(&spec, &axes.explainers)
            .into_iter()
            .filter(|cell| shard.owns(cell.position))
            .collect();

        let (sender, events) = std::sync::mpsc::channel();
        let context = SessionContext {
            spec,
            shard,
            owned: owned.clone(),
            attackers: axes.attacker_plugins,
            explainers: axes.explainer_plugins,
            cache: self.cache.clone(),
            metrics: Arc::clone(&self.metrics),
            serial: self.serial,
            cancel,
        };
        let worker = std::thread::spawn(move || session_worker(context, sender));
        Ok(SweepHandle {
            plan: owned,
            events,
            worker: Some(worker),
        })
    }

    /// Submits a session and waits for it: the blocking convenience the CLI
    /// uses when nobody consumes the event stream.
    pub fn run(&self, spec: &SweepSpec, shard: Option<Shard>) -> Result<SweepRun> {
        self.submit_shard(spec.clone(), shard)?.wait()
    }

    /// Runs a whole-grid sweep and merges its single shard into the full
    /// report — the one-call replacement for the old `run_sweep` free
    /// function.
    pub fn run_report(&self, spec: &SweepSpec) -> Result<SweepReport> {
        let run = self.run(spec, None)?;
        self.merge(std::slice::from_ref(&run.shard))
    }
}

/// What executing one prepared cell yields: its result cells plus the
/// wall-clock phase breakdown.
type CellOutcome = Result<(Vec<SweepCell>, CellTiming)>;

/// The session body: emits the plan, executes owned cells most-expensive
/// first (fanning out across threads unless serial), streams per-cell events,
/// and reassembles everything into grid order.
fn session_worker(context: SessionContext, sender: Sender<CellEvent>) -> Result<SweepRun> {
    context.metrics.counter("cells.planned").add(context.owned.len() as u64);
    for cell in &context.owned {
        let _ = sender.send(CellEvent::Planned { cell: cell.clone() });
    }

    // Execute the most expensive cells first (estimated ≈ n²·epochs each) so
    // the self-scheduling work queue never tails on the biggest cell, then
    // re-sort the results back to grid order — the report stays byte-identical
    // to an in-order run.
    let exec_order = execution_order(&context.owned);
    let ordered: Vec<&PlannedCell> = exec_order.iter().map(|&i| &context.owned[i]).collect();

    // One level of parallelism only (mirroring the multi-run experiment
    // runner): enough prepared cells to saturate the cores → fan out across
    // cells with serial victim loops; otherwise keep the cell loop serial and
    // let each cell's victim loop fan out.
    let fan_out = cells_fan_out(context.serial, ordered.len());
    let victim_parallel = !context.serial && !fan_out;
    let sender = Mutex::new(sender);
    // Session-local latency histogram (the engine-lifetime histograms in
    // `context.metrics` accumulate across sessions; `SweepTelemetry` reports
    // this session alone).
    let session_latency = Histogram::new();
    let started_counter = context.metrics.counter("cells.started");
    let finished_counter = context.metrics.counter("cells.finished");
    let failed_counter = context.metrics.counter("cells.failed");
    let cancelled_counter = context.metrics.counter("cells.cancelled");
    let run_cell = |cell: &&PlannedCell| {
        let position = cell.position;
        // Cancellation is cell-granular: a set token makes every
        // not-yet-started cell fail fast with a `cancelled` error instead of
        // executing, while cells already past this check run to completion.
        if context.cancel.is_cancelled() {
            cancelled_counter.inc();
            let error = GeError::Cancelled(context.cancel.reason());
            let _ = sender.lock().map(|s| {
                s.send(CellEvent::Failed {
                    position,
                    error: error.clone(),
                })
            });
            return Err(error);
        }
        started_counter.inc();
        let _ = sender.lock().map(|s| s.send(CellEvent::Started { position }));
        let result = run_prep_cell(&context, cell, victim_parallel);
        let event = match &result {
            Ok((cells, timing)) => {
                finished_counter.inc();
                session_latency.record(timing.total_ms);
                context.metrics.histogram("cell.total_ms").record(timing.total_ms);
                context.metrics.histogram("phase.prepare_ms").record(timing.prepare_ms);
                context.metrics.histogram("phase.attack_ms").record(timing.attack_ms);
                context.metrics.histogram("phase.explain_ms").record(timing.explain_ms);
                context.metrics.histogram("phase.detect_ms").record(timing.detect_ms);
                CellEvent::Finished {
                    position,
                    cells: cells.clone(),
                    timing: *timing,
                }
            }
            Err(e) => {
                failed_counter.inc();
                CellEvent::Failed {
                    position,
                    error: e.clone(),
                }
            }
        };
        let _ = sender.lock().map(|s| s.send(event));
        result
    };
    let executed: Vec<CellOutcome> = map_cells(fan_out, &ordered, run_cell);

    // Land every block back in its grid slot, collecting failures.
    let mut by_grid: Vec<Option<CellOutcome>> = (0..context.owned.len()).map(|_| None).collect();
    for (k, block) in executed.into_iter().enumerate() {
        by_grid[exec_order[k]] = Some(block);
    }
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    let mut telemetry = SweepTelemetry {
        planned_cells: context.owned.len(),
        ..SweepTelemetry::default()
    };
    for (slot, block) in by_grid.into_iter().enumerate() {
        match block.expect("every executed cell lands back in its grid slot") {
            Ok((block, timing)) => {
                cells.extend(block);
                telemetry.finished_cells += 1;
                telemetry.phase_totals.accumulate(&timing);
            }
            Err(e) => {
                telemetry.failed_cells += 1;
                failures.push(CellFailure::new(context.owned[slot].position, &e));
            }
        }
    }
    telemetry.cell_latency = LatencySummary::from_histogram(&session_latency);
    if !failures.is_empty() {
        return Err(GeError::CellsFailed(failures));
    }

    Ok(SweepRun {
        shard: ShardReport {
            sweep: context.spec.name.clone(),
            spec_hash: context.spec.content_hash(),
            shard_index: context.shard.index,
            shard_count: context.shard.count,
            spec: context.spec.clone(),
            cells,
        },
        cache: context.cache.as_ref().map(|c| c.counters()),
        prepared_cells: context.owned.len(),
        telemetry,
    })
}

/// Prepares one (family, scale, seed, explainer) experiment — through the
/// engine's cache when one is attached — and attacks it with every attacker
/// and budget of the grid. Returns the cell's results plus its wall-clock
/// phase breakdown (measured unconditionally; span emission is gated on the
/// installed recorder).
fn run_prep_cell(context: &SessionContext, cell: &PlannedCell, victim_parallel: bool) -> CellOutcome {
    let _cell_span = span_labeled(Level::Cell, "cell", cell.position.to_string());
    let cell_started = Instant::now();
    let spec = &context.spec;
    let explainer = context
        .explainers
        .iter()
        .find(|p| p.name() == cell.explainer)
        .expect("planned cells only reference resolved explainers");
    let source = GraphSource::Scenario(ScenarioSpec::named(cell.family.clone()));
    let mut config = if spec.quick {
        PipelineConfig::quick_source(source, cell.seed)
    } else {
        PipelineConfig::paper_scale_source(source, cell.seed)
    };
    config.generator = GeneratorConfig::at_scale(cell.scale, cell.seed);
    config.set_victim_count(spec.victims);
    config.explainer = explainer.prepare_kind();
    config.parallel = victim_parallel;
    let prepared = prepare_cached(config, context.cache.as_deref())?;
    let prepare_ms = cell_started.elapsed().as_secs_f64() * 1e3;

    let phases = PhaseAccumulator::new();
    let inspector = explainer.inspector(&prepared)?;
    let mut out = Vec::with_capacity(context.attackers.len() * spec.budgets.len());
    for plugin in &context.attackers {
        let attacker = plugin.build(&prepared)?;
        for &budget in &spec.budgets {
            let _run_span = span_labeled(
                Level::Phase,
                "attack.run",
                format!("{}@{}", plugin.name(), budget.label()),
            );
            let outcomes = run_attacker_instrumented(
                &prepared,
                attacker.as_ref(),
                inspector.as_ref(),
                BudgetRule::from(budget),
                Some(&phases),
            );
            let summary = summarize_run(plugin.name(), &outcomes);
            out.push(SweepCell {
                family: cell.family.clone(),
                scale: cell.scale,
                seed: cell.seed,
                explainer: cell.explainer.clone(),
                attacker: plugin.name().to_string(),
                budget: budget.label(),
                nodes: prepared.graph.num_nodes(),
                edges: prepared.graph.num_edges(),
                victims: summary.victims,
                asr: summary.asr,
                asr_t: summary.asr_t,
                precision: summary.precision,
                recall: summary.recall,
                f1: summary.f1,
                ndcg: summary.ndcg,
            });
        }
    }
    let (attack_ms, explain_ms, detect_ms) = phases.totals_ms();
    let timing = CellTiming {
        prepare_ms,
        attack_ms,
        explain_ms,
        detect_ms,
        total_ms: cell_started.elapsed().as_secs_f64() * 1e3,
    };
    Ok((out, timing))
}

/// Whether the prepared-cell loop should fan out across threads (see
/// [`session_worker`]).
fn cells_fan_out(serial: bool, cells: usize) -> bool {
    #[cfg(feature = "parallel")]
    {
        !serial && cells > 1 && cells >= rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (serial, cells);
        false
    }
}

/// Maps `f` over the prepared cells — across threads when `fan_out` is set,
/// serially otherwise. Results come back in cell order either way.
fn map_cells<T: Sync, R: Send>(fan_out: bool, cells: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    #[cfg(feature = "parallel")]
    if fan_out {
        use rayon::prelude::*;
        return cells.par_iter().map(&f).collect();
    }
    let _ = fan_out;
    cells.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AttackerKind, Prepared};
    use crate::registry::AttackerPlugin;
    use geattack_attack::TargetedAttack;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("engine-unit", vec!["tree-cycles".to_string()], vec!["rna".to_string()]);
        spec.scales = vec![0.07];
        spec.seeds = vec![0, 1];
        spec.victims = 3;
        spec
    }

    #[test]
    fn event_stream_covers_every_cell_and_report_stays_grid_ordered() {
        let engine = Engine::new().serial(true);
        // Two scales with different costs: the cost-ordered schedule executes
        // grid position 1 (scale 0.12) before position 0, so completion order
        // provably differs from grid order.
        let mut spec = tiny_spec();
        spec.seeds = vec![0];
        spec.scales = vec![0.07, 0.12];
        let mut session = engine.submit(spec.clone()).expect("submits");
        assert_eq!(session.plan().len(), 2);

        let mut planned = Vec::new();
        let mut started = Vec::new();
        let mut finished = Vec::new();
        for event in session.by_ref() {
            match event {
                CellEvent::Planned { cell } => planned.push(cell.position),
                CellEvent::Started { position } => {
                    assert!(!finished.contains(&position), "started after finishing");
                    started.push(position);
                }
                CellEvent::Finished {
                    position,
                    cells,
                    timing,
                } => {
                    assert!(started.contains(&position), "finished without starting");
                    assert_eq!(cells.len(), 1, "one attacker x one budget");
                    assert!(timing.total_ms > 0.0, "finished cells carry wall-clock timing");
                    assert!(timing.prepare_ms <= timing.total_ms, "prepare is part of the total");
                    finished.push(position);
                }
                CellEvent::Failed { position, error } => {
                    unreachable!("cell {position} failed: {error}")
                }
            }
        }
        assert_eq!(planned, vec![0, 1], "plan arrives first, in grid order");
        assert_eq!(started.len(), 2);
        assert_eq!(
            finished,
            vec![1, 0],
            "events stream in completion order: the expensive cell first"
        );

        let run = session.wait().expect("session succeeds");
        assert_eq!(run.prepared_cells, 2);
        let scales: Vec<f64> = run.shard.cells.iter().map(|c| c.scale).collect();
        assert_eq!(scales, vec![0.07, 0.12], "results re-sorted to grid order");

        // The streamed session produces the exact bytes of a blocking run.
        let direct = engine.run_report(&spec).expect("runs");
        let merged = engine.merge(std::slice::from_ref(&run.shard)).expect("merges");
        assert_eq!(merged.to_json(), direct.to_json());
    }

    /// An attacker whose construction fails on seed 1, to fabricate a
    /// per-cell failure without touching any real attack code.
    struct FailsOnSeedOne;

    impl AttackerPlugin for FailsOnSeedOne {
        fn name(&self) -> &str {
            "Flaky"
        }

        fn build(&self, prepared: &Prepared) -> Result<Box<dyn TargetedAttack + Sync>> {
            if prepared.config().generator.seed == 1 {
                Err(GeError::Prepare("flaky attacker refuses seed 1".to_string()))
            } else {
                Ok(prepared.attacker(AttackerKind::Rna))
            }
        }
    }

    #[test]
    fn failed_cells_stream_as_events_without_aborting_the_session() {
        let mut engine = Engine::new().serial(true);
        engine.register_attacker(Arc::new(FailsOnSeedOne)).unwrap();
        let mut spec = tiny_spec();
        spec.attackers = vec!["flaky".to_string()];

        let mut session = engine.submit(spec).expect("submits");
        let mut finished = Vec::new();
        let mut failed = Vec::new();
        for event in session.by_ref() {
            match event {
                CellEvent::Finished { position, .. } => finished.push(position),
                CellEvent::Failed { position, error } => {
                    assert_eq!(error.kind(), "prepare", "events carry the structured error kind");
                    assert!(error.to_string().contains("refuses seed 1"), "{error}");
                    failed.push(position);
                }
                _ => {}
            }
        }
        assert_eq!(finished, vec![0], "the healthy cell still completes");
        assert_eq!(failed, vec![1], "the failing cell surfaces as an event");

        let err = session.wait().unwrap_err();
        match &err {
            GeError::CellsFailed(failures) => {
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].position, 1);
                assert_eq!(failures[0].kind, "prepare");
            }
            other => panic!("expected CellsFailed, got {other:?}"),
        }
        assert!(err.to_string().contains("refuses seed 1"), "{err}");
    }

    #[test]
    fn custom_attackers_run_under_their_registered_name() {
        struct Shadow;
        impl AttackerPlugin for Shadow {
            fn name(&self) -> &str {
                "Shadow-RNA"
            }
            fn build(&self, prepared: &Prepared) -> Result<Box<dyn TargetedAttack + Sync>> {
                Ok(prepared.attacker(AttackerKind::Rna))
            }
        }
        let mut engine = Engine::new().serial(true);
        engine.register_attacker(Arc::new(Shadow)).unwrap();
        let mut spec = tiny_spec();
        spec.seeds = vec![0];
        spec.attackers = vec!["shadow-rna".to_string()];
        let report = engine.run_report(&spec).expect("runs");
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].attacker, "Shadow-RNA");
        // The builtin registry knows nothing about it: the standalone
        // merge_shards (builtin-only) must reject this report's axes.
        let run = engine.run(&spec, None).expect("runs");
        let err = crate::sweep::merge_shards(std::slice::from_ref(&run.shard)).unwrap_err();
        assert!(err.to_string().contains("unknown attacker"), "{err}");
    }

    #[test]
    fn cancelled_token_skips_every_remaining_cell_as_a_cancelled_failure() {
        let engine = Engine::new().serial(true);
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel("test teardown");
        token.cancel("second reason loses");
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), "test teardown");

        let mut session = engine
            .submit_cancellable(tiny_spec(), None, token)
            .expect("submission itself is not gated on the token");
        let mut failed = Vec::new();
        for event in session.by_ref() {
            match event {
                CellEvent::Failed { position, error } => {
                    assert_eq!(error.kind(), "cancelled");
                    assert!(error.to_string().contains("test teardown"), "{error}");
                    failed.push(position);
                }
                CellEvent::Planned { .. } => {}
                other => panic!("cancelled session must not start cells: {other:?}"),
            }
        }
        assert_eq!(failed, vec![0, 1], "both cells cancelled, in execution order");
        let err = session.wait().unwrap_err();
        match &err {
            GeError::CellsFailed(failures) => {
                assert_eq!(failures.len(), 2);
                assert!(failures.iter().all(|f| f.kind == "cancelled"));
            }
            other => panic!("expected CellsFailed, got {other:?}"),
        }
        assert_eq!(engine.metrics().counter_value("cells.cancelled"), 2);
        assert_eq!(engine.metrics().counter_value("cells.started"), 0);
    }

    #[test]
    fn cost_estimates_order_specs_by_heaviness() {
        let engine = Engine::new();
        let quick = tiny_spec();
        let mut heavy = tiny_spec();
        heavy.scales = vec![0.6];
        let quick_cost = engine.estimate_cost(&quick, None).expect("estimates");
        let heavy_cost = engine.estimate_cost(&heavy, None).expect("estimates");
        assert!(quick_cost > 0.0);
        assert!(
            heavy_cost > 10.0 * quick_cost,
            "scale 0.6 must dominate scale 0.07: {heavy_cost} vs {quick_cost}"
        );
        // Sharding halves the owned slice (2 seeds -> 1 owned cell each).
        let half = engine
            .estimate_cost(&quick, Some(Shard { index: 0, count: 2 }))
            .expect("estimates");
        assert!(half < quick_cost);
        // Bad specs fail estimation the same way they fail submission.
        let mut bad = tiny_spec();
        bad.attackers = vec!["metattack".to_string()];
        assert!(engine.estimate_cost(&bad, None).is_err());
    }

    #[test]
    fn submit_rejects_bad_specs_and_shards_before_running() {
        let engine = Engine::new();
        let mut spec = tiny_spec();
        spec.scales = vec![7.0];
        assert!(matches!(engine.submit(spec).unwrap_err(), GeError::InvalidSpec(_)));

        let spec = tiny_spec();
        let err = engine
            .submit_shard(spec, Some(Shard { index: 5, count: 2 }))
            .unwrap_err();
        assert!(matches!(err, GeError::Shard(_)));
    }
}
