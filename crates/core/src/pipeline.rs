//! End-to-end experiment pipeline: graph source → GCN → victims → attacks →
//! evaluation.
//!
//! This module glues the substrates together exactly the way the paper's
//! experimental protocol describes (Section 5.1): generate/load a graph, train a
//! GCN on a 10/10/80 split, select 40 victims from the correctly-classified test
//! nodes, obtain each victim's specific target label via an untargeted FGA
//! pre-pass, run every attacker in the evasion setting with budget `Δ = degree`,
//! and score both attack success and explainer-based detection.
//!
//! The graph comes from a [`GraphSource`]: either one of the paper's citation
//! datasets or any named [`geattack_scenarios`] family, so the same pipeline
//! drives both the reproduction binaries and the scenario sweep runner.

use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use geattack_attack::{AttackContext, Fga, FgaT, FgaTE, FgaTEConfig, IgAttack, Nettack, RandomAttack, TargetedAttack};
use geattack_explain::{Explainer, GnnExplainer, GnnExplainerConfig, PgExplainer, PgExplainerConfig};
use geattack_gnn::{train, BatchedForward, Gcn, TrainConfig};
use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
use geattack_graph::{stratified_split, DataSplit, Graph};
use geattack_scenarios::{BudgetSpec, ScenarioSpec};

use crate::error::{GeError, Result};
use crate::evaluation::{evaluate_attack_instrumented, AttackOutcome};
use crate::geattack::{GeAttack, GeAttackConfig};
use crate::pg_geattack::{PgGeAttack, PgGeAttackConfig};
use crate::targets::{assign_target_labels, select_victims_from_probs, Victim, VictimSelectionConfig};
use crate::telemetry::PhaseAccumulator;

/// The attackers compared in Tables 1 and 2, in the paper's column order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackerKind {
    /// Untargeted fast-gradient attack.
    Fga,
    /// Random attack toward target-label nodes.
    Rna,
    /// Targeted fast-gradient attack.
    FgaT,
    /// Nettack with the linearized surrogate and degree test.
    Nettack,
    /// Integrated-gradients attack.
    IgAttack,
    /// FGA-T avoiding nodes in the clean-graph explanation.
    FgaTE,
    /// The proposed joint attack.
    GeAttack,
}

impl AttackerKind {
    /// All attackers in the paper's column order.
    pub const ALL: [AttackerKind; 7] = [
        AttackerKind::Fga,
        AttackerKind::Rna,
        AttackerKind::FgaT,
        AttackerKind::Nettack,
        AttackerKind::IgAttack,
        AttackerKind::FgaTE,
        AttackerKind::GeAttack,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            AttackerKind::Fga => "FGA",
            AttackerKind::Rna => "RNA",
            AttackerKind::FgaT => "FGA-T",
            AttackerKind::Nettack => "Nettack",
            AttackerKind::IgAttack => "IG-Attack",
            AttackerKind::FgaTE => "FGA-T&E",
            AttackerKind::GeAttack => "GEAttack",
        }
    }

    /// The case-insensitive names this attacker answers to in specs and on the
    /// command line. These are the builtin registry's lookup keys.
    pub fn aliases(&self) -> &'static [&'static str] {
        match self {
            AttackerKind::Fga => &["fga"],
            AttackerKind::Rna => &["rna", "random"],
            AttackerKind::FgaT => &["fga-t", "fgat"],
            AttackerKind::Nettack => &["nettack"],
            AttackerKind::IgAttack => &["ig-attack", "ig"],
            AttackerKind::FgaTE => &["fga-t&e", "fgate"],
            AttackerKind::GeAttack => &["geattack"],
        }
    }

    /// Parses a case-insensitive attacker name by looking it up in the builtin
    /// attacker registry (see [`crate::registry`]).
    pub fn parse(s: &str) -> Option<Self> {
        crate::registry::builtin_attacker_kind(s)
    }
}

/// Which explainer plays the inspector role.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExplainerKind {
    /// GNNExplainer (Tables 1, Figures 2-6, 8).
    GnnExplainer,
    /// PGExplainer (Table 2, Figure 7).
    PgExplainer,
}

impl ExplainerKind {
    /// Both builtin explainers, in the paper's presentation order.
    pub const ALL: [ExplainerKind; 2] = [ExplainerKind::GnnExplainer, ExplainerKind::PgExplainer];

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExplainerKind::GnnExplainer => "GNNExplainer",
            ExplainerKind::PgExplainer => "PGExplainer",
        }
    }

    /// The case-insensitive names this explainer answers to in specs and on
    /// the command line. These are the builtin registry's lookup keys.
    pub fn aliases(&self) -> &'static [&'static str] {
        match self {
            ExplainerKind::GnnExplainer => &["gnnexplainer", "gnn-explainer", "gnn"],
            ExplainerKind::PgExplainer => &["pgexplainer", "pg-explainer", "pg"],
        }
    }

    /// Parses a case-insensitive explainer name by looking it up in the
    /// builtin explainer registry (see [`crate::registry`]).
    pub fn parse(s: &str) -> Option<Self> {
        crate::registry::builtin_explainer_kind(s)
    }
}

/// Where an experiment's graph comes from: one of the paper's citation datasets
/// (with the full [`GeneratorConfig`] knob set) or a named scenario family from
/// the `geattack-scenarios` registry.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// A synthetic stand-in for one of the paper's benchmark datasets.
    Dataset(DatasetName),
    /// A scenario-registry graph family (BA-Shapes, SBM, ...).
    Scenario(ScenarioSpec),
}

impl GraphSource {
    /// Parses a source name: citation dataset names take priority, everything
    /// else is looked up in the scenario registry.
    pub fn parse(s: &str) -> Option<Self> {
        if let Some(dataset) = DatasetName::parse(s) {
            return Some(GraphSource::Dataset(dataset));
        }
        let spec = ScenarioSpec::named(s);
        spec.validate().ok().map(|()| GraphSource::Scenario(spec))
    }

    /// Display label for tables and reports.
    pub fn label(&self) -> String {
        match self {
            GraphSource::Dataset(dataset) => dataset.as_str().to_string(),
            GraphSource::Scenario(spec) => geattack_scenarios::canonical(&spec.family),
        }
    }

    /// Checks the source is resolvable without generating anything.
    pub fn validate(&self) -> Result<()> {
        match self {
            GraphSource::Dataset(_) => Ok(()),
            GraphSource::Scenario(spec) => spec.validate().map_err(GeError::GraphSource),
        }
    }

    /// Generates the graph (largest connected component). Scenario sources
    /// inherit scale and seed from `generator` unless the spec overrides them.
    /// Unknown scenario families come back as [`GeError::GraphSource`].
    pub fn load(&self, generator: &GeneratorConfig) -> Result<Graph> {
        match self {
            GraphSource::Dataset(dataset) => Ok(load(*dataset, generator)),
            GraphSource::Scenario(spec) => spec.load(generator.scale, generator.seed).map_err(GeError::GraphSource),
        }
    }
}

/// How many adversarial edges each victim grants the attacker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetRule {
    /// The paper's default: `Δ = max(degree(victim), 1)`.
    Degree,
    /// The same fixed budget for every victim.
    Fixed(usize),
}

impl BudgetRule {
    /// The budget granted for attacking `node` in `graph`.
    pub fn budget_for(&self, graph: &Graph, node: usize) -> usize {
        match self {
            BudgetRule::Degree => graph.degree(node).max(1),
            BudgetRule::Fixed(edges) => (*edges).max(1),
        }
    }
}

impl From<BudgetSpec> for BudgetRule {
    fn from(spec: BudgetSpec) -> Self {
        match spec {
            BudgetSpec::Degree => BudgetRule::Degree,
            BudgetSpec::Fixed(edges) => BudgetRule::Fixed(edges),
        }
    }
}

/// Full configuration of one experiment run.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Where the graph comes from (named dataset or scenario family).
    pub source: GraphSource,
    /// Synthetic-dataset generator settings (scale, seed, ...).
    pub generator: GeneratorConfig,
    /// GCN training settings.
    pub train: TrainConfig,
    /// Victim selection settings.
    pub victims: VictimSelectionConfig,
    /// Which explainer acts as the inspector.
    pub explainer: ExplainerKind,
    /// GNNExplainer settings (inspection and FGA-T&E / GEAttack inner loop).
    pub gnnexplainer: GnnExplainerConfig,
    /// PGExplainer settings (only used when `explainer` is `PgExplainer`).
    pub pgexplainer: PgExplainerConfig,
    /// GEAttack settings.
    pub geattack: GeAttackConfig,
    /// GEAttack-PG settings.
    pub pg_geattack: PgGeAttackConfig,
    /// Detection metric cut-off `K` (15 in the paper).
    pub detection_k: usize,
    /// Explanation size `L` (20 in the paper).
    pub explanation_size: usize,
    /// Run victims in parallel across threads.
    pub parallel: bool,
}

impl PipelineConfig {
    /// A configuration sized for fast experimentation: reduced dataset scale,
    /// fewer victims, fewer explainer epochs. `seed` drives the dataset, the model
    /// initialization and victim selection, so different seeds give independent
    /// runs (the paper reports mean ± std over 5 runs).
    pub fn quick(dataset: DatasetName, seed: u64) -> Self {
        Self::quick_source(GraphSource::Dataset(dataset), seed)
    }

    /// [`PipelineConfig::quick`] for an arbitrary graph source (the scenario
    /// sweep runner's entry point).
    pub fn quick_source(source: GraphSource, seed: u64) -> Self {
        Self {
            source,
            generator: GeneratorConfig::at_scale(0.12, seed),
            train: TrainConfig {
                seed,
                ..Default::default()
            },
            victims: VictimSelectionConfig {
                count: 20,
                top_margin: 5,
                bottom_margin: 5,
                seed,
            },
            explainer: ExplainerKind::GnnExplainer,
            gnnexplainer: GnnExplainerConfig {
                epochs: 40,
                seed,
                ..Default::default()
            },
            pgexplainer: PgExplainerConfig {
                epochs: 5,
                training_instances: 12,
                seed,
                ..Default::default()
            },
            geattack: GeAttackConfig {
                seed,
                ..Default::default()
            },
            pg_geattack: PgGeAttackConfig::default(),
            detection_k: 15,
            explanation_size: 20,
            parallel: true,
        }
    }

    /// A configuration matching the paper's scale (slow: full-size graphs and 40
    /// victims).
    pub fn paper_scale(dataset: DatasetName, seed: u64) -> Self {
        Self::paper_scale_source(GraphSource::Dataset(dataset), seed)
    }

    /// Overrides the victim count, keeping the paper's 1/4 top-margin, 1/4
    /// bottom-margin, 1/2 random selection mix (the one place this rounding
    /// lives — the CLI and the sweep runner both go through it).
    pub fn set_victim_count(&mut self, count: usize) {
        self.victims.count = count;
        self.victims.top_margin = (count / 4).max(1);
        self.victims.bottom_margin = (count / 4).max(1);
    }

    /// [`PipelineConfig::paper_scale`] for an arbitrary graph source.
    pub fn paper_scale_source(source: GraphSource, seed: u64) -> Self {
        Self {
            generator: GeneratorConfig::full_scale(seed),
            victims: VictimSelectionConfig {
                count: 40,
                seed,
                ..Default::default()
            },
            ..Self::quick_source(source, seed)
        }
    }
}

/// The shared state of one experiment run: the data, the trained victim model, the
/// split, the victims with their target labels, and (when PGExplainer is the
/// inspector) the trained PGExplainer.
///
/// The heavy, immutable parts — the graph (dense adjacency), the trained model
/// and the trained PGExplainer — live behind [`Arc`], so re-scoping an
/// experiment to a different victim set ([`Prepared::with_victims`], used by
/// the degree-bucket figures and the sweep fan-out) shares them instead of
/// deep-copying an `n×n` matrix per bucket.
pub struct Prepared {
    /// The clean graph (shared, immutable).
    pub graph: Arc<Graph>,
    /// The trained (frozen) GCN under attack (shared, immutable).
    pub model: Arc<Gcn>,
    /// Train/val/test node split.
    pub split: DataSplit,
    /// Victims with assigned target labels.
    pub victims: Vec<Victim>,
    /// The trained PGExplainer, if the experiment uses one (shared, immutable).
    pub pg_explainer: Option<Arc<PgExplainer>>,
    config: PipelineConfig,
    /// The clean-graph forward pass, computed at most once per `(graph, model)`
    /// and shared by every consumer of clean predictions or embeddings
    /// (FGA-T&E's exclusion explanation, degree sweeps, victim re-scoping).
    /// Lazy so cache-hit loads that never query the clean graph pay nothing.
    clean_forward: Arc<OnceLock<Arc<BatchedForward>>>,
}

impl Prepared {
    /// Reassembles an experiment from persisted parts plus the configuration
    /// that (by cache-key construction) produced them. Only the persistence
    /// layer should need this; everything else goes through [`prepare`].
    pub(crate) fn from_parts(
        graph: Graph,
        model: Gcn,
        split: DataSplit,
        victims: Vec<Victim>,
        pg_explainer: Option<PgExplainer>,
        config: PipelineConfig,
    ) -> Prepared {
        Prepared {
            graph: Arc::new(graph),
            model: Arc::new(model),
            split,
            victims,
            pg_explainer: pg_explainer.map(Arc::new),
            config,
            clean_forward: Arc::new(OnceLock::new()),
        }
    }

    /// The shared clean-graph forward pass (bit-identical to
    /// `model.predict_proba(graph)` / `model.node_embeddings(graph)`), computed
    /// on first use and then served from the shared cell — including across
    /// [`Prepared::with_victims`] re-scopes, which keep the same graph and
    /// model.
    pub fn clean_forward(&self) -> Arc<BatchedForward> {
        Arc::clone(
            self.clean_forward
                .get_or_init(|| Arc::new(BatchedForward::new(&self.model, &self.graph))),
        )
    }

    /// Read access to the configuration used to prepare this experiment.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Display label of the graph source this experiment was prepared from.
    pub fn source_label(&self) -> String {
        self.config.source.label()
    }

    /// Re-scopes the experiment to a different victim set (used by the degree
    /// buckets of Figures 2/3/7 and the parameter sweeps). The graph, model
    /// and explainer state are shared, not copied.
    pub fn with_victims(&self, victims: Vec<Victim>) -> Prepared {
        Prepared {
            graph: Arc::clone(&self.graph),
            model: Arc::clone(&self.model),
            split: self.split.clone(),
            victims,
            pg_explainer: self.pg_explainer.clone(),
            config: self.config.clone(),
            clean_forward: Arc::clone(&self.clean_forward),
        }
    }

    /// Builds the inspector explainer configured for this experiment. Errors
    /// when the configuration requests a PGExplainer inspection but no trained
    /// PGExplainer state is present (a hand-assembled or corrupted `Prepared`).
    pub fn inspector(&self) -> Result<Box<dyn Explainer + Sync>> {
        match self.config.explainer {
            ExplainerKind::GnnExplainer => Ok(Box::new(GnnExplainer::new(self.config.gnnexplainer.clone()))),
            ExplainerKind::PgExplainer => match &self.pg_explainer {
                Some(pg) => Ok(Box::new(Arc::clone(pg))),
                None => Err(GeError::Prepare(
                    "PGExplainer inspector requested but not trained".to_string(),
                )),
            },
        }
    }

    /// Builds an attacker instance for this experiment.
    pub fn attacker(&self, kind: AttackerKind) -> Box<dyn TargetedAttack + Sync> {
        match kind {
            AttackerKind::Fga => Box::new(Fga),
            AttackerKind::Rna => Box::new(RandomAttack::new(self.config.generator.seed)),
            AttackerKind::FgaT => Box::new(FgaT::default()),
            AttackerKind::Nettack => Box::new(Nettack::default()),
            AttackerKind::IgAttack => Box::new(IgAttack::default()),
            AttackerKind::FgaTE => Box::new(
                FgaTE::new(FgaTEConfig {
                    explanation_size: self.config.explanation_size,
                    explainer: self.config.gnnexplainer.clone(),
                })
                // FGA-T&E explains every victim on the same clean graph, so all
                // victims share one forward pass.
                .with_clean_forward(self.clean_forward()),
            ),
            AttackerKind::GeAttack => match (&self.config.explainer, &self.pg_explainer) {
                (ExplainerKind::PgExplainer, Some(pg)) => {
                    Box::new(PgGeAttack::new(pg.as_ref().clone(), self.config.pg_geattack.clone()))
                }
                _ => Box::new(GeAttack::new(self.config.geattack.clone())),
            },
        }
    }
}

/// Prepares an experiment: generate the dataset, train the GCN, select victims and
/// assign their target labels (and train PGExplainer if it is the inspector).
/// Fails (instead of panicking) when the graph source cannot be loaded.
pub fn prepare(config: PipelineConfig) -> Result<Prepared> {
    let _span = geattack_telemetry::span(geattack_telemetry::Level::Phase, "prepare");
    let graph = config.source.load(&config.generator)?;
    use rand::SeedableRng as _;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(config.generator.seed);
    let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
    let trained = train(&graph, &split, &config.train);
    let model = trained.model;

    // One clean-graph forward serves victim selection, PGExplainer training
    // and (seeded into the Prepared below) every later clean-graph query.
    let forward = BatchedForward::new(&model, &graph);
    let victims = select_victims_from_probs(forward.probs(), &graph, &split.test, &config.victims);
    let victims = assign_target_labels(&model, &graph, &victims);

    let pg_explainer = match config.explainer {
        ExplainerKind::PgExplainer => Some(PgExplainer::train_with_forward(
            &model,
            &graph,
            &split.test,
            config.pgexplainer.clone(),
            &forward,
        )),
        ExplainerKind::GnnExplainer => None,
    };

    let prepared = Prepared::from_parts(graph, model, split, victims, pg_explainer, config);
    let _ = prepared.clean_forward.set(Arc::new(forward));
    Ok(prepared)
}

/// Runs one attacker over all prepared victims and returns per-victim outcomes.
///
/// With the `parallel` feature (on by default) and `config.parallel == true`,
/// victims are distributed across threads with rayon. Every attack draws its
/// randomness from victim-local RNG state, so the parallel outcomes are
/// identical to the serial ones — the determinism integration test pins this.
pub fn run_attacker(
    prepared: &Prepared,
    attacker: &(dyn TargetedAttack + Sync),
    inspector: &(dyn Explainer + Sync),
) -> Vec<AttackOutcome> {
    run_attacker_with_budget(prepared, attacker, inspector, BudgetRule::Degree)
}

/// [`run_attacker`] with an explicit per-victim budget rule (the sweep runner's
/// budget axis; `BudgetRule::Degree` reproduces the paper's protocol).
pub fn run_attacker_with_budget(
    prepared: &Prepared,
    attacker: &(dyn TargetedAttack + Sync),
    inspector: &(dyn Explainer + Sync),
    budget: BudgetRule,
) -> Vec<AttackOutcome> {
    run_attacker_instrumented(prepared, attacker, inspector, budget, None)
}

/// [`run_attacker_with_budget`] that also accumulates per-phase wall-clock
/// into `phases` when given — the engine's per-cell timing breakdown. Timing
/// is additive across the parallel victim threads; the measured computation is
/// unchanged either way.
pub fn run_attacker_instrumented(
    prepared: &Prepared,
    attacker: &(dyn TargetedAttack + Sync),
    inspector: &(dyn Explainer + Sync),
    budget: BudgetRule,
    phases: Option<&PhaseAccumulator>,
) -> Vec<AttackOutcome> {
    let config = prepared.config();
    let evaluate = |victim: &Victim| {
        let ctx = AttackContext {
            model: &prepared.model,
            graph: &prepared.graph,
            target: victim.node,
            target_label: victim.target_label,
            budget: budget.budget_for(&prepared.graph, victim.node),
        };
        let attack_started = std::time::Instant::now();
        let perturbation = {
            let _span = geattack_telemetry::span_labeled(
                geattack_telemetry::Level::Detail,
                "attack.victim",
                victim.node.to_string(),
            );
            attacker.attack(&ctx)
        };
        if let Some(phases) = phases {
            phases.add_attack(attack_started.elapsed());
        }
        evaluate_attack_instrumented(
            &prepared.model,
            &prepared.graph,
            inspector,
            victim,
            &perturbation,
            config.detection_k,
            config.explanation_size,
            phases,
        )
    };

    #[cfg(feature = "parallel")]
    if config.parallel && prepared.victims.len() >= 2 {
        use rayon::prelude::*;
        return prepared.victims.par_iter().map(evaluate).collect();
    }

    prepared.victims.iter().map(evaluate).collect()
}

/// Runs one attacker kind end-to-end on an already-prepared experiment.
pub fn run_attacker_kind(prepared: &Prepared, kind: AttackerKind) -> Result<Vec<AttackOutcome>> {
    let attacker = prepared.attacker(kind);
    let inspector = prepared.inspector()?;
    Ok(run_attacker(prepared, attacker.as_ref(), inspector.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::summarize_run;

    fn tiny_config(seed: u64) -> PipelineConfig {
        let mut config = PipelineConfig::quick(DatasetName::Cora, seed);
        config.generator = GeneratorConfig::at_scale(0.06, seed);
        config.victims.count = 6;
        config.victims.top_margin = 2;
        config.victims.bottom_margin = 2;
        config.gnnexplainer.epochs = 15;
        config.geattack.candidate_pool = 16;
        config.geattack.explainer.epochs = 15;
        config
    }

    #[test]
    fn prepare_produces_victims_with_targets() {
        let prepared = prepare(tiny_config(91)).unwrap();
        assert!(!prepared.victims.is_empty());
        for v in &prepared.victims {
            assert_ne!(v.true_label, v.target_label);
            assert!(prepared.split.test.contains(&v.node));
        }
        assert!(prepared.pg_explainer.is_none());
    }

    #[test]
    fn fga_t_summary_has_high_asr_t() {
        let prepared = prepare(tiny_config(92)).unwrap();
        let outcomes = run_attacker_kind(&prepared, AttackerKind::FgaT).unwrap();
        assert_eq!(outcomes.len(), prepared.victims.len());
        let summary = summarize_run("FGA-T", &outcomes);
        assert!(summary.asr_t >= 0.5, "FGA-T ASR-T unexpectedly low: {}", summary.asr_t);
        assert!(summary.asr >= summary.asr_t);
    }

    #[test]
    fn attacker_kind_parse_and_names() {
        assert_eq!(AttackerKind::parse("geattack"), Some(AttackerKind::GeAttack));
        assert_eq!(AttackerKind::parse("FGA-T&E"), Some(AttackerKind::FgaTE));
        assert_eq!(AttackerKind::parse("nope"), None);
        assert_eq!(AttackerKind::ALL.len(), 7);
        assert_eq!(AttackerKind::GeAttack.name(), "GEAttack");
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let mut config = tiny_config(93);
        config.victims.count = 4;
        let prepared_serial = {
            let mut c = config.clone();
            c.parallel = false;
            prepare(c).unwrap()
        };
        let prepared_parallel = prepare(config).unwrap();
        let serial = run_attacker_kind(&prepared_serial, AttackerKind::FgaT).unwrap();
        let parallel = run_attacker_kind(&prepared_parallel, AttackerKind::FgaT).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.success_target, b.success_target);
            assert!((a.detection.f1 - b.detection.f1).abs() < 1e-12);
        }
    }

    #[test]
    fn graph_source_parse_label_and_load() {
        assert_eq!(
            GraphSource::parse("cora"),
            Some(GraphSource::Dataset(DatasetName::Cora))
        );
        let scenario = GraphSource::parse("Tree_Cycles").unwrap();
        assert_eq!(scenario.label(), "tree-cycles");
        assert!(scenario.validate().is_ok());
        assert_eq!(GraphSource::parse("no-such-graph"), None);

        let graph = scenario.load(&GeneratorConfig::at_scale(0.08, 1)).unwrap();
        assert!(graph.num_nodes() >= 30);
        let comps = graph.csr().connected_components();
        assert!(comps.iter().all(|&c| c == comps[0]), "source load applies LCC");
    }

    #[test]
    fn scenario_source_pipeline_prepares_and_attacks() {
        let mut config = PipelineConfig::quick_source(GraphSource::parse("ba-shapes").unwrap(), 17);
        config.generator = GeneratorConfig::at_scale(0.08, 17);
        config.victims.count = 4;
        config.victims.top_margin = 1;
        config.victims.bottom_margin = 1;
        config.gnnexplainer.epochs = 10;
        let prepared = prepare(config).unwrap();
        assert_eq!(prepared.source_label(), "ba-shapes");
        assert!(!prepared.victims.is_empty(), "BA-Shapes must yield attackable victims");
        let outcomes = run_attacker_kind(&prepared, AttackerKind::FgaT).unwrap();
        assert_eq!(outcomes.len(), prepared.victims.len());
    }

    #[test]
    fn budget_rules_bound_perturbation_sizes() {
        let prepared = prepare(tiny_config(95)).unwrap();
        let attacker = prepared.attacker(AttackerKind::FgaT);
        let inspector = prepared.inspector().unwrap();
        let fixed = run_attacker_with_budget(&prepared, attacker.as_ref(), inspector.as_ref(), BudgetRule::Fixed(1));
        assert!(fixed.iter().all(|o| o.perturbation_size <= 1), "fixed budget of 1 edge");
        let degree = run_attacker_with_budget(&prepared, attacker.as_ref(), inspector.as_ref(), BudgetRule::Degree);
        for (o, victim) in degree.iter().zip(&prepared.victims) {
            assert!(o.perturbation_size <= victim.degree.max(1));
        }
        assert_eq!(
            BudgetRule::from(geattack_scenarios::BudgetSpec::Degree),
            BudgetRule::Degree
        );
        assert_eq!(
            BudgetRule::from(geattack_scenarios::BudgetSpec::Fixed(4)),
            BudgetRule::Fixed(4)
        );
        assert_eq!(BudgetRule::Fixed(0).budget_for(&prepared.graph, 0), 1);
    }

    #[test]
    fn explainer_kind_parse_and_names() {
        assert_eq!(ExplainerKind::parse("GNNExplainer"), Some(ExplainerKind::GnnExplainer));
        assert_eq!(ExplainerKind::parse("pg-explainer"), Some(ExplainerKind::PgExplainer));
        assert_eq!(ExplainerKind::parse("shap"), None);
        assert_eq!(ExplainerKind::PgExplainer.name(), "PGExplainer");
    }

    #[test]
    fn pg_explainer_pipeline_builds() {
        let mut config = tiny_config(94);
        config.explainer = ExplainerKind::PgExplainer;
        config.victims.count = 3;
        config.pgexplainer.epochs = 1;
        config.pgexplainer.training_instances = 4;
        let prepared = prepare(config).unwrap();
        assert!(prepared.pg_explainer.is_some());
        let outcomes = run_attacker_kind(&prepared, AttackerKind::GeAttack).unwrap();
        assert_eq!(outcomes.len(), prepared.victims.len());
    }
}
