//! GEAttack against PGExplainer (Section 5.3 of the paper).
//!
//! The joint objective is the same as against GNNExplainer, but the explainer
//! penalty uses PGExplainer's trained edge-scoring MLP: the gate the MLP assigns to
//! a (candidate) adversarial edge is computed from the GCN's first-layer node
//! embeddings, which themselves depend on the perturbed adjacency `Â`. The penalty
//! `λ Σ σ(ω_{vj}(Â)) · B[v, j]` is therefore differentiable with respect to `Â`
//! and the attack follows the same greedy outer loop as [`crate::geattack`].

use geattack_attack::{candidate_endpoints, undirected_entry, AttackContext, LossGradients, TargetedAttack};
use geattack_explain::pgexplainer::{PgExplainer, SubgraphEdges};
use geattack_graph::{computation_subgraph, Graph, Perturbation};
use geattack_tensor::{grad::grad, nn, Matrix, Tape};

/// Hyper-parameters of GEAttack-PG.
#[derive(Clone, Debug)]
pub struct PgGeAttackConfig {
    /// Trade-off between attacking the GCN and evading PGExplainer.
    pub lambda: f64,
    /// Computation-subgraph radius.
    pub hops: usize,
    /// Candidate shortlist size per outer iteration.
    pub candidate_pool: usize,
}

impl Default for PgGeAttackConfig {
    fn default() -> Self {
        Self {
            lambda: 20.0,
            hops: 2,
            candidate_pool: 48,
        }
    }
}

/// GEAttack driving a (trained, frozen) PGExplainer.
#[derive(Clone, Debug)]
pub struct PgGeAttack {
    /// Attack configuration.
    pub config: PgGeAttackConfig,
    /// The trained explainer the attacker wants to evade.
    pub explainer: PgExplainer,
}

impl PgGeAttack {
    /// Creates the attacker around a trained PGExplainer.
    pub fn new(explainer: PgExplainer, config: PgGeAttackConfig) -> Self {
        Self { config, explainer }
    }

    /// Gradient of the PGExplainer penalty with respect to the subgraph adjacency.
    ///
    /// The penalty sums the explainer's gates over the target's candidate /
    /// adversarial edges (entries where `B = 1`), evaluated on the current
    /// perturbed adjacency. Gradients flow through the GCN embeddings.
    fn penalty_gradient(
        &self,
        model: &geattack_gnn::Gcn,
        working: &Graph,
        target: usize,
        shortlist: &[usize],
        clean: &Graph,
        zeroed: &std::collections::HashSet<usize>,
    ) -> (Matrix, geattack_graph::ComputationSubgraph) {
        let sub = computation_subgraph(working, target, self.config.hops, shortlist);
        let tl = sub.target_local;
        let k = sub.num_nodes();

        // Penalty edges: the target paired with every subgraph node that is not a
        // clean-graph neighbor (B = 1), i.e. candidate and already-added
        // adversarial endpoints. `B = 11ᵀ − I − A` is tracked implicitly: an
        // entry is zero iff it is the diagonal, a clean edge, or was zeroed by
        // an earlier outer iteration.
        let mut penalty_edges = Vec::new();
        for j in 0..k {
            let g = sub.to_global(j);
            if j != tl && !clean.has_edge(target, g) && !zeroed.contains(&g) {
                let (u, v) = if tl < j { (tl, j) } else { (j, tl) };
                penalty_edges.push((u, v));
            }
        }
        if penalty_edges.is_empty() {
            return (Matrix::zeros(k, k), sub);
        }
        let edges = SubgraphEdges {
            src_indices: penalty_edges.iter().map(|&(u, _)| u).collect(),
            dst_indices: penalty_edges.iter().map(|&(_, v)| v).collect(),
            src_incidence: Matrix::from_fn(
                penalty_edges.len(),
                k,
                |e, c| if penalty_edges[e].0 == c { 1.0 } else { 0.0 },
            ),
            dst_incidence: Matrix::from_fn(
                penalty_edges.len(),
                k,
                |e, c| if penalty_edges[e].1 == c { 1.0 } else { 0.0 },
            ),
            edges: penalty_edges,
        };

        let tape = Tape::new();
        let a_sub = tape.input(sub.dense_adjacency());
        let x_sub = tape.constant(sub.features.clone());
        let gcn_params = model.insert_params_frozen(&tape);
        // Embeddings as a function of the (sub)adjacency, so ∂gate/∂Â is non-zero.
        let a_norm = nn::gcn_normalize(&tape, a_sub);
        let z = model.hidden_layer(&tape, a_norm, x_sub, &gcn_params);
        let pg_params = self.explainer.insert_params_frozen(&tape);
        let logits = PgExplainer::edge_logits(&tape, z, &edges, tl, &pg_params);
        let gates = tape.sigmoid(logits);
        let penalty = tape.mul_scalar(tape.sum_all(gates), self.config.lambda);
        let g = tape.value(grad(&tape, penalty, &[a_sub])[0]);
        (g, sub)
    }
}

impl TargetedAttack for PgGeAttack {
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation {
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Detail, "attack.pg-geattack");
        let mut zeroed = std::collections::HashSet::new();
        let mut perturbation = Perturbation::new();
        let mut working = ctx.graph.clone();
        let gradients = LossGradients::new(ctx.model, ctx.graph.features());

        for _ in 0..ctx.budget {
            let candidates = candidate_endpoints(&working, ctx.target, &[]);
            if candidates.is_empty() {
                break;
            }
            let g_attack = gradients.targeted(&working, ctx.target, ctx.target_label);
            let mut ranked = candidates.clone();
            ranked.sort_by(|&a, &bnd| {
                undirected_entry(&g_attack, ctx.target, a)
                    .partial_cmp(&undirected_entry(&g_attack, ctx.target, bnd))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let shortlist: Vec<usize> = ranked.into_iter().take(self.config.candidate_pool.max(1)).collect();

            let (g_penalty, sub) =
                self.penalty_gradient(ctx.model, &working, ctx.target, &shortlist, ctx.graph, &zeroed);
            let tl = sub.target_local;
            // Normalize both gradient components (see geattack.rs for the rationale).
            let attack_entry = |v: usize| undirected_entry(&g_attack, ctx.target, v);
            let penalty_entry = |v: usize| {
                sub.to_local(v)
                    .map(|lv| g_penalty[(tl, lv)] + g_penalty[(lv, tl)])
                    .unwrap_or(0.0)
            };
            let attack_scale = shortlist
                .iter()
                .map(|&v| attack_entry(v).abs())
                .fold(0.0f64, f64::max)
                .max(1e-12);
            let penalty_scale = shortlist.iter().map(|&v| penalty_entry(v).abs()).fold(0.0f64, f64::max);
            let penalty_weight = if penalty_scale > 1e-12 {
                self.config.lambda / (50.0 * penalty_scale)
            } else {
                0.0
            };
            let chosen = shortlist
                .into_iter()
                .min_by(|&a, &bnd| {
                    let score = |v: usize| attack_entry(v) / attack_scale + penalty_weight * penalty_entry(v);
                    score(a).partial_cmp(&score(bnd)).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("shortlist is non-empty");

            perturbation.add_edge(ctx.target, chosen);
            working.add_edge(ctx.target, chosen);
            zeroed.insert(chosen);
        }
        perturbation
    }

    fn name(&self) -> &'static str {
        "GEAttack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_explain::PgExplainerConfig;
    use geattack_gnn::{train, Gcn, TrainConfig};
    use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
    use geattack_graph::stratified_split;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(seed: u64) -> (Graph, Gcn, PgExplainer) {
        let cfg = GeneratorConfig::at_scale(0.06, seed);
        let graph = load(DatasetName::Citeseer, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(
            &graph,
            &split,
            &TrainConfig {
                epochs: 80,
                patience: None,
                seed,
                ..Default::default()
            },
        );
        let explainer = PgExplainer::train(
            &trained.model,
            &graph,
            &split.test,
            PgExplainerConfig {
                epochs: 2,
                training_instances: 6,
                ..Default::default()
            },
        );
        (graph, trained.model, explainer)
    }

    fn pick_victim(graph: &Graph, model: &Gcn) -> (usize, usize) {
        let preds = model.predict_labels(graph);
        let victim = (0..graph.num_nodes())
            .find(|&i| preds[i] == graph.label(i) && graph.degree(i) >= 2)
            .expect("no correctly classified node");
        (victim, (graph.label(victim) + 1) % graph.num_classes())
    }

    #[test]
    fn pg_geattack_attacks_the_model() {
        let (graph, model, explainer) = setup(71);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext::with_degree_budget(&model, &graph, victim, target_label);
        let attack = PgGeAttack::new(
            explainer,
            PgGeAttackConfig {
                candidate_pool: 24,
                ..Default::default()
            },
        );
        let p = attack.attack(&ctx);
        assert!(!p.is_empty());
        let attacked = p.apply(&graph);
        let before = model.predict_proba(&graph)[(victim, target_label)];
        let after = model.predict_proba(&attacked)[(victim, target_label)];
        assert!(after > before);
    }

    #[test]
    fn penalty_gradient_is_finite_and_shaped() {
        let (graph, model, explainer) = setup(72);
        let (victim, _) = pick_victim(&graph, &model);
        let attack = PgGeAttack::new(
            explainer,
            PgGeAttackConfig {
                candidate_pool: 8,
                ..Default::default()
            },
        );
        let shortlist: Vec<usize> = candidate_endpoints(&graph, victim, &[]).into_iter().take(8).collect();
        let zeroed = std::collections::HashSet::new();
        let (g, sub) = attack.penalty_gradient(&model, &graph, victim, &shortlist, &graph, &zeroed);
        assert_eq!(g.shape(), (sub.num_nodes(), sub.num_nodes()));
        assert!(!g.has_non_finite());
        // Some candidate entry must receive gradient signal from the explainer.
        let tl = sub.target_local;
        let any_signal = shortlist
            .iter()
            .filter_map(|&v| sub.to_local(v))
            .any(|lv| (g[(tl, lv)] + g[(lv, tl)]).abs() > 0.0);
        assert!(any_signal, "PGExplainer penalty produced no gradient on candidates");
    }

    #[test]
    fn added_edges_are_direct_and_within_budget() {
        let (graph, model, explainer) = setup(73);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        let attack = PgGeAttack::new(
            explainer,
            PgGeAttackConfig {
                candidate_pool: 16,
                ..Default::default()
            },
        );
        let p = attack.attack(&ctx);
        assert!(p.size() <= 2);
        for &(u, v) in p.added() {
            assert!(u == victim || v == victim);
        }
    }
}
