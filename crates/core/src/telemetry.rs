//! Engine-side timing types: per-cell phase breakdowns and the per-session
//! [`SweepTelemetry`] summary.
//!
//! The engine measures phases directly with the monotonic clock — independent
//! of whether a `geattack-telemetry` recorder is installed — so
//! `CellEvent::Finished` always carries a [`CellTiming`] and
//! `SweepHandle::wait()` always aggregates a [`SweepTelemetry`]. None of it
//! feeds back into the computation, and none of it is written into the report
//! itself: timings surface in the event stream, the serve protocol and the
//! `results/sweep_<name>.meta.json` sidecar, keeping reports byte-identical
//! run to run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use geattack_telemetry::Histogram;

/// Wall-clock breakdown of one executed prepared cell, in milliseconds.
///
/// `prepare` is the (possibly cache-served) preparation; `attack` is the
/// attackers' perturbation search; `explain` is the inspector explaining each
/// attacked victim; `detect` covers applying the perturbation, re-predicting
/// and scoring adversarial-edge detection. The last three are summed across
/// victims, so with parallel victim loops their sum can exceed the cell's
/// `total` wall-clock — they measure where compute went, not elapsed time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CellTiming {
    /// Preparation (dataset + GCN training, or a cache hit), ms.
    pub prepare_ms: f64,
    /// Attack-search time summed over victims and attackers, ms.
    pub attack_ms: f64,
    /// Explanation time summed over victims and attackers, ms.
    pub explain_ms: f64,
    /// Apply + re-predict + detection-scoring time summed over victims, ms.
    pub detect_ms: f64,
    /// Whole-cell wall-clock (prepare through last attack run), ms.
    pub total_ms: f64,
}

impl CellTiming {
    /// Accumulates another cell's timing into per-phase totals.
    pub fn accumulate(&mut self, other: &CellTiming) {
        self.prepare_ms += other.prepare_ms;
        self.attack_ms += other.attack_ms;
        self.explain_ms += other.explain_ms;
        self.detect_ms += other.detect_ms;
        self.total_ms += other.total_ms;
    }
}

/// Thread-safe nanosecond accumulators for the attack/explain/detect phases.
/// One lives per executing cell; victim threads add into it, the engine
/// converts the totals to a [`CellTiming`].
#[derive(Debug, Default)]
pub struct PhaseAccumulator {
    attack_ns: AtomicU64,
    explain_ns: AtomicU64,
    detect_ns: AtomicU64,
}

impl PhaseAccumulator {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds attack-search time.
    pub fn add_attack(&self, elapsed: Duration) {
        self.attack_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds explanation time.
    pub fn add_explain(&self, elapsed: Duration) {
        self.explain_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds apply/re-predict/detection time.
    pub fn add_detect(&self, elapsed: Duration) {
        self.detect_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The accumulated `(attack, explain, detect)` milliseconds.
    pub fn totals_ms(&self) -> (f64, f64, f64) {
        let to_ms = |ns: &AtomicU64| ns.load(Ordering::Relaxed) as f64 / 1e6;
        (to_ms(&self.attack_ns), to_ms(&self.explain_ns), to_ms(&self.detect_ns))
    }
}

/// Latency distribution summary (milliseconds), exported from a fixed-bucket
/// [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a histogram of cell latencies.
    pub fn from_histogram(histogram: &Histogram) -> Self {
        let snap = histogram.snapshot();
        LatencySummary {
            count: snap.count,
            p50: snap.p50,
            p95: snap.p95,
            p99: snap.p99,
            max: snap.max,
        }
    }
}

/// Aggregated timing of one sweep session, assembled by the engine's session
/// worker and carried on `SweepRun` into the `.meta.json` sidecar (and the
/// serve protocol's `done` event).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SweepTelemetry {
    /// Prepared cells this session owned.
    pub planned_cells: usize,
    /// Cells that finished successfully.
    pub finished_cells: usize,
    /// Cells that failed.
    pub failed_cells: usize,
    /// Per-phase totals summed over finished cells (`total_ms` here is the
    /// sum of cell wall-clocks, not the session's elapsed time).
    pub phase_totals: CellTiming,
    /// Distribution of per-cell wall-clock latencies.
    pub cell_latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_sums_phases_in_ms() {
        let acc = PhaseAccumulator::new();
        acc.add_attack(Duration::from_millis(2));
        acc.add_attack(Duration::from_millis(3));
        acc.add_explain(Duration::from_micros(1500));
        acc.add_detect(Duration::from_millis(1));
        let (attack, explain, detect) = acc.totals_ms();
        assert_eq!(attack, 5.0);
        assert_eq!(explain, 1.5);
        assert_eq!(detect, 1.0);
    }

    #[test]
    fn cell_timing_accumulates_per_phase() {
        let mut totals = CellTiming::default();
        totals.accumulate(&CellTiming {
            prepare_ms: 1.0,
            attack_ms: 2.0,
            explain_ms: 3.0,
            detect_ms: 4.0,
            total_ms: 10.0,
        });
        totals.accumulate(&CellTiming {
            prepare_ms: 0.5,
            attack_ms: 0.5,
            explain_ms: 0.5,
            detect_ms: 0.5,
            total_ms: 2.0,
        });
        assert_eq!(totals.prepare_ms, 1.5);
        assert_eq!(totals.total_ms, 12.0);
    }

    #[test]
    fn latency_summary_reads_histogram_percentiles() {
        let histogram = Histogram::new();
        for _ in 0..10 {
            histogram.record(8.0);
        }
        let summary = LatencySummary::from_histogram(&histogram);
        assert_eq!(summary.count, 10);
        assert_eq!(summary.max, 8.0);
        assert!(summary.p50 > 0.0 && summary.p50 <= 8.0);
    }
}
