//! Persisting [`Prepared`] experiments in an on-disk cache.
//!
//! Preparation — dataset generation, GCN training, victim selection and (for
//! PGExplainer inspections) explainer training — dominates sweep wall-clock,
//! and it is a pure function of a subset of [`PipelineConfig`]. This module
//! memoizes it: [`cache_key`] fingerprints exactly the config fields that
//! preparation depends on (plus a code-version salt), [`encode_prepared`] /
//! [`decode_prepared`] serialize the prepared state through the exact-bits
//! binary codec of `geattack-cache`, and [`prepare_cached`] ties it together
//! with corrupted-entry recovery: an entry that fails to decode is evicted and
//! recomputed, never trusted and never fatal.
//!
//! Two invariants make warm runs byte-identical to cold ones:
//!
//! * the codec round-trips every `f64` bit pattern exactly, so a decoded
//!   experiment produces the same attack outcomes as the freshly-computed one;
//! * the key covers *all* inputs of [`prepare`] — graph source, generator,
//!   training, victim-selection and (when inspecting with PGExplainer) the
//!   explainer-training config — and *only* those, so scheduling knobs like
//!   `parallel` share entries.
//!
//! Bump [`CODE_VERSION_SALT`] whenever the semantics of [`prepare`] change:
//! old entries then simply stop matching any key and are never resurrected.

use geattack_cache::{CacheStore, Decoder, Encoder, KeyHasher};
use geattack_explain::{PgExplainer, PgMlpParams};
use geattack_gnn::{Gcn, GcnParams};
use geattack_graph::{DataSplit, Graph};
use geattack_tensor::Matrix;

use crate::error::{GeError, Result};
use crate::pipeline::{prepare, ExplainerKind, GraphSource, PipelineConfig, Prepared};
use crate::targets::Victim;

/// Version salt folded into every cache key. Bump on any change to the
/// preparation pipeline's semantics (generators, training, victim selection,
/// PGExplainer training): old entries become unreachable instead of stale.
pub const CODE_VERSION_SALT: &str = "prepare-v2";

/// Version of the encoded payload layout, checked before decoding.
/// v2: adjacency as a count-prefixed sorted `u < v` edge list (O(|E|)) instead
/// of the dense n²-bit pack.
const PAYLOAD_VERSION: u32 = 2;

/// Content-hash key of the experiment `config` prepares, under the compiled-in
/// [`CODE_VERSION_SALT`].
pub fn cache_key(config: &PipelineConfig) -> String {
    cache_key_salted(config, CODE_VERSION_SALT)
}

/// [`cache_key`] under an explicit salt (tests use this to prove that bumping
/// the salt invalidates existing entries).
pub fn cache_key_salted(config: &PipelineConfig, salt: &str) -> String {
    let mut h = KeyHasher::new();
    h.write_str("geattack-prepared").write_str(salt);
    match &config.source {
        GraphSource::Dataset(dataset) => {
            h.write_str("dataset").write_str(dataset.as_str());
        }
        GraphSource::Scenario(spec) => {
            h.write_str("scenario")
                .write_str(&geattack_scenarios::canonical(&spec.family))
                .write_opt_f64(spec.scale)
                .write_opt_u64(spec.seed);
        }
    }
    let g = &config.generator;
    h.write_f64(g.scale)
        .write_usize(g.min_features)
        .write_usize(g.words_per_node)
        .write_f64(g.topic_affinity)
        .write_u64(g.seed);
    let t = &config.train;
    h.write_usize(t.hidden)
        .write_usize(t.epochs)
        .write_f64(t.lr)
        .write_f64(t.weight_decay)
        .write_opt_u64(t.patience.map(|p| p as u64))
        .write_u64(t.seed);
    // The f32 path trains different weights, so it needs its own entries; the
    // default f64 path writes nothing, keeping pre-existing keys reachable.
    if t.precision == geattack_gnn::Precision::F32 {
        h.write_str("precision-f32");
    }
    let v = &config.victims;
    h.write_usize(v.count)
        .write_usize(v.top_margin)
        .write_usize(v.bottom_margin)
        .write_u64(v.seed);
    h.write_str(config.explainer.name());
    if config.explainer == ExplainerKind::PgExplainer {
        // PGExplainer is trained during preparation, so its config shapes the
        // cached state. GNNExplainer runs per-victim at attack time and must
        // NOT be part of the key — tweaking it would needlessly cold-start.
        let p = &config.pgexplainer;
        h.write_usize(p.epochs)
            .write_f64(p.lr)
            .write_usize(p.hops)
            .write_usize(p.hidden)
            .write_f64(p.size_coeff)
            .write_f64(p.entropy_coeff)
            .write_usize(p.training_instances)
            .write_u64(p.seed);
    }
    h.finish()
}

fn put_matrix(enc: &mut Encoder, m: &Matrix) {
    enc.put_usize(m.rows());
    enc.put_usize(m.cols());
    enc.put_f64_slice(m.as_slice());
}

fn get_matrix(dec: &mut Decoder) -> Result<Matrix> {
    let rows = dec.get_usize().map_err(GeError::Cache)?;
    let cols = dec.get_usize().map_err(GeError::Cache)?;
    let data = dec.get_f64_vec().map_err(GeError::Cache)?;
    if rows.checked_mul(cols) != Some(data.len()) {
        return Err(GeError::Cache(format!(
            "matrix shape {rows}x{cols} does not match {} values",
            data.len()
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Serializes a prepared experiment's *state* (not its config — the decoder is
/// handed the config that, by key construction, produced this state).
pub fn encode_prepared(prepared: &Prepared) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(PAYLOAD_VERSION);

    // Graph: labels, features and the adjacency as a count-prefixed sorted
    // `u < v` edge list straight off the CSR — O(|E|) in the sparse regime
    // where the old n²-bit pack was the payload's quadratic term.
    let graph = &prepared.graph;
    let n = graph.num_nodes();
    enc.put_usize(n);
    enc.put_usize(graph.num_classes());
    enc.put_usize_slice(graph.labels());
    put_matrix(&mut enc, graph.features());
    let edges = graph.edges();
    enc.put_usize(edges.len());
    for &(u, v) in &edges {
        enc.put_usize(u);
        enc.put_usize(v);
    }

    // Model: the four GCN parameter matrices (dims are embedded per matrix).
    for m in prepared.model.params().to_vec() {
        put_matrix(&mut enc, &m);
    }

    // Split and victims.
    enc.put_usize_slice(&prepared.split.train);
    enc.put_usize_slice(&prepared.split.val);
    enc.put_usize_slice(&prepared.split.test);
    enc.put_usize(prepared.victims.len());
    for v in &prepared.victims {
        enc.put_usize(v.node);
        enc.put_usize(v.true_label);
        enc.put_usize(v.target_label);
        enc.put_usize(v.degree);
    }

    // PGExplainer MLP parameters, when one was trained.
    match &prepared.pg_explainer {
        None => enc.put_bool(false),
        Some(pg) => {
            enc.put_bool(true);
            let p = pg.params();
            for m in [&p.w_src, &p.w_dst, &p.w_tgt, &p.b1, &p.w2, &p.b2] {
                put_matrix(&mut enc, m);
            }
        }
    }
    enc.finish()
}

/// Rebuilds a [`Prepared`] from an encoded payload and the config that
/// produced it. Every structural invariant is re-checked with `Err` (never a
/// panic), so arbitrary corruption degrades into a cache miss.
pub fn decode_prepared(payload: &[u8], config: PipelineConfig) -> Result<Prepared> {
    let mut dec = Decoder::new(payload);
    let version = dec.get_u32().map_err(GeError::Cache)?;
    if version != PAYLOAD_VERSION {
        return Err(GeError::Cache(format!(
            "payload version {version}, expected {PAYLOAD_VERSION}"
        )));
    }

    let n = dec.get_usize().map_err(GeError::Cache)?;
    let n_classes = dec.get_usize().map_err(GeError::Cache)?;
    let labels = dec.get_usize_vec().map_err(GeError::Cache)?;
    if labels.len() != n || n_classes == 0 || labels.iter().any(|&l| l >= n_classes) {
        return Err(GeError::Cache("corrupt graph labels".to_string()));
    }
    let features = get_matrix(&mut dec)?;
    if features.rows() != n {
        return Err(GeError::Cache("corrupt feature matrix".to_string()));
    }
    let edge_count = dec.get_usize().map_err(GeError::Cache)?;
    if n > 0 && edge_count > n * (n - 1) / 2 {
        return Err(GeError::Cache("corrupt edge count".to_string()));
    }
    let mut edges = Vec::with_capacity(edge_count);
    let mut prev = None;
    for _ in 0..edge_count {
        let u = dec.get_usize().map_err(GeError::Cache)?;
        let v = dec.get_usize().map_err(GeError::Cache)?;
        // The encoder emits strictly ascending `u < v` pairs; anything else is
        // corruption and must degrade into a cache miss, not a panic inside
        // graph construction.
        if u >= v || v >= n {
            return Err(GeError::Cache("corrupt edge list entry".to_string()));
        }
        if prev.is_some() && Some((u, v)) <= prev {
            return Err(GeError::Cache("corrupt edge list order".to_string()));
        }
        prev = Some((u, v));
        edges.push((u, v));
    }
    let graph = Graph::from_edges(n, &edges, features, labels, n_classes);

    let mut params = Vec::with_capacity(4);
    for _ in 0..4 {
        params.push(get_matrix(&mut dec)?);
    }
    // Full cross-matrix shape check: a corrupt-but-internally-consistent
    // entry must fail here, not panic later inside a forward pass.
    let (w1, b1, w2, b2) = (&params[0], &params[1], &params[2], &params[3]);
    let hidden = w1.cols();
    let shapes_ok = w1.rows() == graph.num_features()
        && hidden > 0
        && b1.rows() == 1
        && b1.cols() == hidden
        && w2.rows() == hidden
        && w2.cols() == n_classes
        && b2.rows() == 1
        && b2.cols() == n_classes;
    if !shapes_ok {
        return Err(GeError::Cache("corrupt GCN parameters".to_string()));
    }
    let model = Gcn::from_params(GcnParams::from_vec(params));

    let split = DataSplit {
        train: dec.get_usize_vec().map_err(GeError::Cache)?,
        val: dec.get_usize_vec().map_err(GeError::Cache)?,
        test: dec.get_usize_vec().map_err(GeError::Cache)?,
    };
    if !split.is_partition_of(n) {
        return Err(GeError::Cache("corrupt data split".to_string()));
    }

    let victim_count = dec.get_usize().map_err(GeError::Cache)?;
    if victim_count > n {
        return Err(GeError::Cache("corrupt victim count".to_string()));
    }
    let mut victims = Vec::with_capacity(victim_count);
    for _ in 0..victim_count {
        let victim = Victim {
            node: dec.get_usize().map_err(GeError::Cache)?,
            true_label: dec.get_usize().map_err(GeError::Cache)?,
            target_label: dec.get_usize().map_err(GeError::Cache)?,
            degree: dec.get_usize().map_err(GeError::Cache)?,
        };
        if victim.node >= n || victim.true_label >= n_classes || victim.target_label >= n_classes {
            return Err(GeError::Cache("corrupt victim record".to_string()));
        }
        victims.push(victim);
    }

    let pg_explainer = if dec.get_bool().map_err(GeError::Cache)? {
        let mut ms = Vec::with_capacity(6);
        for _ in 0..6 {
            ms.push(get_matrix(&mut dec)?);
        }
        let [w_src, w_dst, w_tgt, b1, w2, b2]: [Matrix; 6] = ms.try_into().expect("six matrices");
        // MLP shape contract: three embedding_dim x h blocks feeding a 1 x h
        // bias and an h x 1 output layer, where the embedding dimension is
        // the GCN's hidden width (the explainer scores hidden-layer
        // embeddings) and h comes from the explainer config.
        let h = config.pgexplainer.hidden;
        let embedding_dim = model.hidden();
        let mlp_ok = [&w_src, &w_dst, &w_tgt]
            .iter()
            .all(|w| w.rows() == embedding_dim && w.cols() == h)
            && b1.rows() == 1
            && b1.cols() == h
            && w2.rows() == h
            && w2.cols() == 1
            && b2.rows() == 1
            && b2.cols() == 1;
        if !mlp_ok {
            return Err(GeError::Cache("corrupt PGExplainer parameters".to_string()));
        }
        Some(PgExplainer::from_parts(
            config.pgexplainer.clone(),
            PgMlpParams {
                w_src,
                w_dst,
                w_tgt,
                b1,
                w2,
                b2,
            },
        ))
    } else {
        None
    };
    if (config.explainer == ExplainerKind::PgExplainer) != pg_explainer.is_some() {
        return Err(GeError::Cache(
            "cached explainer state does not match the requested inspector".to_string(),
        ));
    }
    dec.finish().map_err(GeError::Cache)?;

    Ok(Prepared::from_parts(graph, model, split, victims, pg_explainer, config))
}

/// [`prepare`] with optional on-disk memoization: on a hit the experiment is
/// decoded instead of retrained; on a miss (or after evicting a corrupt
/// entry) it is computed and persisted. Without a store this is exactly
/// [`prepare`].
pub fn prepare_cached(config: PipelineConfig, cache: Option<&CacheStore>) -> Result<Prepared> {
    prepare_cached_salted(config, cache, CODE_VERSION_SALT)
}

/// [`prepare_cached`] under an explicit code-version salt.
pub fn prepare_cached_salted(config: PipelineConfig, cache: Option<&CacheStore>, salt: &str) -> Result<Prepared> {
    let Some(store) = cache else {
        return prepare(config);
    };
    let key = cache_key_salted(&config, salt);
    if let Some(payload) = store.load(&key) {
        let decoded = {
            let _span = geattack_telemetry::span(geattack_telemetry::Level::Phase, "persist.decode");
            decode_prepared(&payload, config.clone())
        };
        match decoded {
            Ok(prepared) => {
                store.record_hit();
                store
                    .metrics()
                    .counter("persist.bytes_decoded")
                    .add(payload.len() as u64);
                return Ok(prepared);
            }
            Err(e) => {
                eprintln!("cache: evicting corrupt entry {key}: {e}");
                store.evict(&key);
            }
        }
    }
    store.record_miss();
    let prepared = prepare(config)?;
    let payload = {
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Phase, "persist.encode");
        encode_prepared(&prepared)
    };
    store
        .metrics()
        .counter("persist.bytes_encoded")
        .add(payload.len() as u64);
    if let Err(e) = store.store(&key, &payload) {
        eprintln!("cache: warning: could not persist entry {key}: {e}");
    }
    Ok(prepared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::summarize_run;
    use crate::pipeline::{run_attacker_kind, AttackerKind};
    use geattack_graph::datasets::{DatasetName, GeneratorConfig};

    fn tiny_config(seed: u64) -> PipelineConfig {
        let mut config = PipelineConfig::quick(DatasetName::Cora, seed);
        config.generator = GeneratorConfig::at_scale(0.06, seed);
        config.set_victim_count(4);
        config.gnnexplainer.epochs = 10;
        config
    }

    /// A fresh store under the system temp dir, cleaned up on drop.
    struct TempStore {
        store: CacheStore,
    }

    impl TempStore {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("geattack-persist-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Self {
                store: CacheStore::open(dir).expect("temp cache opens"),
            }
        }
    }

    impl Drop for TempStore {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(self.store.dir());
        }
    }

    #[test]
    fn cache_key_tracks_preparation_inputs_only() {
        let base = cache_key(&tiny_config(7));
        assert_eq!(base.len(), 32);
        assert_eq!(base, cache_key(&tiny_config(7)), "keys are deterministic");
        assert_ne!(base, cache_key(&tiny_config(8)), "seed changes the key");

        let mut other = tiny_config(7);
        other.train.hidden += 1;
        assert_ne!(base, cache_key(&other), "training config changes the key");

        let mut scheduling = tiny_config(7);
        scheduling.parallel = !scheduling.parallel;
        scheduling.detection_k += 1;
        scheduling.gnnexplainer.epochs += 5;
        assert_eq!(
            base,
            cache_key(&scheduling),
            "scheduling and attack-time knobs must not change the key"
        );

        let mut f32_train = tiny_config(7);
        f32_train.train.precision = geattack_gnn::Precision::F32;
        assert_ne!(
            base,
            cache_key(&f32_train),
            "f32 training trains different weights and needs its own entries"
        );

        let mut pg = tiny_config(7);
        pg.explainer = ExplainerKind::PgExplainer;
        let pg_base = cache_key(&pg);
        assert_ne!(base, pg_base, "the inspector kind changes the key");
        let mut pg2 = pg.clone();
        pg2.pgexplainer.epochs += 1;
        assert_ne!(
            pg_base,
            cache_key(&pg2),
            "PGExplainer training config is part of the key"
        );

        assert_ne!(
            cache_key_salted(&tiny_config(7), "prepare-v2"),
            cache_key_salted(&tiny_config(7), "prepare-v3"),
            "bumping the version salt invalidates every key"
        );
    }

    #[test]
    fn encode_decode_round_trips_the_experiment_exactly() {
        let prepared = prepare(tiny_config(11)).unwrap();
        let payload = encode_prepared(&prepared);
        let decoded = decode_prepared(&payload, tiny_config(11)).expect("payload decodes");

        assert_eq!(decoded.graph.edges(), prepared.graph.edges());
        assert_eq!(decoded.graph.features(), prepared.graph.features());
        assert_eq!(decoded.graph.labels(), prepared.graph.labels());
        assert_eq!(decoded.split, prepared.split);
        assert_eq!(decoded.victims.len(), prepared.victims.len());
        for (a, b) in decoded.victims.iter().zip(&prepared.victims) {
            assert_eq!(
                (a.node, a.true_label, a.target_label, a.degree),
                (b.node, b.true_label, b.target_label, b.degree)
            );
        }
        // The decisive equivalence: attacking the decoded experiment produces
        // bit-identical outcomes to attacking the original.
        let fresh = run_attacker_kind(&prepared, AttackerKind::FgaT).unwrap();
        let cached = run_attacker_kind(&decoded, AttackerKind::FgaT).unwrap();
        let a = summarize_run("FGA-T", &fresh);
        let b = summarize_run("FGA-T", &cached);
        assert_eq!(a.asr_t.to_bits(), b.asr_t.to_bits());
        assert_eq!(a.f1.to_bits(), b.f1.to_bits());
        assert_eq!(a.ndcg.to_bits(), b.ndcg.to_bits());
    }

    #[test]
    fn pg_explainer_state_round_trips() {
        let mut config = tiny_config(13);
        config.explainer = ExplainerKind::PgExplainer;
        config.pgexplainer.epochs = 1;
        config.pgexplainer.training_instances = 4;
        let prepared = prepare(config.clone()).unwrap();
        let decoded = decode_prepared(&encode_prepared(&prepared), config.clone()).expect("decodes");
        let original = prepared.pg_explainer.as_ref().expect("trained");
        let restored = decoded.pg_explainer.as_ref().expect("restored");
        assert_eq!(restored.params().w2, original.params().w2);
        assert_eq!(restored.params().b1, original.params().b1);

        // A payload without PGExplainer state must not satisfy a PG config.
        let gnn_payload = encode_prepared(&prepare(tiny_config(13)).unwrap());
        let err = decode_prepared(&gnn_payload, config).map(|_| ()).unwrap_err();
        assert!(
            err.to_string().contains("does not match the requested inspector"),
            "{err}"
        );
    }

    #[test]
    fn corrupt_payloads_error_instead_of_panicking() {
        let prepared = prepare(tiny_config(17)).unwrap();
        let payload = encode_prepared(&prepared);
        assert!(decode_prepared(&payload[..payload.len() / 2], tiny_config(17)).is_err());
        assert!(decode_prepared(&[], tiny_config(17)).is_err());
        let mut flipped = payload.clone();
        // Flip a label byte near the front (inside the label vector).
        flipped[30] ^= 0xff;
        assert!(decode_prepared(&flipped, tiny_config(17)).is_err());
    }

    #[test]
    fn byte_flips_anywhere_never_panic_the_decoder() {
        // Corruption-recovery property of the edge-list codec: flipping a byte
        // at any position — version, counts, edge entries, matrices — must
        // yield either a clean `Err` (a cache miss) or a structurally valid
        // decode, never a panic. Positions are strided to keep the sweep fast.
        let prepared = prepare(tiny_config(37)).unwrap();
        let payload = encode_prepared(&prepared);
        for pos in (0..payload.len()).step_by(97) {
            let mut flipped = payload.clone();
            flipped[pos] ^= 0xff;
            let result = std::panic::catch_unwind(|| decode_prepared(&flipped, tiny_config(37)).map(|_| ()));
            assert!(result.is_ok(), "decoder panicked on byte flip at {pos}");
        }
    }

    #[test]
    fn self_consistent_but_wrong_shapes_are_rejected() {
        // A transposed weight matrix survives get_matrix's rows*cols check
        // (same element count) — only the cross-matrix shape validation can
        // catch it, turning a would-be forward-pass panic into a cache miss.
        let prepared = prepare(tiny_config(31)).unwrap();
        let p = prepared.model.params();
        let transposed = Matrix::from_vec(p.w2.cols(), p.w2.rows(), p.w2.as_slice().to_vec());
        let bad_model = Gcn::from_params(GcnParams {
            w1: p.w1.clone(),
            b1: p.b1.clone(),
            w2: transposed,
            b2: p.b2.clone(),
        });
        let tampered = Prepared::from_parts(
            prepared.graph.as_ref().clone(),
            bad_model,
            prepared.split.clone(),
            prepared.victims.clone(),
            None,
            tiny_config(31),
        );
        let err = decode_prepared(&encode_prepared(&tampered), tiny_config(31))
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("corrupt GCN parameters"), "{err}");

        // Same trap for the PGExplainer MLP output layer (h x 1 -> 1 x h).
        let mut config = tiny_config(31);
        config.explainer = ExplainerKind::PgExplainer;
        config.pgexplainer.epochs = 1;
        config.pgexplainer.training_instances = 4;
        let prepared = prepare(config.clone()).unwrap();
        let pg = prepared.pg_explainer.clone().unwrap();
        let mlp = pg.params();
        let bad_pg = PgExplainer::from_parts(
            config.pgexplainer.clone(),
            PgMlpParams {
                w_src: mlp.w_src.clone(),
                w_dst: mlp.w_dst.clone(),
                w_tgt: mlp.w_tgt.clone(),
                b1: mlp.b1.clone(),
                w2: Matrix::from_vec(mlp.w2.cols(), mlp.w2.rows(), mlp.w2.as_slice().to_vec()),
                b2: mlp.b2.clone(),
            },
        );
        let tampered = Prepared::from_parts(
            prepared.graph.as_ref().clone(),
            prepared.model.as_ref().clone(),
            prepared.split.clone(),
            prepared.victims.clone(),
            Some(bad_pg),
            config.clone(),
        );
        let err = decode_prepared(&encode_prepared(&tampered), config)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("corrupt PGExplainer parameters"), "{err}");
    }

    #[test]
    fn prepare_cached_hits_after_a_cold_miss() {
        let t = TempStore::new("hit");
        let cold = prepare_cached(tiny_config(19), Some(&t.store)).unwrap();
        let counters = t.store.counters();
        assert_eq!((counters.hits, counters.misses), (0, 1));
        assert_eq!(t.store.entry_count(), 1);

        let warm = prepare_cached(tiny_config(19), Some(&t.store)).unwrap();
        let counters = t.store.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
        assert_eq!(warm.graph.edges(), cold.graph.edges());
        assert_eq!(warm.victims.len(), cold.victims.len());

        // No store → plain prepare, no counters involved.
        let plain = prepare_cached(tiny_config(19), None).unwrap();
        assert_eq!(plain.victims.len(), cold.victims.len());
    }

    #[test]
    fn corrupted_entry_is_evicted_and_recomputed() {
        let t = TempStore::new("corrupt");
        let cold = prepare_cached(tiny_config(23), Some(&t.store)).unwrap();
        let key = cache_key(&tiny_config(23));
        // Truncate the committed entry to garbage (keep the envelope valid so
        // the *payload* decoder is what trips).
        let path = t.store.entry_path(&key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..20]).unwrap();

        let recovered = prepare_cached(tiny_config(23), Some(&t.store)).unwrap();
        let counters = t.store.counters();
        assert_eq!(counters.evictions, 1, "corrupt entry evicted");
        assert_eq!(counters.misses, 2, "recomputed after eviction");
        assert_eq!(recovered.graph.edges(), cold.graph.edges());
        // The recomputed entry was re-persisted and now hits.
        let warm = prepare_cached(tiny_config(23), Some(&t.store)).unwrap();
        assert_eq!(t.store.counters().hits, 1);
        assert_eq!(warm.split, cold.split);
    }

    #[test]
    fn version_salt_bump_invalidates_without_evicting() {
        let t = TempStore::new("salt");
        prepare_cached_salted(tiny_config(29), Some(&t.store), "prepare-v2").unwrap();
        prepare_cached_salted(tiny_config(29), Some(&t.store), "prepare-v3").unwrap();
        let counters = t.store.counters();
        assert_eq!(counters.hits, 0, "a new salt never hits old entries");
        assert_eq!(counters.misses, 2);
        assert_eq!(counters.evictions, 0, "old entries are orphaned, not destroyed");
        assert_eq!(t.store.entry_count(), 2, "both salted entries coexist");
        // Back on the old salt, the original entry still hits.
        prepare_cached_salted(tiny_config(29), Some(&t.store), "prepare-v2").unwrap();
        assert_eq!(t.store.counters().hits, 1);
    }
}
