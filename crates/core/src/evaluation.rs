//! Joint-attack evaluation: attack success rates plus explainer-based detection.

use serde::{Deserialize, Serialize};

use geattack_explain::{detection_scores, DetectionScores, Explainer};
use geattack_gnn::{BatchedForward, Gcn};
use geattack_graph::{Graph, Perturbation};

use crate::targets::Victim;

/// Outcome of attacking a single victim with a single attacker.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Victim node id.
    pub node: usize,
    /// Clean-graph degree of the victim.
    pub degree: usize,
    /// Number of adversarial edges actually inserted.
    pub perturbation_size: usize,
    /// `true` when the attacked prediction differs from the ground-truth label
    /// (the ASR numerator).
    pub success_any: bool,
    /// `true` when the attacked prediction equals the attacker's specific target
    /// label (the ASR-T numerator).
    pub success_target: bool,
    /// Detection scores of the adversarial edges in the explainer's output.
    pub detection: DetectionScores,
}

/// Applies a perturbation, queries the model and the explainer, and produces the
/// full outcome record for one victim.
///
/// `detection_k` is the metric cut-off `K` (15 in the paper) and
/// `explanation_size` is the explanation subgraph size `L` (20 by default): the
/// explainer's ranking is truncated to its top-`L` edges before the top-`K`
/// detection metrics are computed, mirroring the paper's protocol.
pub fn evaluate_attack(
    model: &Gcn,
    graph: &Graph,
    explainer: &dyn Explainer,
    victim: &Victim,
    perturbation: &Perturbation,
    detection_k: usize,
    explanation_size: usize,
) -> AttackOutcome {
    evaluate_attack_instrumented(
        model,
        graph,
        explainer,
        victim,
        perturbation,
        detection_k,
        explanation_size,
        None,
    )
}

/// [`evaluate_attack`] that also accumulates explain/detect wall-clock into
/// `phases` when given: "explain" is the inspector explaining the attacked
/// prediction, "detect" is applying the perturbation, re-predicting and
/// scoring adversarial-edge detection. The computation is identical either
/// way.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_attack_instrumented(
    model: &Gcn,
    graph: &Graph,
    explainer: &dyn Explainer,
    victim: &Victim,
    perturbation: &Perturbation,
    detection_k: usize,
    explanation_size: usize,
    phases: Option<&crate::telemetry::PhaseAccumulator>,
) -> AttackOutcome {
    let detect_started = std::time::Instant::now();
    let attacked = perturbation.apply(graph);
    // One shared forward on the attacked graph serves the success check *and*
    // whatever full-graph quantities the explainer needs (PGExplainer reads the
    // first-layer embeddings from it instead of re-running the layer).
    let forward = BatchedForward::new(model, &attacked);
    let predicted = forward.predicted_class(victim.node);
    let success_any = predicted != victim.true_label;
    let success_target = predicted == victim.target_label;
    if let Some(phases) = phases {
        phases.add_detect(detect_started.elapsed());
    }

    // The explainer explains the class the model predicts on the attacked
    // graph — exactly `predicted`, so the forward pass is not repeated.
    let explain_started = std::time::Instant::now();
    let explanation = {
        let _span = geattack_telemetry::span_labeled(
            geattack_telemetry::Level::Detail,
            "explain.victim",
            victim.node.to_string(),
        );
        explainer
            .explain_class_with_forward(model, &attacked, victim.node, predicted, &forward)
            .truncated(explanation_size)
    };
    if let Some(phases) = phases {
        phases.add_explain(explain_started.elapsed());
    }

    let detect_started = std::time::Instant::now();
    let detection = detection_scores(&explanation, perturbation.added(), detection_k);
    if let Some(phases) = phases {
        phases.add_detect(detect_started.elapsed());
    }

    AttackOutcome {
        node: victim.node,
        degree: victim.degree,
        perturbation_size: perturbation.size(),
        success_any,
        success_target,
        detection,
    }
}

/// Mean and standard deviation of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation (the paper reports ±std over runs).
    pub std: f64,
}

impl MeanStd {
    /// Computes mean and (population) standard deviation of `values`.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self { mean, std: var.sqrt() }
    }
}

/// Per-attacker summary over one run's victims (all metrics in `[0, 1]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunSummary {
    /// Attacker name.
    pub attacker: String,
    /// Number of victims evaluated.
    pub victims: usize,
    /// Attack success rate toward any wrong label.
    pub asr: f64,
    /// Attack success rate toward the specific target label.
    pub asr_t: f64,
    /// Mean Precision@K of adversarial-edge detection.
    pub precision: f64,
    /// Mean Recall@K.
    pub recall: f64,
    /// Mean F1@K.
    pub f1: f64,
    /// Mean NDCG@K.
    pub ndcg: f64,
}

/// Aggregates the outcomes of one run into a [`RunSummary`].
pub fn summarize_run(attacker: &str, outcomes: &[AttackOutcome]) -> RunSummary {
    let n = outcomes.len().max(1) as f64;
    RunSummary {
        attacker: attacker.to_string(),
        victims: outcomes.len(),
        asr: outcomes.iter().filter(|o| o.success_any).count() as f64 / n,
        asr_t: outcomes.iter().filter(|o| o.success_target).count() as f64 / n,
        precision: outcomes.iter().map(|o| o.detection.precision).sum::<f64>() / n,
        recall: outcomes.iter().map(|o| o.detection.recall).sum::<f64>() / n,
        f1: outcomes.iter().map(|o| o.detection.f1).sum::<f64>() / n,
        ndcg: outcomes.iter().map(|o| o.detection.ndcg).sum::<f64>() / n,
    }
}

/// Per-attacker result aggregated over several runs (mean ± std, as reported in
/// Tables 1 and 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AggregatedSummary {
    /// Attacker name.
    pub attacker: String,
    /// Number of runs aggregated.
    pub runs: usize,
    /// ASR over runs.
    pub asr: MeanStd,
    /// ASR-T over runs.
    pub asr_t: MeanStd,
    /// Precision@K over runs.
    pub precision: MeanStd,
    /// Recall@K over runs.
    pub recall: MeanStd,
    /// F1@K over runs.
    pub f1: MeanStd,
    /// NDCG@K over runs.
    pub ndcg: MeanStd,
}

/// Aggregates per-run summaries of the same attacker.
pub fn aggregate_runs(summaries: &[RunSummary]) -> AggregatedSummary {
    assert!(!summaries.is_empty(), "cannot aggregate zero runs");
    let attacker = summaries[0].attacker.clone();
    assert!(
        summaries.iter().all(|s| s.attacker == attacker),
        "aggregate_runs mixes different attackers"
    );
    let collect = |f: fn(&RunSummary) -> f64| MeanStd::of(&summaries.iter().map(f).collect::<Vec<_>>());
    AggregatedSummary {
        attacker,
        runs: summaries.len(),
        asr: collect(|s| s.asr),
        asr_t: collect(|s| s.asr_t),
        precision: collect(|s| s.precision),
        recall: collect(|s| s.recall),
        f1: collect(|s| s.f1),
        ndcg: collect(|s| s.ndcg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(success_any: bool, success_target: bool, f1: f64) -> AttackOutcome {
        AttackOutcome {
            node: 0,
            degree: 2,
            perturbation_size: 2,
            success_any,
            success_target,
            detection: DetectionScores {
                precision: f1,
                recall: f1,
                f1,
                ndcg: f1,
            },
        }
    }

    #[test]
    fn mean_std_basics() {
        let m = MeanStd::of(&[1.0, 3.0]);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.std - 1.0).abs() < 1e-12);
        assert_eq!(MeanStd::of(&[]), MeanStd::default());
    }

    #[test]
    fn summarize_run_rates() {
        let outcomes = vec![
            outcome(true, true, 0.4),
            outcome(true, false, 0.2),
            outcome(false, false, 0.0),
        ];
        let s = summarize_run("FGA-T", &outcomes);
        assert_eq!(s.victims, 3);
        assert!((s.asr - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.asr_t - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.f1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn aggregate_runs_mean_and_std() {
        let a = summarize_run("X", &[outcome(true, true, 0.4)]);
        let b = summarize_run("X", &[outcome(false, false, 0.2)]);
        let agg = aggregate_runs(&[a, b]);
        assert_eq!(agg.runs, 2);
        assert!((agg.asr.mean - 0.5).abs() < 1e-12);
        assert!((agg.f1.mean - 0.3).abs() < 1e-12);
        assert!(agg.f1.std > 0.0);
    }

    #[test]
    #[should_panic(expected = "mixes different attackers")]
    fn aggregate_rejects_mixed_attackers() {
        let a = summarize_run("X", &[outcome(true, true, 0.4)]);
        let b = summarize_run("Y", &[outcome(true, true, 0.4)]);
        let _ = aggregate_runs(&[a, b]);
    }
}
