//! The one error type of the experiment engine.
//!
//! Every fallible operation on the user-input path — resolving names against a
//! registry, validating specs and shards, loading graph sources, preparing
//! experiments, caching, merging shard reports, running sweep sessions —
//! returns a [`GeError`] instead of panicking, so a long-lived host (the
//! `geattack-serve` daemon, a notebook, a test harness) can report the failure
//! and keep going. Internal invariants (index arithmetic, shapes produced by
//! our own code) stay as `debug_assert`s or documented panics; `GeError` is
//! reserved for inputs the caller controls.

use std::fmt;

/// `Result` defaulting to the engine's error type. The second parameter stays
/// overridable so modules that mix engine errors with derive-generated serde
/// code keep compiling against the prelude-shaped `Result<T, E>`.
pub type Result<T, E = GeError> = std::result::Result<T, E>;

/// One failed cell of a sweep session: the prepared-cell grid position plus
/// the structured error kind and the rendered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellFailure {
    /// Deterministic grid position of the prepared cell that failed.
    pub position: usize,
    /// Machine-readable classification ([`GeError::kind`] of the cell error).
    pub kind: &'static str,
    /// Rendered error message.
    pub error: String,
}

impl CellFailure {
    /// Captures a cell error's kind and rendered message.
    pub fn new(position: usize, error: &GeError) -> Self {
        CellFailure {
            position,
            kind: error.kind(),
            error: error.to_string(),
        }
    }
}

/// Everything that can go wrong on the engine's user-input path.
#[derive(Clone, Debug, PartialEq)]
pub enum GeError {
    /// A name failed to resolve against a registry (attacker, explainer or
    /// graph family); carries the known names for the error message.
    UnknownName {
        /// What kind of name was being resolved (`"attacker"`, ...).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
        /// Registry contents at resolution time.
        known: Vec<String>,
    },
    /// A registration collided with an existing registry entry.
    Registry(String),
    /// A scenario or sweep spec failed validation.
    InvalidSpec(String),
    /// A graph source failed to generate or load.
    GraphSource(String),
    /// Experiment preparation failed.
    Prepare(String),
    /// The on-disk cache refused an operation (opening the store, I/O).
    /// Corrupt *entries* never surface here — they degrade into misses.
    Cache(String),
    /// Shard bookkeeping failed: parse, validation, or merge.
    Shard(String),
    /// One or more cells of a sweep session failed. The session itself ran to
    /// completion — every failure was also streamed as a `CellEvent::Failed`.
    CellsFailed(Vec<CellFailure>),
    /// A serve-protocol request could not be understood.
    Protocol(String),
    /// Fleet orchestration failed: a shard exhausted every worker (connect,
    /// stream or validation failures on each attempt) or no live workers
    /// remain. Completed shard artifacts are preserved on disk for manual
    /// `geattack-merge` before this surfaces.
    Fleet(String),
    /// The session's cancellation token was set before this cell ran; the
    /// cell was skipped, not executed. Carries a human-readable reason
    /// (`"client disconnected"`, `"cancel requested"`, ...).
    Cancelled(String),
}

impl GeError {
    /// Convenience constructor for registry misses.
    pub fn unknown(kind: &'static str, name: impl Into<String>, known: Vec<String>) -> Self {
        GeError::UnknownName {
            kind,
            name: name.into(),
            known,
        }
    }

    /// Stable machine-readable classification of the error variant, used by
    /// the serve event stream and telemetry to classify failures without
    /// parsing display strings.
    pub fn kind(&self) -> &'static str {
        match self {
            GeError::UnknownName { .. } => "unknown-name",
            GeError::Registry(_) => "registry",
            GeError::InvalidSpec(_) => "invalid-spec",
            GeError::GraphSource(_) => "graph-source",
            GeError::Prepare(_) => "prepare",
            GeError::Cache(_) => "cache",
            GeError::Shard(_) => "shard",
            GeError::CellsFailed(_) => "cells-failed",
            GeError::Protocol(_) => "protocol",
            GeError::Fleet(_) => "fleet",
            GeError::Cancelled(_) => "cancelled",
        }
    }
}

impl fmt::Display for GeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeError::UnknownName { kind, name, known } => {
                write!(f, "unknown {kind} `{name}` (known: {})", known.join(", "))
            }
            GeError::Registry(m) => write!(f, "registry error: {m}"),
            GeError::InvalidSpec(m) => write!(f, "invalid spec: {m}"),
            GeError::GraphSource(m) => write!(f, "cannot load graph source: {m}"),
            GeError::Prepare(m) => write!(f, "preparation failed: {m}"),
            GeError::Cache(m) => write!(f, "cache error: {m}"),
            GeError::Shard(m) => write!(f, "{m}"),
            GeError::CellsFailed(failures) => {
                write!(f, "{} cell(s) failed:", failures.len())?;
                for failure in failures {
                    write!(f, " [cell {}] {};", failure.position, failure.error)?;
                }
                Ok(())
            }
            GeError::Protocol(m) => write!(f, "protocol error: {m}"),
            GeError::Fleet(m) => write!(f, "fleet error: {m}"),
            GeError::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for GeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_message_and_known_names() {
        let err = GeError::unknown("attacker", "metattack", vec!["FGA".into(), "RNA".into()]);
        let text = err.to_string();
        assert!(text.contains("unknown attacker `metattack`"), "{text}");
        assert!(text.contains("FGA, RNA"), "{text}");

        let err = GeError::CellsFailed(vec![CellFailure {
            position: 3,
            kind: "prepare",
            error: "boom".into(),
        }]);
        let text = err.to_string();
        assert!(
            text.contains("1 cell(s) failed") && text.contains("[cell 3] boom"),
            "{text}"
        );

        assert!(GeError::Shard("missing shard 1/2".into())
            .to_string()
            .contains("missing"));
    }

    #[test]
    fn kinds_classify_every_variant_and_cell_failures_capture_them() {
        assert_eq!(GeError::Prepare("x".into()).kind(), "prepare");
        assert_eq!(GeError::Cache("x".into()).kind(), "cache");
        assert_eq!(GeError::unknown("attacker", "zz", vec![]).kind(), "unknown-name");
        let failure = CellFailure::new(7, &GeError::GraphSource("nope".into()));
        assert_eq!(failure.position, 7);
        assert_eq!(failure.kind, "graph-source");
        assert!(failure.error.contains("nope"));
        assert_eq!(GeError::CellsFailed(vec![failure]).kind(), "cells-failed");
        let cancelled = GeError::Cancelled("client disconnected".into());
        assert_eq!(cancelled.kind(), "cancelled");
        assert!(cancelled.to_string().contains("cancelled: client disconnected"));
        let fleet = GeError::Fleet("shard 1/3 exhausted all 2 workers".into());
        assert_eq!(fleet.kind(), "fleet");
        assert!(fleet.to_string().contains("fleet error: shard 1/3"));
    }
}
