//! # geattack-core
//!
//! The paper's primary contribution — **GEAttack**, the joint attack on a graph
//! neural network and its explanations — together with the experiment pipeline
//! that reproduces the paper's evaluation protocol.
//!
//! * [`geattack`] — Algorithm 1: greedy edge insertion driven by the joint loss
//!   `L_GNN + λ·Σ M_A^T[i,j]·B[i,j]`, where the explainer mask `M_A^T` is obtained
//!   by differentiable inner gradient-descent steps (double backward).
//! * [`pg_geattack`] — the PGExplainer variant of the joint attack (Section 5.3).
//! * [`targets`] — victim selection and target-label assignment (Section 5.1).
//! * [`pipeline`] — dataset → GCN → victims → attack → evaluation.
//! * [`evaluation`] — ASR / ASR-T and detection aggregation (mean ± std).
//! * [`report`] — markdown tables and figure series matching the paper's format.
//!
//! * [`engine`] — the registry-driven experiment [`engine::Engine`]: streaming
//!   sweep sessions, shard slicing, cost-ordered scheduling, shared caching.
//! * [`registry`] — open attacker/explainer registries (the paper's kinds are
//!   the builtin registrations).
//! * [`sweep`] — sweep grids, shard reports and strict merge reassembly.
//! * [`error`] — the [`error::GeError`] every user-input path returns instead
//!   of panicking.
//! * [`telemetry`] — engine-side timing types ([`telemetry::CellTiming`],
//!   [`telemetry::SweepTelemetry`]) surfaced on events and `.meta.json`
//!   sidecars; span/metric plumbing lives in the `geattack-telemetry` crate.
//!
//! ## Quickstart
//!
//! ```no_run
//! use geattack_core::pipeline::{prepare, run_attacker_kind, AttackerKind, PipelineConfig};
//! use geattack_core::evaluation::summarize_run;
//! use geattack_graph::DatasetName;
//!
//! let prepared = prepare(PipelineConfig::quick(DatasetName::Cora, 0)).unwrap();
//! let outcomes = run_attacker_kind(&prepared, AttackerKind::GeAttack).unwrap();
//! let summary = summarize_run("GEAttack", &outcomes);
//! println!("ASR-T = {:.1}%, F1@15 = {:.1}%", summary.asr_t * 100.0, summary.f1 * 100.0);
//! ```

pub mod engine;
pub mod error;
pub mod evaluation;
pub mod geattack;
pub mod persist;
pub mod pg_geattack;
pub mod pipeline;
pub mod registry;
pub mod report;
pub mod sweep;
pub mod targets;
pub mod telemetry;

pub use engine::{CancelToken, CellEvent, Engine, SweepHandle};
pub use error::{CellFailure, GeError};
pub use evaluation::{
    aggregate_runs, evaluate_attack_instrumented, summarize_run, AggregatedSummary, AttackOutcome, MeanStd, RunSummary,
};
pub use geattack::{GeAttack, GeAttackConfig};
pub use persist::{cache_key, prepare_cached, CODE_VERSION_SALT};
pub use pg_geattack::{PgGeAttack, PgGeAttackConfig};
pub use pipeline::{
    prepare, run_attacker, run_attacker_instrumented, run_attacker_kind, run_attacker_with_budget, AttackerKind,
    BudgetRule, ExplainerKind, GraphSource, PipelineConfig, Prepared,
};
pub use registry::{AttackerPlugin, AttackerRegistry, ExplainerPlugin, ExplainerRegistry};
pub use report::{format_percent, Figure, Series, TableBlock};
pub use sweep::{
    estimated_cost, merge_shards, PlannedCell, Shard, ShardReport, SweepAggregate, SweepCell, SweepReport, SweepRun,
};
pub use targets::{
    assign_target_labels, select_victims, select_victims_from_probs, victims_with_degree, Victim, VictimSelectionConfig,
};
pub use telemetry::{CellTiming, LatencySummary, PhaseAccumulator, SweepTelemetry};
