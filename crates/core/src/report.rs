//! Rendering experiment results as the tables and figure series the paper reports.

use serde::{Deserialize, Serialize};

use crate::evaluation::{AggregatedSummary, MeanStd, RunSummary};

/// Extracts one scalar metric from a per-run summary (used to build figure
/// series from sweeps).
pub type SummaryMetric = fn(&RunSummary) -> f64;

/// Extracts one aggregated metric column from a table summary.
pub type AggregatedMetric = fn(&AggregatedSummary) -> &MeanStd;

/// Formats a rate in `[0,1]` as the paper's `percent±std` notation,
/// e.g. `99.11±0.01`.
pub fn format_percent(value: &MeanStd) -> String {
    format!("{:.2}±{:.2}", value.mean * 100.0, value.std * 100.0)
}

/// One dataset block of Table 1 / Table 2: a column per attacker.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableBlock {
    /// Dataset display name.
    pub dataset: String,
    /// Per-attacker aggregated results, in column order.
    pub columns: Vec<AggregatedSummary>,
}

impl TableBlock {
    /// Renders the block as a GitHub-flavoured markdown table with the paper's six
    /// metric rows (ASR, ASR-T, Precision, Recall, F1, NDCG).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.dataset));
        out.push_str("| Metric (%) |");
        for c in &self.columns {
            out.push_str(&format!(" {} |", c.attacker));
        }
        out.push('\n');
        out.push_str("|---|");
        out.push_str(&"---|".repeat(self.columns.len()));
        out.push('\n');

        let rows: [(&str, AggregatedMetric); 6] = [
            ("ASR", |c| &c.asr),
            ("ASR-T", |c| &c.asr_t),
            ("Precision", |c| &c.precision),
            ("Recall", |c| &c.recall),
            ("F1", |c| &c.f1),
            ("NDCG", |c| &c.ndcg),
        ];
        for (label, getter) in rows {
            out.push_str(&format!("| {label} |"));
            for c in &self.columns {
                out.push_str(&format!(" {} |", format_percent(getter(c))));
            }
            out.push('\n');
        }
        out.push('\n');
        out
    }
}

/// A single named series of a figure: y (mean ± std) over a swept x value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Series label (e.g. the metric name).
    pub label: String,
    /// Swept parameter values (degree, λ, T, L, ...).
    pub x: Vec<f64>,
    /// Measured values at each x.
    pub y: Vec<MeanStd>,
}

impl Series {
    /// Creates a series; `x` and `y` must have matching lengths.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<MeanStd>) -> Self {
        let label = label.into();
        assert_eq!(x.len(), y.len(), "series {label}: x/y length mismatch");
        Self { label, x, y }
    }

    /// Renders the series as aligned text rows (`x  mean±std`).
    pub fn to_text(&self) -> String {
        let mut out = format!("{}\n", self.label);
        for (x, y) in self.x.iter().zip(self.y.iter()) {
            out.push_str(&format!("  {x:>8.3}  {}\n", format_percent(y)));
        }
        out
    }
}

/// A full figure: one or more series over the same x axis.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (e.g. "Figure 4: effect of lambda on CORA").
    pub title: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Renders the figure as text.
    pub fn to_text(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for s in &self.series {
            out.push_str(&s.to_text());
        }
        out
    }
}

/// Writes any serializable result record as pretty JSON (used by the `reproduce_*`
/// binaries to leave machine-readable artifacts next to the printed tables).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("results are always serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{aggregate_runs, summarize_run, AttackOutcome};
    use geattack_explain::DetectionScores;

    fn sample_summary(name: &str) -> AggregatedSummary {
        let outcome = AttackOutcome {
            node: 0,
            degree: 3,
            perturbation_size: 3,
            success_any: true,
            success_target: true,
            detection: DetectionScores {
                precision: 0.1,
                recall: 0.6,
                f1: 0.17,
                ndcg: 0.36,
            },
        };
        aggregate_runs(&[summarize_run(name, &[outcome])])
    }

    #[test]
    fn percent_formatting() {
        let v = MeanStd {
            mean: 0.9911,
            std: 0.0001,
        };
        assert_eq!(format_percent(&v), "99.11±0.01");
    }

    #[test]
    fn table_block_markdown_contains_all_metrics_and_attackers() {
        let block = TableBlock {
            dataset: "CORA".into(),
            columns: vec![sample_summary("FGA"), sample_summary("GEAttack")],
        };
        let md = block.to_markdown();
        for needle in [
            "### CORA",
            "FGA",
            "GEAttack",
            "ASR-T",
            "Precision",
            "Recall",
            "F1",
            "NDCG",
        ] {
            assert!(md.contains(needle), "markdown missing {needle}:\n{md}");
        }
        assert_eq!(
            md.matches("100.00±0.00").count(),
            4,
            "ASR/ASR-T cells for both attackers"
        );
    }

    #[test]
    fn series_text_and_length_check() {
        let s = Series::new(
            "F1@15",
            vec![1.0, 2.0],
            vec![MeanStd { mean: 0.2, std: 0.0 }, MeanStd { mean: 0.3, std: 0.1 }],
        );
        let text = s.to_text();
        assert!(text.contains("F1@15"));
        assert!(text.contains("20.00±0.00"));
        assert!(text.contains("30.00±10.00"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_length_mismatch_panics() {
        let _ = Series::new("bad", vec![1.0], vec![]);
    }

    #[test]
    fn figure_to_text_includes_all_series() {
        let fig = Figure {
            title: "Figure 4".into(),
            series: vec![
                Series::new("ASR-T", vec![0.001], vec![MeanStd { mean: 1.0, std: 0.0 }]),
                Series::new("NDCG@15", vec![0.001], vec![MeanStd { mean: 0.4, std: 0.0 }]),
            ],
        };
        let text = fig.to_text();
        assert!(text.contains("Figure 4"));
        assert!(text.contains("ASR-T"));
        assert!(text.contains("NDCG@15"));
    }

    #[test]
    fn json_roundtrip() {
        let block = TableBlock {
            dataset: "ACM".into(),
            columns: vec![sample_summary("RNA")],
        };
        let json = to_json(&block);
        let back: TableBlock = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dataset, "ACM");
        assert_eq!(back.columns.len(), 1);
    }
}
