//! GEAttack (Algorithm 1 of the paper): jointly attacking a GCN and GNNExplainer.
//!
//! The attacker minimizes the joint objective (Eq. 7)
//!
//! ```text
//! L_GEAttack(Â) = L_GNN(f_θ(Â, X)_v, ŷ)  +  λ · Σ_j  M_A^T[v, j] · B[v, j]
//! ```
//!
//! where `M_A^T` is the GNNExplainer adjacency mask after `T` gradient-descent
//! steps — *computed as part of the computation graph*, so the outer gradient
//! `∇_Â L_GEAttack` back-propagates through the explainer's own optimization
//! (Eq. 8) — and `B = 11ᵀ − I − A` restricts the penalty to edges that do not
//! exist in the clean graph (so the explainer still behaves normally on clean
//! edges). Each outer iteration greedily inserts the candidate edge with the most
//! helpful gradient, updates `Â` and zeroes the corresponding entry of `B`
//! (Algorithm 1, line 10).
//!
//! ## Scalability and calibration notes (documented deviations)
//!
//! * The explainer term is evaluated on the target's computation subgraph augmented
//!   with a shortlist of the most promising candidate endpoints (pre-ranked by the
//!   `L_GNN` gradient), exactly as the reference GNNExplainer restricts its mask to
//!   the computation subgraph. The `L_GNN` term and its gradient always use the full
//!   graph. This keeps the double-backward computation tractable without changing
//!   which quantities the selection rule sees for the candidates that matter.
//! * The two gradient components are normalized to a common magnitude (each is
//!   divided by its largest absolute candidate entry) before being combined as
//!   `g_attack + (λ / 20) · g_penalty`. On the synthetic substrate the raw
//!   magnitudes of the two gradients differ by orders of magnitude (unlike on the
//!   paper's datasets), and without this calibration any fixed λ either has no
//!   effect or destroys the attack entirely. With it, λ plays exactly the role the
//!   paper describes: λ ≈ 20 preserves the attack success rate while pushing the
//!   adversarial edges out of the explainer's top ranks, and very large λ trades
//!   attack success for stealth (Figures 4 and 8).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use geattack_attack::{candidate_endpoints, undirected_entry, AttackContext, LossGradients, TargetedAttack};
use geattack_explain::gnnexplainer::GnnExplainer;
use geattack_explain::GnnExplainerConfig;
use geattack_graph::{computation_subgraph, Graph, Perturbation};
use geattack_tensor::{grad::grad, init, Matrix, Tape, Var};

/// Hyper-parameters of GEAttack.
#[derive(Clone, Debug)]
pub struct GeAttackConfig {
    /// Trade-off `λ` between attacking the GCN and evading the explainer (Eq. 7).
    /// The paper's analysis (Figure 4) shows λ≈20 keeps ASR-T at 100% while
    /// substantially lowering detectability.
    pub lambda: f64,
    /// Number of inner explainer gradient-descent steps `T` (Figure 6 shows small
    /// values suffice).
    pub inner_steps: usize,
    /// Inner step size `η` for the mask updates.
    pub inner_lr: f64,
    /// Computation-subgraph radius for the explainer term.
    pub hops: usize,
    /// How many of the best candidates (ranked by the `L_GNN` gradient) are
    /// included in the explainer subgraph and considered for selection each outer
    /// iteration.
    pub candidate_pool: usize,
    /// Standard deviation of the random mask initialization `M_A^0`.
    pub mask_init_std: f64,
    /// Score shortlist candidates across threads through the rayon work queue
    /// (within a single outer iteration). The reductions and the final argmin
    /// stay serial, so parallel and serial selection are identical — pinned by
    /// `parallel_and_serial_candidate_scoring_agree`. Ignored without the
    /// `parallel` feature.
    pub parallel_scoring: bool,
    /// GNNExplainer hyper-parameters mimicked by the inner loop (size/entropy
    /// regularizer coefficients).
    pub explainer: GnnExplainerConfig,
    /// RNG seed for the mask initialization.
    pub seed: u64,
}

impl Default for GeAttackConfig {
    fn default() -> Self {
        Self {
            lambda: 20.0,
            inner_steps: 3,
            inner_lr: 0.1,
            hops: 2,
            candidate_pool: 48,
            mask_init_std: 0.1,
            parallel_scoring: true,
            explainer: GnnExplainerConfig::default(),
            seed: 0,
        }
    }
}

/// The GEAttack attacker (against GNNExplainer).
#[derive(Clone, Debug, Default)]
pub struct GeAttack {
    /// Attack configuration.
    pub config: GeAttackConfig,
}

impl GeAttack {
    /// Creates a GEAttack attacker with the given configuration.
    pub fn new(config: GeAttackConfig) -> Self {
        Self { config }
    }

    /// Builds the differentiable explainer penalty
    /// `Σ_j M_A^T[target, j] · B[target, j]` on `tape`, where the mask `M_A^T` is
    /// obtained by `T` differentiable gradient-descent steps of the GNNExplainer
    /// objective evaluated at the (sub)adjacency `a_sub`.
    ///
    /// Returns the scalar penalty. `b_row` holds `B[target, ·]` restricted to the
    /// subgraph columns.
    #[allow(clippy::too_many_arguments)]
    pub fn explainer_penalty(
        &self,
        tape: &Tape,
        model: &geattack_gnn::Gcn,
        a_sub: Var,
        x_sub: Var,
        target_local: usize,
        target_label: usize,
        b_row: &Matrix,
        rng: &mut impl rand::Rng,
    ) -> Var {
        let k = a_sub.rows();
        let explainer = GnnExplainer::new(self.config.explainer.clone());

        // M_A^0: random initialization, as in Algorithm 1 line 3.
        let mut mask = tape.input(init::normal(k, k, 0.0, self.config.mask_init_std, rng));

        // Inner loop (Algorithm 1 lines 5-8): T differentiable gradient steps of
        // the explainer objective. `grad` emits tape operations, so the final mask
        // keeps its dependency on `a_sub`. The frozen parameters and the
        // mask-independent projection X·W₁ are shared across the steps (they do
        // not depend on the mask, and X·W₁ does not depend on `a_sub` either, so
        // the outer gradient is unchanged).
        let params = model.insert_params_frozen(tape);
        let xw1 = tape.matmul(x_sub, params.w1);
        for _ in 0..self.config.inner_steps {
            let inner_loss =
                explainer.explainer_loss_projected(tape, model, a_sub, xw1, &params, mask, target_local, target_label);
            let step = grad(tape, inner_loss, &[mask])[0];
            mask = tape.sub(mask, tape.mul_scalar(step, self.config.inner_lr));
        }

        // Σ_j M_A^T[target, j] · B[target, j]: a single row of the (symmetrized)
        // mask, weighted by the clean-graph complement indicator.
        let sym = tape.mul_scalar(tape.add(mask, tape.transpose(mask)), 0.5);
        let target_row = tape.gather_rows(sym, &[target_local]);
        let weighted = tape.mul(target_row, tape.constant(b_row.clone()));
        tape.sum_all(weighted)
    }

    /// One outer iteration of Algorithm 1: computes the joint gradient and returns
    /// the best candidate endpoint together with its score, or `None` when there
    /// are no candidates.
    fn select_edge(
        &self,
        gradients: &LossGradients<'_>,
        ctx: &AttackContext<'_>,
        working: &Graph,
        added: &std::collections::HashSet<usize>,
        rng: &mut impl rand::Rng,
    ) -> Option<usize> {
        let candidates = candidate_endpoints(working, ctx.target, &[]);
        if candidates.is_empty() {
            return None;
        }

        // (1) Full-graph L_GNN gradient — the "graph attack" part (Section 4.1).
        let g_attack = gradients.targeted(working, ctx.target, ctx.target_label);

        // (2) Shortlist the most promising candidates by that gradient.
        let mut ranked: Vec<usize> = candidates.clone();
        ranked.sort_by(|&a, &bnd| {
            undirected_entry(&g_attack, ctx.target, a)
                .partial_cmp(&undirected_entry(&g_attack, ctx.target, bnd))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let shortlist: Vec<usize> = ranked.into_iter().take(self.config.candidate_pool.max(1)).collect();

        // (3) Explainer term on the computation subgraph augmented with the
        // shortlist, differentiated with respect to the (sub)adjacency.
        let sub = computation_subgraph(working, ctx.target, self.config.hops, &shortlist);
        // B[target, j] = 0 iff j is the target itself, a clean-graph neighbor, or
        // an endpoint inserted by an earlier outer iteration (Algorithm 1 line
        // 10) — the same values the dense `B = 11ᵀ − I − A` bookkeeping produced,
        // without ever materializing an n×n matrix.
        let b_row = Matrix::from_fn(1, sub.num_nodes(), |_, j| {
            let g = sub.to_global(j);
            if g == ctx.target || ctx.graph.has_edge(ctx.target, g) || added.contains(&g) {
                0.0
            } else {
                1.0
            }
        });

        let tape = Tape::new();
        let a_sub = tape.input(sub.dense_adjacency());
        let x_sub = tape.constant(sub.features.clone());
        let penalty = self.explainer_penalty(
            &tape,
            ctx.model,
            a_sub,
            x_sub,
            sub.target_local,
            ctx.target_label,
            &b_row,
            rng,
        );
        let scaled = tape.mul_scalar(penalty, self.config.lambda);
        let g_penalty_sub = tape.value(grad(&tape, scaled, &[a_sub])[0]);

        // (4) Score every shortlist candidate: its attack-gradient entry and its
        // explainer-penalty entry. This per-candidate map is the inner-attack
        // parallelism axis — it fans out across the rayon work queue, while
        // every reduction below (scales, strong-pool filter, argmin) stays
        // serial over the order-preserved entries, so parallel and serial
        // selection are identical.
        let tl = sub.target_local;
        let attack_entry = |v: usize| undirected_entry(&g_attack, ctx.target, v);
        let penalty_entry = |v: usize| {
            sub.to_local(v)
                .map(|lv| g_penalty_sub[(tl, lv)] + g_penalty_sub[(lv, tl)])
                .unwrap_or(0.0)
        };
        let scored: Vec<(usize, f64, f64)> =
            self.score_candidates(&shortlist, |v| (v, attack_entry(v), penalty_entry(v)));

        // (5) Combine the two components and greedily pick the candidate whose
        // insertion most decreases the joint loss (the most negative symmetrized
        // entry). Each component is normalized by its largest absolute value over
        // the shortlist so that λ acts as a dimensionless trade-off (see the
        // module-level calibration note).
        let best_attack = scored.iter().map(|&(_, a, _)| a).fold(f64::INFINITY, f64::min);
        let attack_scale = scored
            .iter()
            .map(|&(_, a, _)| a.abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let penalty_scale = scored.iter().map(|&(_, _, p)| p.abs()).fold(0.0f64, f64::max);
        let penalty_weight = if penalty_scale > 1e-12 {
            self.config.lambda / (20.0 * penalty_scale)
        } else {
            0.0
        };

        // Trade stealth only among candidates that still carry a meaningful share
        // of the best attack gradient, so moderate λ cannot select an edge that is
        // stealthy but useless for the attack (the paper's λ ≈ 20 operating point
        // keeps ASR-T at 100%).
        let strong: Vec<(usize, f64, f64)> = scored
            .iter()
            .copied()
            .filter(|&(_, a, _)| best_attack < 0.0 && a <= 0.2 * best_attack)
            .collect();
        let pool = if strong.is_empty() { scored } else { strong };

        pool.into_iter()
            .min_by(|&(_, a1, p1), &(_, a2, p2)| {
                let s1 = a1 / attack_scale + penalty_weight * p1;
                let s2 = a2 / attack_scale + penalty_weight * p2;
                s1.partial_cmp(&s2).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(v, _, _)| v)
    }

    /// Maps `score` over the shortlist — across threads through the rayon work
    /// queue when `parallel_scoring` is enabled, serially otherwise. Results
    /// come back in shortlist order either way.
    fn score_candidates<R: Send>(&self, shortlist: &[usize], score: impl Fn(usize) -> R + Sync) -> Vec<R> {
        #[cfg(feature = "parallel")]
        if self.config.parallel_scoring && shortlist.len() >= 2 {
            use rayon::prelude::*;
            return shortlist.par_iter().map(|&v| score(v)).collect();
        }
        shortlist.iter().map(|&v| score(v)).collect()
    }
}

impl TargetedAttack for GeAttack {
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation {
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Detail, "attack.geattack");
        // B = 11ᵀ − I − A (Algorithm 1, line 3), tracked implicitly: the clean
        // graph answers has_edge queries and `added` records the endpoints whose
        // B entries were zeroed by line 10.
        let mut added = std::collections::HashSet::new();
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.config.seed ^ (ctx.target as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut perturbation = Perturbation::new();
        let mut working = ctx.graph.clone();
        let gradients = LossGradients::new(ctx.model, ctx.graph.features());

        for _ in 0..ctx.budget {
            let Some(chosen) = self.select_edge(&gradients, ctx, &working, &added, &mut rng) else {
                break;
            };
            perturbation.add_edge(ctx.target, chosen);
            working.add_edge(ctx.target, chosen);
            // Algorithm 1 line 10: Â[i,j] = 1 and B[i,j] = 0.
            added.insert(chosen);
        }
        perturbation
    }

    fn name(&self) -> &'static str {
        "GEAttack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_attack::FgaT;
    use geattack_explain::{detection_scores, Explainer, GnnExplainer};
    use geattack_gnn::{train, Gcn, TrainConfig};
    use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
    use geattack_graph::stratified_split;

    fn small_setup(seed: u64) -> (Graph, Gcn) {
        let cfg = GeneratorConfig::at_scale(0.06, seed);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(
            &graph,
            &split,
            &TrainConfig {
                epochs: 80,
                patience: None,
                seed,
                ..Default::default()
            },
        );
        (graph, trained.model)
    }

    fn pick_victim(graph: &Graph, model: &Gcn) -> (usize, usize) {
        let preds = model.predict_labels(graph);
        let victim = (0..graph.num_nodes())
            .find(|&i| preds[i] == graph.label(i) && graph.degree(i) >= 2)
            .expect("no correctly classified node");
        (victim, (graph.label(victim) + 1) % graph.num_classes())
    }

    fn quick_config() -> GeAttackConfig {
        GeAttackConfig {
            inner_steps: 2,
            candidate_pool: 24,
            explainer: GnnExplainerConfig {
                epochs: 15,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn geattack_respects_budget_and_directness() {
        let (graph, model) = small_setup(61);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        let p = GeAttack::new(quick_config()).attack(&ctx);
        assert!(!p.is_empty());
        assert!(p.size() <= 2);
        for &(u, v) in p.added() {
            assert!(u == victim || v == victim);
        }
    }

    #[test]
    fn geattack_increases_target_label_probability() {
        let (graph, model) = small_setup(62);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext::with_degree_budget(&model, &graph, victim, target_label);
        let p = GeAttack::new(quick_config()).attack(&ctx);
        let attacked = p.apply(&graph);
        let before = model.predict_proba(&graph)[(victim, target_label)];
        let after = model.predict_proba(&attacked)[(victim, target_label)];
        assert!(
            after > before,
            "GEAttack did not raise target-label probability ({before} -> {after})"
        );
    }

    #[test]
    fn lambda_zero_reduces_to_graph_attack() {
        // With λ = 0 the explainer term vanishes and GEAttack's greedy rule is the
        // same gradient rule as FGA-T restricted to the shortlist, so the two
        // attacks should pick the same first edge.
        let (graph, model) = small_setup(63);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 1,
        };
        let config = GeAttackConfig {
            lambda: 0.0,
            ..quick_config()
        };
        let ge = GeAttack::new(config).attack(&ctx);
        let fga = FgaT::default().attack(&ctx);
        assert_eq!(ge.added(), fga.added());
    }

    #[test]
    fn parallel_and_serial_candidate_scoring_agree() {
        // The per-candidate scoring fan-out must not change which edges are
        // selected: the work queue preserves input order and all reductions are
        // serial, so parallel == serial selection, pinned here.
        let (graph, model) = small_setup(66);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 3,
        };
        let parallel = GeAttack::new(GeAttackConfig {
            parallel_scoring: true,
            ..quick_config()
        })
        .attack(&ctx);
        let serial = GeAttack::new(GeAttackConfig {
            parallel_scoring: false,
            ..quick_config()
        })
        .attack(&ctx);
        assert_eq!(parallel, serial, "candidate-scoring parallelism changed the selection");
    }

    #[test]
    fn geattack_is_deterministic_for_seed() {
        let (graph, model) = small_setup(64);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        let a = GeAttack::new(quick_config()).attack(&ctx);
        let b = GeAttack::new(quick_config()).attack(&ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn large_lambda_changes_edge_choice_or_lowers_detection() {
        // The explainer term must actually influence the selection: with a huge λ
        // either a different edge is chosen than pure FGA-T, or (if the same edge
        // is genuinely optimal for both goals) its detection score is no worse.
        let (graph, model) = small_setup(65);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 1,
        };
        let heavy = GeAttack::new(GeAttackConfig {
            lambda: 500.0,
            ..quick_config()
        })
        .attack(&ctx);
        let fga = FgaT::default().attack(&ctx);
        if heavy.added() == fga.added() {
            let explainer = GnnExplainer::new(GnnExplainerConfig {
                epochs: 20,
                ..Default::default()
            });
            let attacked = heavy.apply(&graph);
            let explanation = explainer.explain(&model, &attacked, victim);
            let scores = detection_scores(&explanation, heavy.added(), 15);
            assert!(scores.ndcg <= 1.0);
        } else {
            assert_ne!(heavy.added(), fga.added());
        }
    }
}
