//! Fleet manifests: the worker list a coordinator dispatches to.
//!
//! Workers come from repeated `--worker host:port` flags, from a JSON
//! manifest, or both (flags append after the manifest). The manifest format:
//!
//! ```json
//! {
//!   "workers": [
//!     { "addr": "10.0.0.4:7341", "name": "rack1-a" },
//!     "10.0.0.5:7341"
//!   ]
//! }
//! ```
//!
//! Entries may be bare address strings (the name defaults to the address) or
//! objects with an `addr` and an optional display `name` used in coordinator
//! logs and per-worker telemetry.

use serde::Value;

use geattack_core::GeError;

/// One worker of the fleet: where to reach it and what to call it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Worker {
    /// `host:port` of a running `geattack-serve` daemon.
    pub addr: String,
    /// Display name for logs and metrics; defaults to the address.
    pub name: String,
}

impl Worker {
    /// A worker named after its address.
    pub fn at(addr: impl Into<String>) -> Self {
        let addr = addr.into();
        Worker {
            name: addr.clone(),
            addr,
        }
    }

    /// A worker with an explicit display name.
    pub fn named(addr: impl Into<String>, name: impl Into<String>) -> Self {
        Worker {
            addr: addr.into(),
            name: name.into(),
        }
    }
}

/// Parses a fleet manifest (see the module docs) into its worker list.
pub fn parse_manifest(text: &str) -> Result<Vec<Worker>, GeError> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| GeError::Fleet(format!("invalid fleet manifest: {e}")))?;
    let entries = match value.get_field("workers") {
        Ok(Value::Array(entries)) => entries,
        _ => {
            return Err(GeError::Fleet(
                "fleet manifest must be an object with a `workers` array".to_string(),
            ))
        }
    };
    let mut workers = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        workers.push(parse_entry(entry).map_err(|e| GeError::Fleet(format!("fleet manifest worker {i}: {e}")))?);
    }
    if workers.is_empty() {
        return Err(GeError::Fleet("fleet manifest lists no workers".to_string()));
    }
    Ok(workers)
}

fn parse_entry(entry: &Value) -> Result<Worker, String> {
    match entry {
        Value::String(addr) => validate_addr(addr).map(|_| Worker::at(addr.clone())),
        Value::Object(_) => {
            let addr = match entry.get_field("addr") {
                Ok(Value::String(addr)) => addr.clone(),
                _ => return Err("expected an `addr` string".to_string()),
            };
            validate_addr(&addr)?;
            let name = match entry.get_field("name") {
                Ok(Value::String(name)) if !name.trim().is_empty() => name.clone(),
                Ok(_) => return Err("`name` must be a non-empty string".to_string()),
                Err(_) => addr.clone(),
            };
            Ok(Worker { addr, name })
        }
        other => Err(format!(
            "expected an address string or an object, found {}",
            serde_json::to_string(other).unwrap_or_default()
        )),
    }
}

/// Rejects the obvious non-addresses early, before the coordinator burns its
/// retry budget connecting to them.
fn validate_addr(addr: &str) -> Result<(), String> {
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| format!("worker address must look like host:port, got `{addr}`"))?;
    if host.trim().is_empty() {
        return Err(format!("worker address has an empty host: `{addr}`"));
    }
    port.parse::<u16>()
        .map_err(|_| format!("worker address has an invalid port: `{addr}`"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifests_accept_bare_strings_and_named_objects() {
        let workers = parse_manifest(
            r#"{
                "workers": [
                    { "addr": "10.0.0.4:7341", "name": "rack1-a" },
                    "10.0.0.5:7341"
                ]
            }"#,
        )
        .expect("manifest parses");
        assert_eq!(
            workers,
            vec![Worker::named("10.0.0.4:7341", "rack1-a"), Worker::at("10.0.0.5:7341"),]
        );
    }

    #[test]
    fn malformed_manifests_surface_typed_fleet_errors() {
        for (text, needle) in [
            ("[]", "`workers` array"),
            (r#"{"workers": []}"#, "no workers"),
            (r#"{"workers": [42]}"#, "worker 0"),
            (r#"{"workers": [{"name": "x"}]}"#, "`addr`"),
            (r#"{"workers": ["localhost"]}"#, "host:port"),
            (r#"{"workers": ["localhost:notaport"]}"#, "invalid port"),
            (r#"{"workers": [":7341"]}"#, "empty host"),
            (r#"{"workers": [{"addr": "h:1", "name": "  "}]}"#, "non-empty"),
            ("{not json", "invalid fleet manifest"),
        ] {
            let err = parse_manifest(text).unwrap_err();
            assert_eq!(err.kind(), "fleet", "{text}");
            assert!(err.to_string().contains(needle), "{text} → {err}");
        }
    }
}
