//! The fleet coordinator CLI: run one sweep across N `geattack-serve`
//! workers and write the byte-identical merged report.
//!
//! ```text
//! cargo run --release -p geattack-fleet --bin geattack-fleet -- SPEC.json \
//!     --worker 127.0.0.1:7341 --worker 127.0.0.1:7342 [--fleet manifest.json] \
//!     [--shards N] [--max-attempts N] [--worker-failure-limit N] \
//!     [--connect-timeout-s N] [--idle-timeout-s N] [--results-dir DIR] [--quiet]
//! ```
//!
//! Workers come from repeated `--worker` flags, a `--fleet` JSON manifest
//! (`{"workers": [{"addr": "host:port", "name": "..."}, "host:port"]}`), or
//! both (flags append after the manifest). The grid is sliced into `--shards`
//! deterministic `p % N` slices (default: one per worker), each dispatched
//! over the serve NDJSON protocol; failed or lost shards are retried on
//! surviving workers with backoff. On success the merged
//! `results/sweep_<name>.json` is byte-identical to a single-machine
//! `geattack-sweep` run and a `results/sweep_<name>.fleet.meta.json` sidecar
//! records the fleet accounting; on exhaustion completed shards are preserved
//! as `results/sweep_<name>.shard<I>of<N>.json` for manual `geattack-merge`.

use std::path::PathBuf;
use std::time::Duration;

use geattack_fleet::coordinator::{Coordinator, FleetOptions};
use geattack_fleet::manifest::{parse_manifest, Worker};
use geattack_scenarios::SweepSpec;

const USAGE: &str = "usage: geattack-fleet SPEC.json --worker HOST:PORT [--worker HOST:PORT ...] \
[--fleet MANIFEST.json] [--shards N] [--max-attempts N] [--worker-failure-limit N] \
[--connect-timeout-s N] [--idle-timeout-s N] [--results-dir DIR] [--quiet]";

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| fail(&format!("{flag} expects a value")))
}

fn parse_number<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("{flag} expects a number, got `{value}`")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut spec_path: Option<String> = None;
    let mut workers: Vec<Worker> = Vec::new();
    let mut manifest_path: Option<String> = None;
    let mut options = FleetOptions {
        results_dir: Some(PathBuf::from("results")),
        ..Default::default()
    };
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--worker" => workers.push(Worker::at(next_value(&mut args, "--worker"))),
            "--fleet" => manifest_path = Some(next_value(&mut args, "--fleet")),
            "--shards" => options.shards = Some(parse_number(&next_value(&mut args, "--shards"), "--shards")),
            "--max-attempts" => {
                options.max_shard_attempts = parse_number(&next_value(&mut args, "--max-attempts"), "--max-attempts")
            }
            "--worker-failure-limit" => {
                options.worker_failure_limit = parse_number(
                    &next_value(&mut args, "--worker-failure-limit"),
                    "--worker-failure-limit",
                )
            }
            "--connect-timeout-s" => {
                options.connect_timeout = Duration::from_secs(parse_number(
                    &next_value(&mut args, "--connect-timeout-s"),
                    "--connect-timeout-s",
                ))
            }
            "--idle-timeout-s" => {
                options.idle_timeout = Duration::from_secs(parse_number(
                    &next_value(&mut args, "--idle-timeout-s"),
                    "--idle-timeout-s",
                ))
            }
            "--results-dir" => options.results_dir = Some(PathBuf::from(next_value(&mut args, "--results-dir"))),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => fail(&format!("unknown option: {other}")),
            other => {
                if spec_path.replace(other.to_string()).is_some() {
                    fail("expected exactly one sweep spec path");
                }
            }
        }
    }
    let spec_path = spec_path.unwrap_or_else(|| fail("expected a sweep spec path"));
    let text = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        std::process::exit(2);
    });
    let spec = SweepSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    // Manifest workers first, then `--worker` flags, in the order given.
    if let Some(path) = manifest_path {
        let manifest = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let mut from_manifest = parse_manifest(&manifest).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        from_manifest.extend(workers);
        workers = from_manifest;
    }
    if workers.is_empty() {
        fail("expected at least one worker (--worker or --fleet)");
    }

    let results_dir = options.results_dir.clone();
    let coordinator = Coordinator::new(workers, options).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let run = coordinator
        .run(&spec, |line| {
            if !quiet {
                eprintln!("{line}");
            }
        })
        .unwrap_or_else(|e| {
            eprintln!("fleet run failed: {e}");
            std::process::exit(1);
        });

    print!("{}", run.report.to_markdown());
    if let Some(path) = &run.artifact {
        println!("(JSON written to {})", path.display());
    }
    if let Some(dir) = results_dir {
        let meta_path = dir.join(format!("sweep_{}.fleet.meta.json", run.report.sweep));
        if let Err(e) = std::fs::write(&meta_path, run.stats.meta_json()) {
            eprintln!("warning: could not write {}: {e}", meta_path.display());
        } else {
            eprintln!("(fleet metadata written to {})", meta_path.display());
        }
    }
    let s = &run.stats;
    eprintln!(
        "fleet: {} shard(s), {} dispatched, {} retried, {} reassigned, {:.1}s wall",
        s.shards,
        s.dispatched,
        s.retried,
        s.reassigned,
        s.wall_ms / 1e3
    );
}
