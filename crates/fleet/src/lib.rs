//! # geattack-fleet
//!
//! Fleet orchestration: one sweep, N `geattack-serve` workers, one
//! byte-identical report — the step from "parallel process" to "distributed
//! system".
//!
//! * [`client`] — the client side of the serve NDJSON protocol
//!   ([`ServeClient`], plus the [`connect_retry`]/[`control`]/[`submit`] free
//!   functions the bench crate re-exports), shared by the coordinator,
//!   `geattack-serve submit` and `geattack-loadtest`.
//! * [`manifest`] — the worker list: repeated `--worker host:port` flags or a
//!   JSON fleet manifest ([`parse_manifest`]).
//! * [`coordinator`] — the [`Coordinator`]: deterministic `p % N` shard
//!   slicing, per-worker dispatch with connect/idle timeouts, live per-cell
//!   progress with an ETA, bounded retry + backoff with health probes,
//!   reassignment of failed or lost shards to surviving workers, and a strict
//!   in-process merge whose `results/sweep_<name>.json` is byte-identical to
//!   a single-machine `geattack-sweep` run. Exhausting a shard's attempts
//!   aborts with [`GeError::Fleet`] after preserving completed shard
//!   artifacts for manual `geattack-merge`.
//!
//! [`GeError::Fleet`]: geattack_core::GeError::Fleet

pub mod client;
pub mod coordinator;
pub mod manifest;

pub use client::{connect_retry, control, parse_shard_event, submit, ServeClient, ShardEvent, SubmitOutcome};
pub use coordinator::{Coordinator, FleetOptions, FleetRun, FleetStats, WorkerSummary};
pub use manifest::{parse_manifest, Worker};
