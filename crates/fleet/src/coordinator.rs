//! The fleet coordinator: one sweep, N `geattack-serve` workers, one
//! byte-identical report.
//!
//! [`Coordinator::run`] slices the spec's grid into `N` deterministic shards
//! (`p % N` — the same arithmetic as `geattack-sweep --shard I/N`), dispatches
//! each slice to a worker over the NDJSON protocol, and merges the returned
//! [`ShardReport`]s through the strict in-process merge path. Because every
//! shard executes the exact prepared cells an unsharded run would, the merged
//! `results/sweep_<name>.json` is byte-identical to a single-machine run.
//!
//! **Failure handling.** One thread per worker pulls shard tasks from a shared
//! queue. A failed attempt — connect refused, mid-stream disconnect, idle
//! timeout, server-side error, or a report that fails validation — requeues
//! the task for any surviving worker (bounded by
//! [`FleetOptions::max_shard_attempts`] per shard), the failing worker backs
//! off exponentially and health-probes before its next attempt, and a worker
//! with [`FleetOptions::worker_failure_limit`] consecutive failures retires.
//! First-completed-wins per shard: a straggler's duplicate result is dropped,
//! so reassignment can never duplicate cells in the merged report. When a
//! shard exhausts its attempts (or every worker retires), the run aborts with
//! [`GeError::Fleet`] — after writing every completed shard to
//! `results/sweep_<name>.shard<I>of<N>.json` so a manual `geattack-merge` can
//! finish the job once the fleet recovers.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use geattack_core::engine::CancelToken;
use geattack_core::sweep::{merge_shards, Shard, ShardReport, SweepReport};
use geattack_core::GeError;
use geattack_scenarios::SweepSpec;
use geattack_telemetry::{HistogramSnapshot, MetricsRegistry};

use crate::client::{ServeClient, ShardEvent};
use crate::manifest::Worker;

/// Coordinator knobs; the defaults suit a local fleet (CI) and are
/// deliberately conservative for a real one.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Number of shards to slice the grid into; defaults to the worker count.
    pub shards: Option<usize>,
    /// Attempts per shard before the run aborts with [`GeError::Fleet`].
    pub max_shard_attempts: usize,
    /// Consecutive failures after which a worker retires from the fleet.
    pub worker_failure_limit: usize,
    /// TCP connect retry window per attempt.
    pub connect_timeout: Duration,
    /// Maximum event-stream silence before a worker is declared hung.
    pub idle_timeout: Duration,
    /// Base backoff after a failed attempt (doubled per attempt, capped 5 s).
    pub backoff: Duration,
    /// When set, the merged report is written to
    /// `<dir>/sweep_<name>.json` on success, and completed shards to
    /// `<dir>/sweep_<name>.shard<I>of<N>.json` on an aborted run.
    pub results_dir: Option<PathBuf>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            shards: None,
            max_shard_attempts: 3,
            worker_failure_limit: 3,
            connect_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            backoff: Duration::from_millis(250),
            results_dir: None,
        }
    }
}

/// Per-worker accounting of one fleet run.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Display name (manifest `name` or the address).
    pub name: String,
    /// `host:port` of the worker.
    pub addr: String,
    /// The worker's `--fleet-id` from its `stats` response, when reachable.
    pub fleet_id: Option<String>,
    /// Shards this worker completed (first-completed-wins).
    pub shards_completed: usize,
    /// Failed attempts charged to this worker.
    pub failures: usize,
    /// Whether the worker retired after too many consecutive failures.
    pub retired: bool,
    /// Latency distribution of this worker's shard attempts, milliseconds.
    pub latency: HistogramSnapshot,
}

/// Fleet-level accounting of one run, for the `.fleet.meta.json` sidecar.
#[derive(Clone, Debug)]
pub struct FleetStats {
    /// Shard count the grid was sliced into.
    pub shards: usize,
    /// Shard attempts dispatched (completions + failures ≤ dispatched).
    pub dispatched: usize,
    /// Attempts that failed and were requeued.
    pub retried: usize,
    /// Requeued shards picked up by a *different* worker than the one that
    /// failed them.
    pub reassigned: usize,
    /// Straggler results dropped because the shard was already complete.
    pub duplicates: usize,
    /// Prepared cells finished across the fleet (completed shards only).
    pub finished_cells: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Per-worker accounting.
    pub workers: Vec<WorkerSummary>,
}

impl FleetStats {
    /// Renders the stats as a pretty-JSON sidecar (nondeterministic values —
    /// latency, wall-clock — live here, never in the report).
    pub fn meta_json(&self) -> String {
        use serde::Value;
        let ms = |v: f64| Value::Number((v * 1e3).round() / 1e3);
        let workers = self
            .workers
            .iter()
            .map(|w| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(w.name.clone())),
                    ("addr".to_string(), Value::String(w.addr.clone())),
                    (
                        "fleet_id".to_string(),
                        w.fleet_id.clone().map_or(Value::Null, Value::String),
                    ),
                    ("shards_completed".to_string(), Value::Number(w.shards_completed as f64)),
                    ("failures".to_string(), Value::Number(w.failures as f64)),
                    ("retired".to_string(), Value::Bool(w.retired)),
                    (
                        "latency_ms".to_string(),
                        Value::Object(vec![
                            ("count".to_string(), Value::Number(w.latency.count as f64)),
                            ("p50".to_string(), ms(w.latency.p50)),
                            ("p95".to_string(), ms(w.latency.p95)),
                            ("p99".to_string(), ms(w.latency.p99)),
                            ("max".to_string(), ms(w.latency.max)),
                        ]),
                    ),
                ])
            })
            .collect();
        let meta = Value::Object(vec![
            ("shards".to_string(), Value::Number(self.shards as f64)),
            ("dispatched".to_string(), Value::Number(self.dispatched as f64)),
            ("retried".to_string(), Value::Number(self.retried as f64)),
            ("reassigned".to_string(), Value::Number(self.reassigned as f64)),
            ("duplicates".to_string(), Value::Number(self.duplicates as f64)),
            ("finished_cells".to_string(), Value::Number(self.finished_cells as f64)),
            ("wall_ms".to_string(), ms(self.wall_ms)),
            ("workers".to_string(), Value::Array(workers)),
        ]);
        serde_json::to_string_pretty(&meta).expect("fleet stats always serialize")
    }
}

/// A completed fleet run: the merged report (byte-identical to a
/// single-machine run), the shard reports it was assembled from, and the
/// fleet-level accounting.
#[derive(Clone, Debug)]
pub struct FleetRun {
    /// The merged full report.
    pub report: SweepReport,
    /// The per-shard reports, in shard-index order.
    pub shard_reports: Vec<ShardReport>,
    /// Fleet-level accounting of the run.
    pub stats: FleetStats,
    /// Where the merged report was written, when
    /// [`FleetOptions::results_dir`] was set.
    pub artifact: Option<PathBuf>,
}

/// One shard's place in the coordinator's work queue.
struct ShardTask {
    shard: Shard,
    /// Attempts consumed so far (bounded by `max_shard_attempts`).
    attempts: usize,
    /// The worker that last failed this task, for reassignment accounting.
    last_worker: Option<usize>,
}

/// Queue + results guarded by one mutex; every transition notifies the condvar.
struct FleetState {
    queue: VecDeque<ShardTask>,
    in_progress: usize,
    results: Vec<Option<ShardReport>>,
    fatal: Option<GeError>,
    live_workers: usize,
    /// Prepared cells inside completed shards.
    completed_cells: usize,
    /// Prepared cells finished by the currently-running attempt per shard.
    inflight_cells: Vec<usize>,
}

/// Per-worker mutable bookkeeping (outside the state lock — only its own
/// thread touches it).
struct WorkerLedger {
    consecutive_failures: usize,
    shards_completed: usize,
    failures: usize,
    retired: bool,
    fleet_id: Option<String>,
}

/// Dispatches one sweep across a worker fleet. One coordinator drives one
/// run: its cancel token is consumed by [`Coordinator::run`] (an aborted run
/// cancels it so in-flight streams drop promptly).
pub struct Coordinator {
    workers: Vec<Worker>,
    options: FleetOptions,
    metrics: std::sync::Arc<MetricsRegistry>,
    cancel: CancelToken,
}

impl Coordinator {
    /// A coordinator over `workers`; rejects an empty fleet and a zero shard
    /// override.
    pub fn new(workers: Vec<Worker>, options: FleetOptions) -> Result<Self, GeError> {
        if workers.is_empty() {
            return Err(GeError::Fleet("a fleet needs at least one worker".to_string()));
        }
        if options.shards == Some(0) {
            return Err(GeError::Fleet("shard count must be at least 1".to_string()));
        }
        if options.max_shard_attempts == 0 {
            return Err(GeError::Fleet("max shard attempts must be at least 1".to_string()));
        }
        Ok(Coordinator {
            workers,
            options,
            metrics: std::sync::Arc::new(MetricsRegistry::new()),
            cancel: CancelToken::new(),
        })
    }

    /// The coordinator's metric registry (`fleet.*` counters and per-worker
    /// latency histograms).
    pub fn metrics(&self) -> &std::sync::Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A handle that aborts the run when cancelled (in-flight worker streams
    /// drop at their next tick; the daemon side cancels on disconnect).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs `spec` across the fleet and merges the byte-identical report.
    /// `progress` receives one human-readable line per tracked event
    /// (dispatch, per-cell progress with ETA, retries, retirements).
    pub fn run(&self, spec: &SweepSpec, progress: impl FnMut(String) + Send) -> Result<FleetRun, GeError> {
        let started = Instant::now();
        let shard_count = self.options.shards.unwrap_or(self.workers.len()).max(1);
        let shards = Shard::split(shard_count)?;
        let prepared_cells = spec.prepared_cells();
        let expected_hash = spec.content_hash();

        let state = Mutex::new(FleetState {
            queue: shards
                .iter()
                .map(|&shard| ShardTask {
                    shard,
                    attempts: 0,
                    last_worker: None,
                })
                .collect(),
            in_progress: 0,
            results: vec![None; shard_count],
            fatal: None,
            live_workers: self.workers.len(),
            completed_cells: 0,
            inflight_cells: vec![0; shard_count],
        });
        let condvar = Condvar::new();
        let progress = Mutex::new(progress);
        let emit = |line: String| {
            (progress.lock().expect("progress lock"))(line);
        };
        emit(format!(
            "fleet: {} prepared cells sliced into {} shard(s) across {} worker(s)",
            prepared_cells,
            shard_count,
            self.workers.len()
        ));
        self.metrics.gauge("fleet.workers.live").set(self.workers.len() as f64);

        let mut ledgers: Vec<WorkerLedger> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter()
                .enumerate()
                .map(|(me, worker)| {
                    let state = &state;
                    let condvar = &condvar;
                    let emit = &emit;
                    let expected_hash = &expected_hash;
                    scope.spawn(move || self.worker_loop(me, worker, spec, expected_hash, state, condvar, emit))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker thread never panics"))
                .collect()
        });

        let mut state = state.into_inner().expect("fleet state lock");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let stats = self.collect_stats(shard_count, &state, &mut ledgers, wall_ms);

        if let Some(fatal) = state.fatal.take() {
            let preserved = self.preserve_partial_shards(spec, &state.results);
            let suffix = if preserved.is_empty() {
                String::new()
            } else {
                format!(
                    " ({} completed shard(s) preserved for geattack-merge: {})",
                    preserved.len(),
                    preserved
                        .iter()
                        .map(|p| p.display().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            return Err(GeError::Fleet(format!("{fatal}{suffix}")));
        }
        if self.cancel.is_cancelled() {
            let _ = self.preserve_partial_shards(spec, &state.results);
            return Err(GeError::Cancelled("fleet run cancelled".to_string()));
        }

        let shard_reports: Vec<ShardReport> = state
            .results
            .into_iter()
            .map(|r| r.expect("a non-fatal run completed every shard"))
            .collect();
        let report = merge_shards(&shard_reports)?;
        let artifact = match &self.options.results_dir {
            None => None,
            Some(dir) => {
                let path = dir.join(format!("sweep_{}.json", report.sweep));
                write_text(&path, &report.to_json())?;
                Some(path)
            }
        };
        emit(format!(
            "fleet: sweep `{}` complete — {} cells over {} shard(s) in {:.1}s",
            report.sweep,
            report.cells.len(),
            shard_count,
            wall_ms / 1e3
        ));
        Ok(FleetRun {
            report,
            shard_reports,
            stats,
            artifact,
        })
    }

    /// One worker's pull-execute loop; returns its ledger for the run stats.
    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        &self,
        me: usize,
        worker: &Worker,
        spec: &SweepSpec,
        expected_hash: &str,
        state: &Mutex<FleetState>,
        condvar: &Condvar,
        emit: &dyn Fn(String),
    ) -> WorkerLedger {
        let client = ServeClient::new(worker.addr.clone())
            .with_timeouts(self.options.connect_timeout, self.options.idle_timeout);
        let mut ledger = WorkerLedger {
            consecutive_failures: 0,
            shards_completed: 0,
            failures: 0,
            retired: false,
            fleet_id: None,
        };
        loop {
            // Pull the next shard task, or exit when the run is over.
            let mut task = {
                let mut st = state.lock().expect("fleet state lock");
                loop {
                    if st.fatal.is_some() || self.cancel.is_cancelled() {
                        return ledger;
                    }
                    if let Some(task) = st.queue.pop_front() {
                        st.in_progress += 1;
                        break task;
                    }
                    if st.in_progress == 0 {
                        return ledger; // Every shard is done.
                    }
                    st = condvar.wait(st).expect("fleet state lock");
                }
            };
            let shard = task.shard;
            if task.attempts > 0 && task.last_worker != Some(me) {
                self.metrics.counter("fleet.shards.reassigned").inc();
                emit(format!(
                    "[{}] shard {} reassigned (attempt {})",
                    worker.name,
                    shard.label(),
                    task.attempts + 1
                ));
            }

            // A worker that just failed proves itself with a health probe
            // before burning another shard attempt's stream setup.
            let attempt = if ledger.consecutive_failures > 0 {
                client
                    .health()
                    .and_then(|_| self.attempt_shard(&client, me, worker, spec, shard, state, emit, &mut ledger))
            } else {
                self.attempt_shard(&client, me, worker, spec, shard, state, emit, &mut ledger)
            };

            // A returned report still has to belong to this run before it may
            // enter the merge; a mismatch is charged as a failed attempt.
            let attempt = attempt.and_then(|report| {
                self.validate_report(&report, spec, expected_hash, shard)
                    .map(|_| report)
            });

            let mut st = state.lock().expect("fleet state lock");
            st.in_flight_reset(shard.index);
            st.in_progress -= 1;
            match attempt {
                Ok(report) => {
                    ledger.consecutive_failures = 0;
                    if st.results[shard.index].is_none() {
                        st.completed_cells += shard.owned_count(spec.prepared_cells());
                        st.results[shard.index] = Some(report);
                        ledger.shards_completed += 1;
                        self.metrics.counter("fleet.shards.completed").inc();
                        emit(format!("[{}] shard {} complete", worker.name, shard.label()));
                    } else {
                        self.metrics.counter("fleet.shards.duplicates").inc();
                        emit(format!(
                            "[{}] shard {} duplicate result dropped",
                            worker.name,
                            shard.label()
                        ));
                    }
                    condvar.notify_all();
                }
                Err(message) => {
                    // The requeue/fatal/retire decision happens under the same
                    // lock as the `in_progress` decrement above: releasing the
                    // lock in between would let another worker observe an
                    // empty queue with nothing in progress and exit before the
                    // failed shard is requeued.
                    let (lines, backoff) =
                        self.fail_attempt(me, worker, &spec.name, &mut task, &message, &mut st, &mut ledger);
                    condvar.notify_all();
                    drop(st);
                    for line in lines {
                        emit(line);
                    }
                    if ledger.retired {
                        return ledger;
                    }
                    if backoff {
                        // The failing worker backs off (others pick up the
                        // requeued shard immediately); stay responsive to
                        // cancellation.
                        let backoff = self
                            .options
                            .backoff
                            .saturating_mul(1u32 << (task.attempts.min(5) - 1) as u32)
                            .min(Duration::from_secs(5));
                        let deadline = Instant::now() + backoff;
                        while Instant::now() < deadline && !self.cancel.is_cancelled() {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                    }
                }
            }
        }
    }

    /// One dispatch of `shard` to `worker`, streaming progress as it runs.
    #[allow(clippy::too_many_arguments)]
    fn attempt_shard(
        &self,
        client: &ServeClient,
        me: usize,
        worker: &Worker,
        spec: &SweepSpec,
        shard: Shard,
        state: &Mutex<FleetState>,
        emit: &dyn Fn(String),
        ledger: &mut WorkerLedger,
    ) -> Result<ShardReport, String> {
        self.metrics.counter("fleet.shards.dispatched").inc();
        emit(format!("[{}] shard {} dispatched", worker.name, shard.label()));
        let timer = self
            .metrics
            .histogram(&worker_histogram_key(me, worker))
            .start_timer();
        let _fleet_timer = self.metrics.histogram("fleet.shard_attempt_ms").start_timer();
        let total = spec.prepared_cells();
        let started = Instant::now();
        let result = client.submit_shard(spec, shard, &self.cancel, |event| match event {
            ShardEvent::Accepted { id, shard: echo } => {
                if ledger.fleet_id.is_none() {
                    // One cheap identity lookup per worker, now that it is
                    // known reachable.
                    ledger.fleet_id = client.fleet_id().ok().flatten();
                }
                emit(format!(
                    "[{}] shard {} accepted as request {} (echo {})",
                    worker.name,
                    shard.label(),
                    id,
                    echo.as_deref().unwrap_or("-")
                ));
            }
            ShardEvent::Planned { .. } => {}
            ShardEvent::Started { position } => {
                emit(format!(
                    "[{}] shard {}: cell {} started",
                    worker.name,
                    shard.label(),
                    position
                ));
            }
            ShardEvent::Finished { position } => {
                // A straggler attempt for a shard whose result is already
                // recorded counts nothing: `completed_cells` already covers
                // the whole shard, so incrementing here would push the
                // done/total line past 100%.
                let fleet_progress = {
                    let mut st = state.lock().expect("fleet state lock");
                    if st.results[shard.index].is_some() {
                        None
                    } else {
                        st.inflight_cells[shard.index] += 1;
                        let done = st.completed_cells + st.inflight_cells.iter().sum::<usize>();
                        Some((done, eta_seconds(started, done, total)))
                    }
                };
                match fleet_progress {
                    Some((done, eta)) => {
                        self.metrics.counter("fleet.cells.finished").inc();
                        emit(format!(
                            "fleet: {done}/{total} cells ({:.1}%){} — [{}] shard {}: cell {position} finished",
                            done as f64 / total.max(1) as f64 * 100.0,
                            eta.map(|s| format!(" eta {s:.1}s")).unwrap_or_default(),
                            worker.name,
                            shard.label(),
                        ));
                    }
                    None => emit(format!(
                        "[{}] shard {}: cell {position} finished (straggler, shard already complete)",
                        worker.name,
                        shard.label()
                    )),
                }
            }
            ShardEvent::Failed { position, kind, error } => {
                self.metrics.counter("fleet.cells.failed").inc();
                emit(format!(
                    "[{}] shard {}: cell {position} FAILED ({kind}): {error}",
                    worker.name,
                    shard.label()
                ));
            }
        });
        timer.observe_duration();
        result
    }

    /// The retry path of a failed attempt: requeue (or abort the run when the
    /// shard is out of attempts) and retire a repeatedly-failing worker. Runs
    /// under the state lock held by the caller since its `in_progress`
    /// decrement, so the whole attempt transition is atomic. Returns the
    /// progress lines to emit once the lock is released, and whether the
    /// worker should back off before its next pull.
    #[allow(clippy::too_many_arguments)]
    fn fail_attempt(
        &self,
        me: usize,
        worker: &Worker,
        sweep: &str,
        task: &mut ShardTask,
        message: &str,
        st: &mut FleetState,
        ledger: &mut WorkerLedger,
    ) -> (Vec<String>, bool) {
        task.attempts += 1;
        task.last_worker = Some(me);
        ledger.failures += 1;
        ledger.consecutive_failures += 1;
        self.metrics.counter("fleet.shards.retried").inc();
        let mut lines = vec![format!(
            "[{}] shard {} attempt {} failed: {}",
            worker.name,
            task.shard.label(),
            task.attempts,
            message
        )];

        if st.fatal.is_some() || self.cancel.is_cancelled() {
            return (lines, false);
        }
        if task.attempts >= self.options.max_shard_attempts {
            st.fatal = Some(GeError::Fleet(format!(
                "shard {} of sweep `{sweep}` exhausted its {} attempt(s); last failure on worker `{}`: {}",
                task.shard.label(),
                self.options.max_shard_attempts,
                worker.name,
                message
            )));
            self.cancel.cancel("fleet run aborted");
            return (lines, false);
        }
        st.queue.push_back(ShardTask {
            shard: task.shard,
            attempts: task.attempts,
            last_worker: task.last_worker,
        });
        if ledger.consecutive_failures >= self.options.worker_failure_limit {
            ledger.retired = true;
            st.live_workers -= 1;
            self.metrics.counter("fleet.workers.retired").inc();
            self.metrics.gauge("fleet.workers.live").set(st.live_workers as f64);
            lines.push(format!(
                "[{}] retired after {} consecutive failures",
                worker.name, ledger.consecutive_failures
            ));
            if st.live_workers == 0 {
                st.fatal = Some(GeError::Fleet(format!(
                    "no live workers remain ({} shard(s) unfinished); last failure on worker `{}`: {}",
                    st.queue.len() + st.in_progress,
                    worker.name,
                    message
                )));
                self.cancel.cancel("fleet run aborted");
            }
            return (lines, false);
        }
        (lines, true)
    }

    /// Rejects a shard report that does not belong to this run before it can
    /// poison the strict merge — such a report is a worker bug, and the shard
    /// is retried elsewhere.
    fn validate_report(
        &self,
        report: &ShardReport,
        spec: &SweepSpec,
        expected_hash: &str,
        shard: Shard,
    ) -> Result<(), String> {
        if report.sweep != spec.name {
            return Err(format!(
                "worker returned a report for sweep `{}` (expected `{}`)",
                report.sweep, spec.name
            ));
        }
        if report.spec_hash != expected_hash {
            return Err(format!(
                "worker returned spec hash {} (expected {expected_hash})",
                report.spec_hash
            ));
        }
        if report.shard_index != shard.index || report.shard_count != shard.count {
            return Err(format!(
                "worker returned shard {}/{} (expected {})",
                report.shard_index,
                report.shard_count,
                shard.label()
            ));
        }
        Ok(())
    }

    /// Writes every completed shard report next to where the merged report
    /// would have gone, so a manual `geattack-merge` can finish an aborted
    /// run.
    fn preserve_partial_shards(&self, spec: &SweepSpec, results: &[Option<ShardReport>]) -> Vec<PathBuf> {
        let Some(dir) = &self.options.results_dir else {
            return Vec::new();
        };
        let mut preserved = Vec::new();
        for report in results.iter().flatten() {
            let path = dir.join(format!(
                "sweep_{}.shard{}of{}.json",
                spec.name, report.shard_index, report.shard_count
            ));
            if write_text(&path, &report.to_json()).is_ok() {
                preserved.push(path);
            }
        }
        preserved
    }

    fn collect_stats(
        &self,
        shard_count: usize,
        state: &FleetState,
        ledgers: &mut [WorkerLedger],
        wall_ms: f64,
    ) -> FleetStats {
        let counter = |name: &str| self.metrics.counter_value(name) as usize;
        FleetStats {
            shards: shard_count,
            dispatched: counter("fleet.shards.dispatched"),
            retried: counter("fleet.shards.retried"),
            reassigned: counter("fleet.shards.reassigned"),
            duplicates: counter("fleet.shards.duplicates"),
            finished_cells: state.completed_cells,
            wall_ms,
            workers: self
                .workers
                .iter()
                .zip(ledgers.iter_mut())
                .enumerate()
                .map(|(index, (worker, ledger))| WorkerSummary {
                    name: worker.name.clone(),
                    addr: worker.addr.clone(),
                    fleet_id: ledger.fleet_id.take(),
                    shards_completed: ledger.shards_completed,
                    failures: ledger.failures,
                    retired: ledger.retired,
                    latency: self.metrics.histogram(&worker_histogram_key(index, worker)).snapshot(),
                })
                .collect(),
        }
    }
}

impl FleetState {
    /// Clears the live-attempt cell count of `shard` (its cells either moved
    /// into `completed_cells` or will be re-run elsewhere).
    fn in_flight_reset(&mut self, shard: usize) {
        self.inflight_cells[shard] = 0;
    }
}

/// Per-worker latency histogram key, keyed by fleet index (not display name)
/// so two workers sharing a name or address never share a histogram.
fn worker_histogram_key(index: usize, worker: &Worker) -> String {
    format!("fleet.worker.{index}.{}.shard_ms", worker.name)
}

/// Remaining-work ETA from throughput so far; `None` until something finished.
fn eta_seconds(started: Instant, done: usize, total: usize) -> Option<f64> {
    if done == 0 || total <= done {
        return None;
    }
    let elapsed = started.elapsed().as_secs_f64();
    Some(elapsed / done as f64 * (total - done) as f64)
}

/// Creates the parent directory and writes `text` exactly — no trailing
/// newline, matching `geattack-sweep`'s artifact writer byte for byte.
fn write_text(path: &PathBuf, text: &str) -> Result<(), GeError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| GeError::Fleet(format!("cannot create {}: {e}", parent.display())))?;
    }
    std::fs::write(path, text).map_err(|e| GeError::Fleet(format!("cannot write {}: {e}", path.display())))
}
