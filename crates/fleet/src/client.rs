//! The client side of the `geattack-serve` NDJSON protocol, shared by the
//! fleet coordinator, `geattack-serve submit` and `geattack-loadtest`.
//!
//! One connection carries one request line and its response stream:
//!
//! * control requests (`{"request":"health"}`, `stats`, `cancel`, `drain`)
//!   answer with a single JSON line — see [`control`] / [`ServeClient::control`];
//! * a bare sweep spec runs the full grid and streams events until a `done`
//!   event embedding the merged report — see [`submit`];
//! * a wrapped `{"spec": {...}, "shard": "I/N"}` request runs one shard slice
//!   and streams the same events until a `done` event embedding the
//!   [`ShardReport`] (a partial shard cannot be merged server-side) — see
//!   [`ServeClient::submit_shard`].
//!
//! Errors are rendered strings (the idiom of the serve module this grew out
//! of): callers that need to distinguish transport failures from server-side
//! refusals look at the message, and the coordinator treats every failure the
//! same way — retry on another worker.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::Value;

use geattack_core::engine::CancelToken;
use geattack_core::sweep::{Shard, ShardReport};
use geattack_scenarios::SweepSpec;

/// What a successful [`submit`] brings back. A request with any failed cell
/// never reaches `done` (the server terminates it with an `error` event), so
/// a returned outcome always carries a complete report.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// Sweep name from the `done` event.
    pub sweep: String,
    /// The assembled report, pretty-printed — byte-identical to the
    /// `results/sweep_<name>.json` a `geattack-sweep` run of the same spec
    /// writes.
    pub report_pretty: String,
    /// This request's cache-counter delta on the daemon (`Value::Null` when
    /// the daemon runs uncached).
    pub cache: Value,
    /// The request id the daemon assigned (from the `accepted` event); the
    /// handle a `cancel` control request would target. `None` on daemons
    /// predating the worker pool.
    pub request_id: Option<u64>,
}

/// One parsed event of a sweep request's stream, as the coordinator consumes
/// it for live progress accounting. `cell`/`failed` positions index the
/// deterministic prepared-cell grid.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardEvent {
    /// The daemon admitted the request: its id, and the echoed shard label
    /// when the request was sharded.
    Accepted {
        /// Request id on the daemon (the handle a `cancel` would target).
        id: u64,
        /// `"I/N"` echo of the dispatched shard, `None` on bare requests.
        shard: Option<String>,
    },
    /// A prepared cell entered the plan.
    Planned {
        /// Deterministic grid position.
        position: usize,
    },
    /// A prepared cell started executing.
    Started {
        /// Deterministic grid position.
        position: usize,
    },
    /// A prepared cell finished and streamed its result cells.
    Finished {
        /// Deterministic grid position.
        position: usize,
    },
    /// A prepared cell failed (the session keeps running the rest).
    Failed {
        /// Deterministic grid position.
        position: usize,
        /// Machine-readable error kind (`GeError::kind`).
        kind: String,
        /// Rendered error message.
        error: String,
    },
}

/// Connects to the daemon, retrying until `timeout` elapses (so a script can
/// launch daemon and client together).
pub fn connect_retry(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("cannot connect to {addr}: {e}"));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// Sends one control request line (e.g. `{"request":"stats"}`) and returns the
/// parsed single-line response.
pub fn control(addr: &str, request: &str, timeout: Duration) -> Result<Value, String> {
    let stream = connect_retry(addr, timeout)?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{request}").map_err(|e| format!("cannot send request: {e}"))?;
    writer.flush().map_err(|e| format!("cannot send request: {e}"))?;
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("connection lost: {e}"))?;
    serde_json::from_str(response.trim()).map_err(|e| format!("malformed response: {e}"))
}

/// Submits one sweep spec (JSON text, any layout — it is compacted to one
/// line) and consumes the event stream until `done`/`error`. `progress` is
/// called with one human-readable line per streamed event.
pub fn submit(
    addr: &str,
    spec_text: &str,
    timeout: Duration,
    mut progress: impl FnMut(String),
) -> Result<SubmitOutcome, String> {
    let spec_value: Value = serde_json::from_str(spec_text).map_err(|e| format!("invalid spec JSON: {e}"))?;
    let request = serde_json::to_string(&spec_value).map_err(|e| e.to_string())?;

    let stream = connect_retry(addr, timeout)?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let reader = BufReader::new(stream);
    writeln!(writer, "{request}").map_err(|e| format!("cannot send request: {e}"))?;
    writer.flush().map_err(|e| format!("cannot send request: {e}"))?;

    let mut request_id = None;
    for response in reader.lines() {
        let response = response.map_err(|e| format!("connection lost: {e}"))?;
        let value: Value = serde_json::from_str(&response).map_err(|e| format!("malformed event: {e}"))?;
        let event = event_name(&value)?;
        let position = || match value.get_field("position") {
            Ok(Value::Number(p)) => *p as usize,
            _ => usize::MAX,
        };
        match event.as_str() {
            "accepted" => {
                if let Ok(Value::Number(id)) = value.get_field("id") {
                    request_id = Some(*id as u64);
                    progress(format!("request {} accepted", *id as u64));
                }
            }
            "planned" => {}
            "started" => progress(format!("cell {} started", position())),
            "cell" => progress(format!("cell {} finished", position())),
            "failed" => progress(format!("cell {} FAILED", position())),
            "error" => return Err(error_message(&value)),
            "done" => {
                let report = value
                    .get_field("report")
                    .map_err(|_| "done event without a report".to_string())?;
                let sweep = match value.get_field("sweep") {
                    Ok(Value::String(s)) => s.clone(),
                    _ => String::new(),
                };
                let cache = value.get_field("cache").ok().cloned().unwrap_or(Value::Null);
                return Ok(SubmitOutcome {
                    sweep,
                    report_pretty: serde_json::to_string_pretty(report).map_err(|e| e.to_string())?,
                    cache,
                    request_id,
                });
            }
            other => return Err(format!("unknown event `{other}`")),
        }
    }
    Err("connection closed before a `done` event".to_string())
}

/// The `event` field of a protocol line.
fn event_name(value: &Value) -> Result<String, String> {
    match value.get_field("event") {
        Ok(Value::String(event)) => Ok(event.clone()),
        _ => Err(format!(
            "event line without an `event` field: {}",
            serde_json::to_string(value).unwrap_or_default()
        )),
    }
}

/// The message of an `error` event.
fn error_message(value: &Value) -> String {
    match value.get_field("error") {
        Ok(Value::String(m)) => m.clone(),
        _ => "unspecified server error".to_string(),
    }
}

/// Parses one streamed line of a sharded sweep request into a [`ShardEvent`],
/// `Ok(None)` for lines the coordinator does not track (`done`/`error` are
/// handled by the caller before this).
pub fn parse_shard_event(value: &Value) -> Result<Option<ShardEvent>, String> {
    let position = |value: &Value| match value.get_field("position") {
        Ok(Value::Number(p)) => Ok(*p as usize),
        _ => Err("event without a numeric `position`".to_string()),
    };
    let text = |name: &str| match value.get_field(name) {
        Ok(Value::String(s)) => s.clone(),
        _ => String::new(),
    };
    match event_name(value)?.as_str() {
        "accepted" => {
            let id = match value.get_field("id") {
                Ok(Value::Number(id)) => *id as u64,
                _ => return Err("accepted event without a numeric `id`".to_string()),
            };
            let shard = match value.get_field("shard") {
                Ok(Value::String(s)) => Some(s.clone()),
                _ => None,
            };
            Ok(Some(ShardEvent::Accepted { id, shard }))
        }
        "planned" => Ok(Some(ShardEvent::Planned {
            position: position(value)?,
        })),
        "started" => Ok(Some(ShardEvent::Started {
            position: position(value)?,
        })),
        "cell" => Ok(Some(ShardEvent::Finished {
            position: position(value)?,
        })),
        "failed" => Ok(Some(ShardEvent::Failed {
            position: position(value)?,
            kind: text("kind"),
            error: text("error"),
        })),
        _ => Ok(None),
    }
}

/// A handle on one `geattack-serve` worker: address plus the client-side
/// timeouts of every operation against it.
#[derive(Clone, Debug)]
pub struct ServeClient {
    addr: String,
    /// How long to keep retrying the TCP connect.
    connect_timeout: Duration,
    /// Maximum silence between streamed events before the worker is declared
    /// hung and the connection dropped (which cancels the request server-side).
    idle_timeout: Duration,
}

impl ServeClient {
    /// A client with the coordinator's default timeouts (10 s connect, 300 s
    /// idle — a prepared cell at large scales trains a GCN between events).
    pub fn new(addr: impl Into<String>) -> Self {
        ServeClient {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
        }
    }

    /// Overrides both timeouts.
    pub fn with_timeouts(mut self, connect: Duration, idle: Duration) -> Self {
        self.connect_timeout = connect;
        self.idle_timeout = idle;
        self
    }

    /// The worker's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one control request line and returns the parsed response.
    pub fn control(&self, request: &str) -> Result<Value, String> {
        control(&self.addr, request, self.connect_timeout)
    }

    /// A `health` probe: `Ok` when the daemon answers `status: ok`.
    pub fn health(&self) -> Result<(), String> {
        let response = self.control(r#"{"request":"health"}"#)?;
        match response.get_field("status") {
            Ok(Value::String(s)) if s == "ok" => Ok(()),
            _ => Err(format!(
                "unhealthy worker {}: {}",
                self.addr,
                serde_json::to_string(&response).unwrap_or_default()
            )),
        }
    }

    /// The daemon's `stats` response (worker identity, counters, latency).
    pub fn stats(&self) -> Result<Value, String> {
        self.control(r#"{"request":"stats"}"#)
    }

    /// The worker's `--fleet-id` from its `stats` response, when it set one.
    pub fn fleet_id(&self) -> Result<Option<String>, String> {
        let stats = self.stats()?;
        Ok(match stats.get_field("worker").and_then(|w| w.get_field("fleet_id")) {
            Ok(Value::String(id)) => Some(id.clone()),
            _ => None,
        })
    }

    /// Submits a full (unsharded) sweep; see [`submit`].
    pub fn submit(&self, spec_text: &str, progress: impl FnMut(String)) -> Result<SubmitOutcome, String> {
        submit(&self.addr, spec_text, self.connect_timeout, progress)
    }

    /// Dispatches one shard slice of `spec` as a wrapped
    /// `{"spec": ..., "shard": "I/N"}` request and consumes the stream until
    /// the `done` event, whose embedded shard report is parsed and returned.
    ///
    /// `on_event` sees every tracked stream event ([`ShardEvent`]) as it
    /// arrives, for live progress accounting. When `cancel` is set mid-stream
    /// the connection is dropped — the daemon cancels the request on
    /// disconnect — and the call errors.
    pub fn submit_shard(
        &self,
        spec: &SweepSpec,
        shard: Shard,
        cancel: &CancelToken,
        mut on_event: impl FnMut(ShardEvent),
    ) -> Result<ShardReport, String> {
        let request = serde_json::to_string(&wrap_shard_request(spec, shard)).map_err(|e| e.to_string())?;
        let stream = connect_retry(&self.addr, self.connect_timeout)?;
        // Short socket timeout so cancellation and idle tracking tick even
        // when the worker streams nothing.
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .map_err(|e| e.to_string())?;
        let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{request}").map_err(|e| format!("cannot send request: {e}"))?;
        writer.flush().map_err(|e| format!("cannot send request: {e}"))?;

        loop {
            let line = self.read_event_line(&mut reader, cancel)?;
            let value: Value = serde_json::from_str(line.trim()).map_err(|e| format!("malformed event: {e}"))?;
            match event_name(&value)?.as_str() {
                "error" => return Err(error_message(&value)),
                "done" => {
                    let report = value
                        .get_field("shard_report")
                        .map_err(|_| "done event without a shard_report".to_string())?;
                    let text = serde_json::to_string(report).map_err(|e| e.to_string())?;
                    return ShardReport::from_json(&text).map_err(|e| e.to_string());
                }
                _ => {
                    if let Some(event) = parse_shard_event(&value)? {
                        on_event(event);
                    }
                }
            }
        }
    }

    /// Reads one NDJSON line, honoring the idle timeout and the cancel token
    /// across read-timeout ticks.
    fn read_event_line(&self, reader: &mut BufReader<TcpStream>, cancel: &CancelToken) -> Result<String, String> {
        let idle_deadline = Instant::now() + self.idle_timeout;
        let mut buf = String::new();
        loop {
            match reader.read_line(&mut buf) {
                // `read_line` returns `Ok` at EOF even without a trailing
                // newline, so a buffer not ending in '\n' is a mid-line
                // disconnect, not a complete event line.
                Ok(_) if buf.ends_with('\n') => return Ok(buf),
                Ok(_) => return Err(format!("worker {} closed the connection mid-stream", self.addr)),
                Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                    // Partial data (if any) stays appended to `buf`.
                    if cancel.is_cancelled() {
                        // Dropping the reader closes the socket; the daemon
                        // cancels the request when the client goes away.
                        return Err("sweep cancelled by the coordinator".to_string());
                    }
                    if Instant::now() >= idle_deadline {
                        return Err(format!(
                            "worker {} silent for more than {:?}",
                            self.addr, self.idle_timeout
                        ));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("connection lost: {e}")),
            }
        }
    }
}

/// The wrapped request line dispatching `shard` of `spec`.
fn wrap_shard_request(spec: &SweepSpec, shard: Shard) -> Value {
    Value::Object(vec![
        ("spec".to_string(), serde_json::to_value(spec)),
        ("shard".to_string(), Value::String(shard.label())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).expect("test JSON parses")
    }

    #[test]
    fn shard_events_parse_from_protocol_lines() {
        let accepted = parse(r#"{"event":"accepted","id":7,"cost":12.0,"queue_depth":0,"shard":"1/3"}"#);
        assert_eq!(
            parse_shard_event(&accepted).expect("parses"),
            Some(ShardEvent::Accepted {
                id: 7,
                shard: Some("1/3".to_string())
            })
        );
        let bare = parse(r#"{"event":"accepted","id":7,"cost":12.0,"queue_depth":0}"#);
        assert_eq!(
            parse_shard_event(&bare).expect("parses"),
            Some(ShardEvent::Accepted { id: 7, shard: None })
        );
        let cell = parse(r#"{"event":"cell","position":4,"cells":[]}"#);
        assert_eq!(
            parse_shard_event(&cell).expect("parses"),
            Some(ShardEvent::Finished { position: 4 })
        );
        let failed = parse(r#"{"event":"failed","position":2,"kind":"prepare","error":"boom"}"#);
        assert_eq!(
            parse_shard_event(&failed).expect("parses"),
            Some(ShardEvent::Failed {
                position: 2,
                kind: "prepare".to_string(),
                error: "boom".to_string()
            })
        );
        let done = parse(r#"{"event":"done","sweep":"x"}"#);
        assert_eq!(parse_shard_event(&done).expect("parses"), None);
        assert!(parse_shard_event(&parse(r#"{"position":1}"#)).is_err());
        assert!(parse_shard_event(&parse(r#"{"event":"cell"}"#)).is_err());
    }

    #[test]
    fn partial_line_at_eof_reads_as_a_mid_stream_disconnect() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("client connects");
            let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("request line");
            let mut writer = BufWriter::new(stream);
            writeln!(writer, r#"{{"event":"accepted","id":1,"cost":1.0,"queue_depth":0,"shard":"0/1"}}"#)
                .expect("accepted line");
            write!(writer, r#"{{"event":"cell","posi"#).expect("partial line");
            writer.flush().expect("flush");
            // Dropping the socket closes the connection mid-line.
        });

        let spec = SweepSpec::from_json(r#"{"name":"partial","families":["tree-cycles"],"attackers":["rna"]}"#)
            .expect("spec parses");
        let client = ServeClient::new(addr).with_timeouts(Duration::from_secs(5), Duration::from_secs(5));
        let err = client
            .submit_shard(&spec, Shard { index: 0, count: 1 }, &CancelToken::new(), |_| {})
            .expect_err("a truncated stream must fail");
        assert!(
            err.contains("closed the connection mid-stream"),
            "a partial line at EOF must diagnose as a disconnect, not malformed JSON: {err}"
        );
    }

    #[test]
    fn shard_requests_wrap_spec_and_label() {
        let spec = SweepSpec::from_json(r#"{"name":"wrap","families":["tree-cycles"],"attackers":["rna"]}"#)
            .expect("spec parses");
        let wrapped = wrap_shard_request(&spec, Shard { index: 1, count: 3 });
        assert!(matches!(
            wrapped.get_field("shard"),
            Ok(Value::String(s)) if s == "1/3"
        ));
        let inner = wrapped.get_field("spec").expect("spec field");
        assert!(matches!(
            inner.get_field("name"),
            Ok(Value::String(s)) if s == "wrap"
        ));
    }
}
