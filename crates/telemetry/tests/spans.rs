//! Span-core behavior: the global enable gate, parent tracking, and the
//! LIFO-nesting property. Recording is process-global, so every test that
//! installs a recorder serializes on one mutex.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;

use geattack_telemetry::span::open_span_depth;
use geattack_telemetry::{install, span, span_labeled, uninstall, Level, RingRecorder, SpanGuard};

fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn spans_are_inert_without_a_recorder() {
    let _serial = recorder_lock();
    uninstall();
    let guard = span(Level::Cell, "cell");
    assert!(!guard.is_recording());
    assert_eq!(guard.id(), 0);
    assert_eq!(open_span_depth(), 0);
    drop(guard);
}

#[test]
fn recorded_spans_carry_parent_label_and_timing() {
    let _serial = recorder_lock();
    let ring = Arc::new(RingRecorder::new(64));
    install(ring.clone());
    {
        let outer = span_labeled(Level::Cell, "cell", "pos=3");
        assert!(outer.is_recording());
        let inner = span(Level::Phase, "prepare");
        assert_eq!(open_span_depth(), 2);
        drop(inner);
        drop(outer);
    }
    uninstall();
    let spans = ring.drain();
    assert_eq!(spans.len(), 2);
    // Spans are recorded when they close: innermost first.
    assert_eq!(spans[0].name, "prepare");
    assert_eq!(spans[1].name, "cell");
    assert_eq!(spans[1].label, "pos=3");
    assert_eq!(spans[1].parent, 0);
    assert_eq!(spans[0].parent, spans[1].id);
    assert_eq!(spans[0].thread, spans[1].thread);
    assert!(spans[0].start_us >= spans[1].start_us);
    assert_eq!(open_span_depth(), 0);
}

#[test]
fn recorder_level_filters_finer_spans() {
    let _serial = recorder_lock();
    let ring = Arc::new(RingRecorder::with_level(64, Level::Phase));
    install(ring.clone());
    let phase = span(Level::Phase, "prepare");
    let detail = span(Level::Detail, "spmm");
    assert!(phase.is_recording());
    assert!(!detail.is_recording());
    drop(detail);
    drop(phase);
    uninstall();
    let names: Vec<&str> = ring.drain().iter().map(|s| s.name).collect();
    assert_eq!(names, vec!["prepare"]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any balanced open/close sequence, guards close in LIFO order, every
    /// span's recorded parent is the span that was innermost when it opened,
    /// and no span is orphaned (its parent is recorded after it or is root).
    #[test]
    fn span_nesting_is_lifo_with_no_orphans(ops in proptest::collection::vec(0usize..2, 1..40)) {
        let _serial = recorder_lock();
        let ring = Arc::new(RingRecorder::new(256));
        install(ring.clone());

        let mut open: Vec<SpanGuard> = Vec::new();
        let mut expected_parent: HashMap<u64, u64> = HashMap::new();
        let mut close_order: Vec<u64> = Vec::new();
        let base_depth = open_span_depth();
        for op in ops {
            if op == 0 || open.is_empty() {
                let parent = open.last().map_or(0, |g| g.id());
                let guard = span(Level::Detail, "prop");
                expected_parent.insert(guard.id(), parent);
                open.push(guard);
            } else {
                let guard = open.pop().unwrap();
                close_order.push(guard.id());
                drop(guard);
            }
            prop_assert_eq!(open_span_depth() - base_depth, open.len());
        }
        while let Some(guard) = open.pop() {
            close_order.push(guard.id());
            drop(guard);
        }
        uninstall();
        prop_assert_eq!(open_span_depth(), base_depth);

        let spans = ring.drain();
        let recorded: Vec<u64> = spans.iter().map(|s| s.id).collect();
        // Records appear in close order (a recorder sees a span when it ends).
        prop_assert_eq!(&recorded, &close_order);
        // Parents are exactly the innermost-open span at open time.
        for span in &spans {
            prop_assert_eq!(span.parent, expected_parent[&span.id]);
        }
        // No orphans: every non-root parent was itself recorded, and later
        // than all of its children (LIFO).
        let position: HashMap<u64, usize> = recorded.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for span in &spans {
            if span.parent != 0 {
                let parent_pos = position.get(&span.parent);
                prop_assert!(parent_pos.is_some(), "span {} has unrecorded parent {}", span.id, span.parent);
                prop_assert!(parent_pos.unwrap() > &position[&span.id]);
            }
        }
    }
}
