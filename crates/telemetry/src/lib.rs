//! # geattack-telemetry
//!
//! The observability core of the workspace: structured spans, pluggable
//! recorders and a metrics registry — with **zero dependencies**, so that even
//! leaf crates like `geattack-cache` and `geattack-tensor` can emit telemetry
//! without picking up serde or the rayon shim.
//!
//! * [`span`] — [`SpanGuard`]s measure a region on the monotonic clock and
//!   report it, with its parent span and thread, to the installed recorder
//!   when the guard drops. Spans carry a [`Level`] (`Cell` > `Phase` >
//!   `Detail`); whether a span is live is a single relaxed atomic load, so an
//!   uninstrumented process pays one branch per call site and allocates
//!   nothing.
//! * [`recorder`] — the [`Recorder`] sink trait plus the three built-ins:
//!   [`NoopRecorder`] (accepts and discards, for overhead measurement),
//!   [`RingRecorder`] (bounded in-memory buffer, for tests and the daemon) and
//!   [`NdjsonRecorder`] (one JSON object per line to a file, for offline
//!   analysis; `geattack-sweep --telemetry PATH` installs one).
//! * [`metrics`] — named [`Counter`]s/[`Gauge`]s/[`Histogram`]s in an
//!   instantiable [`MetricsRegistry`]. Histograms use fixed latency buckets
//!   and export p50/p95/p99; registries are per-owner (the engine owns one,
//!   each `CacheStore` owns one) so per-store counters and per-request deltas
//!   stay exact instead of being smeared into process-wide globals.
//!
//! Recording is process-global and off by default: [`install`] a recorder to
//! start capturing, [`uninstall`] to stop. Reports stay byte-identical with
//! telemetry on or off because spans and metrics never feed back into the
//! computation — that invariant is pinned by the integration tests.

pub mod metrics;
pub mod recorder;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HistogramTimer, MetricsRegistry, MetricsSnapshot};
pub use recorder::{NdjsonRecorder, NoopRecorder, Recorder, RingRecorder};
pub use span::{span, span_labeled, Level, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, RwLock};

/// Maximum live level, `0` when no recorder is installed. Read relaxed on
/// every span construction — this is the fast path that keeps disabled
/// telemetry effectively free.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// The installed recorder. Only consulted after the level check passes.
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Installs `recorder` as the process-wide span sink and enables spans up to
/// `recorder.level()`. Replaces any previously installed recorder.
pub fn install(recorder: Arc<dyn Recorder>) {
    let level = recorder.level().as_u8();
    *RECORDER.write().unwrap() = Some(recorder);
    LEVEL.store(level, Ordering::SeqCst);
}

/// Disables span recording and returns the previously installed recorder, if
/// any, so callers can flush or inspect it.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    LEVEL.store(0, Ordering::SeqCst);
    RECORDER.write().unwrap().take()
}

/// Whether spans at `level` are currently recorded.
#[inline]
pub fn enabled(level: Level) -> bool {
    level.as_u8() <= LEVEL.load(Ordering::Relaxed)
}

/// Flushes the installed recorder (NDJSON sinks buffer writes).
pub fn flush() {
    if let Some(recorder) = RECORDER.read().unwrap().as_ref() {
        recorder.flush();
    }
}

/// Hands a finished span to the installed recorder.
pub(crate) fn dispatch(record: &SpanRecord) {
    if let Some(recorder) = RECORDER.read().unwrap().as_ref() {
        recorder.record(record);
    }
}
