//! Monotonic-clock spans with thread-local nesting.
//!
//! A [`SpanGuard`] measures the region between its construction and its drop.
//! Guards are plain stack values, so Rust's drop order enforces LIFO nesting
//! per thread; each guard records its parent (the span that was innermost on
//! this thread when it opened), which lets offline tooling rebuild the call
//! tree from a flat NDJSON trace. When the span's [`Level`] is not enabled the
//! guard is inert: no clock read, no allocation, no stack push.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Coarseness of a span. Recorders opt into a maximum level; a recorder at
/// [`Level::Phase`] captures `Cell` and `Phase` spans and skips `Detail`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// One sweep cell or one served request.
    Cell,
    /// One pipeline phase within a cell: prepare, train, attack run,
    /// persist encode/decode, cache get/put.
    Phase,
    /// Hot-loop granularity: a train epoch, one victim's attack, one
    /// explanation, one spmm call. High-volume; off in the default NDJSON
    /// sink, on in the in-memory ring for tests.
    Detail,
}

impl Level {
    /// Numeric form used by the global enabled-level gate (higher = finer).
    #[inline]
    pub fn as_u8(self) -> u8 {
        match self {
            Level::Cell => 1,
            Level::Phase => 2,
            Level::Detail => 3,
        }
    }

    /// Stable lowercase name, used by the NDJSON sink.
    pub fn name(self) -> &'static str {
        match self {
            Level::Cell => "cell",
            Level::Phase => "phase",
            Level::Detail => "detail",
        }
    }
}

/// A finished span as handed to a [`crate::Recorder`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root span.
    pub parent: u64,
    /// Taxonomy name, e.g. `"prepare"` or `"attack.victim"`.
    pub name: &'static str,
    /// Free-form instance label (victim id, cell position, ...); may be empty.
    pub label: String,
    /// Coarseness the span was declared at.
    pub level: Level,
    /// Small dense id of the recording thread (1-based, per process).
    pub thread: u64,
    /// Microseconds since the process telemetry epoch (first span ever).
    pub start_us: u64,
    /// Wall-clock duration in microseconds (monotonic clock).
    pub elapsed_us: u64,
}

/// Monotonic time origin shared by every span in the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Process-unique span ids; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread ids (`std::thread::ThreadId` has no stable integer form).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ids of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Opens an unlabeled span. Equivalent to [`span_labeled`] with `""`.
#[inline]
pub fn span(level: Level, name: &'static str) -> SpanGuard {
    if !crate::enabled(level) {
        return SpanGuard { active: None };
    }
    SpanGuard::open(level, name, String::new())
}

/// Opens a span carrying an instance label (victim id, grid position, ...).
/// The label is only materialized when the level is enabled, so call sites may
/// pass `format!`-built strings via a closure-free `&dyn Fn` — in practice the
/// hot paths guard with [`crate::enabled`] before formatting.
#[inline]
pub fn span_labeled(level: Level, name: &'static str, label: impl Into<String>) -> SpanGuard {
    if !crate::enabled(level) {
        return SpanGuard { active: None };
    }
    SpanGuard::open(level, name, label.into())
}

/// RAII guard for one span; records the span when dropped. Inert (all no-ops)
/// when the span's level was disabled at construction time.
#[must_use = "a span measures the region until the guard drops"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    label: String,
    level: Level,
    thread: u64,
    start: Instant,
    start_us: u64,
}

impl SpanGuard {
    fn open(level: Level, name: &'static str, label: String) -> SpanGuard {
        let start = Instant::now();
        let start_us = start.duration_since(epoch()).as_micros() as u64;
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        });
        let thread = THREAD_ID.with(|t| *t);
        SpanGuard {
            active: Some(ActiveSpan {
                id,
                parent,
                name,
                label,
                level,
                thread,
                start,
                start_us,
            }),
        }
    }

    /// Whether this guard is live (its level was enabled when it opened).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// The span id, or 0 for an inert guard.
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed_us = active.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|stack| {
            // Guards are stack values so this is the top entry; a guard moved
            // into a longer-lived structure is removed from wherever it sits
            // so sibling spans never inherit a closed parent.
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            label: active.label,
            level: active.level,
            thread: active.thread,
            start_us: active.start_us,
            elapsed_us,
        };
        crate::dispatch(&record);
    }
}

/// Depth of the span stack on the current thread (test/diagnostic hook).
pub fn open_span_depth() -> usize {
    SPAN_STACK.with(|stack| stack.borrow().len())
}
