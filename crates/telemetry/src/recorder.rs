//! Span sinks: the [`Recorder`] trait and the three built-in recorders.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::span::{Level, SpanRecord};

/// A thread-safe sink for finished spans. Implementations must tolerate
/// concurrent `record` calls from rayon worker threads.
pub trait Recorder: Send + Sync {
    /// Finest level this recorder wants; spans below it are never created.
    fn level(&self) -> Level {
        Level::Detail
    }

    /// Accepts one finished span.
    fn record(&self, span: &SpanRecord);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Accepts every span and discards it. Exists so the full recording machinery
/// (clock reads, stack pushes, label formatting) can be measured without a
/// sink — the "noop vs recording" overhead benchmark installs this.
#[derive(Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _span: &SpanRecord) {}
}

/// A bounded in-memory span buffer: keeps the most recent `capacity` spans and
/// counts the ones it had to drop. The daemon holds one for live span
/// summaries; tests use it to assert on instrumentation coverage.
#[derive(Debug)]
pub struct RingRecorder {
    level: Level,
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl RingRecorder {
    /// A ring capturing all levels, keeping the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self::with_level(capacity, Level::Detail)
    }

    /// A ring capturing spans up to `level` only.
    pub fn with_level(capacity: usize, level: Level) -> Self {
        RingRecorder {
            level,
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Copies out the buffered spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().iter().cloned().collect()
    }

    /// Removes and returns the buffered spans, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().drain(..).collect()
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Recorder for RingRecorder {
    fn level(&self) -> Level {
        self.level
    }

    fn record(&self, span: &SpanRecord) {
        let mut spans = self.spans.lock().unwrap();
        if spans.len() == self.capacity {
            spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(span.clone());
    }
}

/// Streams spans as NDJSON — one JSON object per line — to a file, for offline
/// trace analysis (`geattack-sweep --telemetry PATH`). Defaults to
/// [`Level::Phase`] so hot-loop `Detail` spans (per-epoch, per-spmm) don't
/// flood the trace; use [`NdjsonRecorder::with_level`] to widen it.
///
/// Line schema (all times microseconds; `start_us` is relative to the first
/// span in the process):
///
/// ```json
/// {"span":"prepare","label":"ba-shapes/s0","level":"phase","id":7,"parent":3,
///  "thread":1,"start_us":120,"elapsed_us":4520}
/// ```
pub struct NdjsonRecorder {
    level: Level,
    out: Mutex<BufWriter<File>>,
}

impl NdjsonRecorder {
    /// Creates (truncates) `path` and records `Cell` + `Phase` spans to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::with_level(path, Level::Phase)
    }

    /// Creates (truncates) `path`, recording spans up to `level`.
    pub fn with_level(path: impl AsRef<Path>, level: Level) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(NdjsonRecorder {
            level,
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Recorder for NdjsonRecorder {
    fn level(&self) -> Level {
        self.level
    }

    fn record(&self, span: &SpanRecord) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"span\":\"");
        push_escaped(&mut line, span.name);
        line.push_str("\",\"label\":\"");
        push_escaped(&mut line, &span.label);
        line.push_str("\",\"level\":\"");
        line.push_str(span.level.name());
        line.push_str("\",\"id\":");
        line.push_str(&span.id.to_string());
        line.push_str(",\"parent\":");
        line.push_str(&span.parent.to_string());
        line.push_str(",\"thread\":");
        line.push_str(&span.thread.to_string());
        line.push_str(",\"start_us\":");
        line.push_str(&span.start_us.to_string());
        line.push_str(",\"elapsed_us\":");
        line.push_str(&span.elapsed_us.to_string());
        line.push_str("}\n");
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

impl Drop for NdjsonRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters) —
/// span names are static identifiers but labels are free-form.
fn push_escaped(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: u64, name: &'static str, label: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            label: label.to_string(),
            level: Level::Phase,
            thread: 1,
            start_us: 10,
            elapsed_us: 20,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = RingRecorder::new(2);
        ring.record(&record(1, 0, "a", ""));
        ring.record(&record(2, 0, "b", ""));
        ring.record(&record(3, 0, "c", ""));
        let spans: Vec<u64> = ring.snapshot().iter().map(|s| s.id).collect();
        assert_eq!(spans, vec![2, 3]);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn ndjson_lines_are_valid_json_with_escaping() {
        let dir = std::env::temp_dir().join(format!("geattack-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.ndjson");
        let recorder = NdjsonRecorder::create(&path).unwrap();
        recorder.record(&record(1, 0, "cache.get", "quote\"back\\slash\nnewline"));
        recorder.flush();
        drop(recorder);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"span\":\"cache.get\",\"label\":\"quote\\\"back\\\\slash\\nnewline\",\"level\":\"phase\",\
             \"id\":1,\"parent\":0,\"thread\":1,\"start_us\":10,\"elapsed_us\":20}\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ndjson_default_level_is_phase() {
        let dir = std::env::temp_dir().join(format!("geattack-telemetry-lvl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let recorder = NdjsonRecorder::create(dir.join("t.ndjson")).unwrap();
        assert_eq!(recorder.level(), Level::Phase);
        std::fs::remove_dir_all(&dir).ok();
    }
}
