//! Named counters, gauges and fixed-bucket latency histograms.
//!
//! A [`MetricsRegistry`] is an instantiable bag of named instruments —
//! deliberately *not* a process-global: the engine owns one for cell/phase
//! metrics, each `CacheStore` owns one for its hit/miss/evict counters, and
//! the serve daemon owns one for request accounting. Instruments are created
//! on first use and shared via `Arc`, so hot paths hold the `Arc` and never
//! touch the registry lock again.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default latency bucket upper bounds, in milliseconds. Spans two orders
/// around the workloads the engine actually sees: sub-millisecond cache hits
/// up to minute-scale huge-grid cells. An implicit overflow bucket catches
/// everything above the last bound.
pub const LATENCY_BUCKETS_MS: &[f64] = &[
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 15000.0, 60000.0,
];

/// A fixed-bucket histogram over non-negative `f64` samples (milliseconds by
/// convention). Records are lock-free; percentiles are estimated by linear
/// interpolation inside the bucket containing the rank, clamped to the
/// observed min/max so tiny samples don't report a bucket edge they never saw.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, ascending.
    bounds: Vec<f64>,
    /// One slot per finite bucket plus a trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Bit-cast f64 accumulators maintained with CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the default latency buckets.
    pub fn new() -> Self {
        Self::with_bounds(LATENCY_BUCKETS_MS)
    }

    /// A histogram with custom ascending upper bounds.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: f64) {
        let idx = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fetch_update_f64(&self.sum_bits, |sum| sum + value);
        fetch_update_f64(&self.min_bits, |min| min.min(value));
        fetch_update_f64(&self.max_bits, |max| max.max(value));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `p`-th percentile (`0.0..=100.0`); 0.0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        // Rank of the target sample, 1-based, clamped into [1, count].
        let rank = ((p / 100.0) * count as f64).ceil().clamp(1.0, count as f64);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if (cumulative + in_bucket) as f64 >= rank {
                let lower = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
                let upper = if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    // Overflow bucket: everything here is <= observed max.
                    max
                };
                let fraction = (rank - cumulative as f64) / in_bucket as f64;
                let estimate = lower + (upper - lower) * fraction.clamp(0.0, 1.0);
                return estimate.clamp(min, max);
            }
            cumulative += in_bucket;
        }
        max
    }

    /// A point-in-time summary of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }

    /// Per-bucket counts (finite buckets then the overflow bucket), for tests.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Starts a timer that records its elapsed milliseconds into this
    /// histogram when dropped (or earlier via
    /// [`HistogramTimer::observe_duration`]). The fleet coordinator times each
    /// per-worker shard attempt this way so retries and early returns are
    /// still accounted.
    pub fn start_timer(self: &Arc<Self>) -> HistogramTimer {
        HistogramTimer {
            histogram: Some(Arc::clone(self)),
            started: std::time::Instant::now(),
        }
    }
}

/// A guard from [`Histogram::start_timer`]: records the elapsed wall-clock
/// milliseconds exactly once — on drop, or eagerly via
/// [`HistogramTimer::observe_duration`].
#[derive(Debug)]
pub struct HistogramTimer {
    /// Taken on the first observation so drop-after-observe records nothing.
    histogram: Option<Arc<Histogram>>,
    started: std::time::Instant,
}

impl HistogramTimer {
    /// Records now and returns the observed milliseconds.
    pub fn observe_duration(mut self) -> f64 {
        self.observe()
    }

    fn observe(&mut self) -> f64 {
        let elapsed_ms = self.started.elapsed().as_secs_f64() * 1e3;
        if let Some(histogram) = self.histogram.take() {
            histogram.record(elapsed_ms);
        }
        elapsed_ms
    }
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.observe();
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// CAS-loop update of an `f64` stored as bits in an `AtomicU64`.
fn fetch_update_f64(cell: &AtomicU64, update: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = update(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Exported summary of one histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

/// A named bag of instruments; see the module docs for the ownership model.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().unwrap();
        Arc::clone(counters.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().unwrap();
        Arc::clone(gauges.entry(name.to_string()).or_default())
    }

    /// The histogram named `name` (default latency buckets), created on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().unwrap();
        Arc::clone(histograms.entry(name.to_string()).or_default())
    }

    /// Current value of the counter named `name` (0 if never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().unwrap().get(name).map_or(0, |c| c.get())
    }

    /// A point-in-time snapshot of every instrument, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time export of a [`MetricsRegistry`], name-sorted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let registry = MetricsRegistry::new();
        let hits = registry.counter("cache.hits");
        hits.inc();
        hits.add(4);
        assert_eq!(registry.counter("cache.hits").get(), 5);
        assert_eq!(registry.counter_value("cache.hits"), 5);
        assert_eq!(registry.counter_value("cache.misses"), 0);
        let gauge = registry.gauge("uptime");
        gauge.set(1.5);
        assert_eq!(registry.gauge("uptime").get(), 1.5);
    }

    #[test]
    fn histogram_buckets_samples_at_upper_bound_inclusive() {
        let h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        h.record(0.5); // bucket 0: (0, 1]
        h.record(1.0); // bucket 0: upper bound is inclusive
        h.record(5.0); // bucket 1: (1, 10]
        h.record(100.0); // bucket 2
        h.record(1000.0); // overflow bucket
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106.5);
    }

    #[test]
    fn histogram_percentiles_interpolate_within_buckets() {
        let h = Histogram::with_bounds(&[10.0, 20.0, 30.0]);
        // 100 samples of 5ms -> every percentile sits in bucket (0, 10].
        for _ in 0..100 {
            h.record(5.0);
        }
        // All mass in one bucket: interpolation stays within [min, max] = [5, 5].
        assert_eq!(h.percentile(50.0), 5.0);
        assert_eq!(h.percentile(99.0), 5.0);
    }

    #[test]
    fn histogram_percentiles_split_across_buckets() {
        let h = Histogram::with_bounds(&[10.0, 20.0]);
        for _ in 0..90 {
            h.record(8.0); // bucket (0, 10]
        }
        for _ in 0..10 {
            h.record(18.0); // bucket (10, 20]
        }
        // p50 lands mid-first-bucket; estimate is in (0, 10], clamped to >= min 8.
        let p50 = h.percentile(50.0);
        assert!((8.0..=10.0).contains(&p50), "p50 = {p50}");
        // p95 lands in the second bucket; estimate is in (10, 18].
        let p95 = h.percentile(95.0);
        assert!((10.0..=18.0).contains(&p95), "p95 = {p95}");
        // p100 == max sample.
        assert_eq!(h.percentile(100.0), 18.0);
    }

    #[test]
    fn histogram_overflow_bucket_reports_observed_max() {
        let h = Histogram::with_bounds(&[1.0]);
        h.record(250.0);
        h.record(500.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, 500.0);
        assert_eq!(h.percentile(99.0), 500.0);
        assert!(snap.p50 <= 500.0 && snap.p50 >= 250.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let snap = Histogram::new().snapshot();
        assert_eq!(
            snap,
            HistogramSnapshot {
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            }
        );
    }

    #[test]
    fn snapshot_is_name_sorted_and_complete() {
        let registry = MetricsRegistry::new();
        registry.counter("b").inc();
        registry.counter("a").add(2);
        registry.histogram("lat").record(3.0);
        let snap = registry.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "lat");
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn histogram_timer_records_once_on_drop_or_observe() {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("fleet.shard_ms");
        {
            let _timer = histogram.start_timer();
        }
        assert_eq!(histogram.count(), 1, "dropping the timer records one sample");
        let observed = histogram.start_timer().observe_duration();
        assert!(observed >= 0.0);
        assert_eq!(histogram.count(), 2, "observe_duration records exactly once");
        assert!(histogram.sum() >= 0.0);
    }

    #[test]
    fn default_buckets_cover_the_latency_range() {
        let h = Histogram::new();
        h.record(0.1);
        h.record(90_000.0);
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), LATENCY_BUCKETS_MS.len() + 1);
        assert_eq!(counts[0], 1);
        assert_eq!(*counts.last().unwrap(), 1);
    }
}
