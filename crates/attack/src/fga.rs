//! Fast Gradient Attack (FGA) and its targeted variant FGA-T.
//!
//! FGA relaxes the adjacency matrix to continuous values, computes the gradient of
//! the attack loss with respect to every potential edge, greedily inserts the edge
//! with the most helpful gradient, and repeats until the budget is exhausted
//! (Section 4.1 of the paper). FGA maximizes the loss of the *true* label
//! (untargeted); FGA-T minimizes the loss of a *specific* target label (Eq. 4).

use geattack_graph::Perturbation;

use crate::{best_candidate_by_gradient, candidate_endpoints, AttackContext, LossGradients, TargetedAttack};

/// Untargeted fast-gradient attack.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fga;

/// Targeted fast-gradient attack (FGA-T).
#[derive(Clone, Copy, Debug, Default)]
pub struct FgaT {
    /// When `true`, candidate endpoints are restricted to nodes whose ground-truth
    /// label equals the attacker's target label (the paper's adaptation of the
    /// baselines to the targeted setting).
    pub restrict_to_target_label: bool,
}

/// Shared greedy loop: repeatedly recompute the gradient on the current perturbed
/// graph and insert the best candidate edge.
fn greedy_gradient_attack(
    ctx: &AttackContext<'_>,
    exclude: &[usize],
    targeted: bool,
    restrict_to_target_label: bool,
) -> Perturbation {
    let mut perturbation = Perturbation::new();
    let mut working = ctx.graph.clone();
    // Features never change across insertions; the X·W₁ projection is shared by
    // every per-insertion gradient call.
    let gradients = LossGradients::new(ctx.model, ctx.graph.features());

    for _ in 0..ctx.budget {
        let mut candidates = candidate_endpoints(&working, ctx.target, exclude);
        if restrict_to_target_label {
            let restricted: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&v| working.label(v) == ctx.target_label)
                .collect();
            if !restricted.is_empty() {
                candidates = restricted;
            }
        }
        if candidates.is_empty() {
            break;
        }
        let grad = if targeted {
            gradients.targeted(&working, ctx.target, ctx.target_label)
        } else {
            gradients.untargeted(&working, ctx.target)
        };
        let Some(best) = best_candidate_by_gradient(&grad, ctx.target, &candidates) else {
            break;
        };
        perturbation.add_edge(ctx.target, best);
        working.add_edge(ctx.target, best);
    }
    perturbation
}

impl TargetedAttack for Fga {
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation {
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Detail, "attack.fga");
        greedy_gradient_attack(ctx, &[], false, false)
    }

    fn name(&self) -> &'static str {
        "FGA"
    }
}

impl TargetedAttack for FgaT {
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation {
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Detail, "attack.fga-t");
        greedy_gradient_attack(ctx, &[], true, self.restrict_to_target_label)
    }

    fn name(&self) -> &'static str {
        "FGA-T"
    }
}

impl FgaT {
    /// Runs FGA-T while excluding the given endpoints from the candidate set
    /// (used by FGA-T&E).
    pub fn attack_excluding(&self, ctx: &AttackContext<'_>, exclude: &[usize]) -> Perturbation {
        greedy_gradient_attack(ctx, exclude, true, self.restrict_to_target_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{pick_victim, small_setup};
    use geattack_gnn::predicted_class;

    #[test]
    fn fga_t_reaches_target_label_with_degree_budget() {
        let (graph, model) = small_setup(21);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext::with_degree_budget(&model, &graph, victim, target_label);
        let p = FgaT::default().attack(&ctx);
        assert!(p.size() <= ctx.budget);
        assert!(!p.is_empty());
        let attacked = p.apply(&graph);
        // The targeted probability must strictly increase; with a degree budget it
        // usually flips the prediction entirely.
        let before = model.predict_proba(&graph)[(victim, target_label)];
        let after = model.predict_proba(&attacked)[(victim, target_label)];
        assert!(after > before, "FGA-T failed to increase target-label probability");
    }

    #[test]
    fn fga_untargeted_degrades_true_label() {
        let (graph, model) = small_setup(22);
        let (victim, _) = pick_victim(&graph, &model);
        let true_label = graph.label(victim);
        let ctx = AttackContext::with_degree_budget(&model, &graph, victim, 0);
        let p = Fga.attack(&ctx);
        let attacked = p.apply(&graph);
        let before = model.predict_proba(&graph)[(victim, true_label)];
        let after = model.predict_proba(&attacked)[(victim, true_label)];
        assert!(after < before, "FGA did not reduce the true-label probability");
    }

    #[test]
    fn all_added_edges_touch_the_target() {
        let (graph, model) = small_setup(23);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 3,
        };
        let p = FgaT::default().attack(&ctx);
        for &(u, v) in p.added() {
            assert!(
                u == victim || v == victim,
                "direct attack must only add edges incident to the target"
            );
        }
    }

    #[test]
    fn label_restriction_is_honored() {
        let (graph, model) = small_setup(24);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        let p = FgaT {
            restrict_to_target_label: true,
        }
        .attack(&ctx);
        for &(u, v) in p.added() {
            let other = if u == victim { v } else { u };
            assert_eq!(graph.label(other), target_label);
        }
    }

    #[test]
    fn exclusion_list_is_honored() {
        let (graph, model) = small_setup(25);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        let unrestricted = FgaT::default().attack(&ctx);
        let first_choice = {
            let &(u, v) = &unrestricted.added()[0];
            if u == victim {
                v
            } else {
                u
            }
        };
        let p = FgaT::default().attack_excluding(&ctx, &[first_choice]);
        for &(u, v) in p.added() {
            let other = if u == victim { v } else { u };
            assert_ne!(other, first_choice, "excluded endpoint was used anyway");
        }
    }

    #[test]
    fn stronger_budget_is_at_least_as_successful() {
        let (graph, model) = small_setup(26);
        let (victim, target_label) = pick_victim(&graph, &model);
        let small = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 1,
        };
        let large = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 4,
        };
        let p_small = FgaT::default().attack(&small).apply(&graph);
        let p_large = FgaT::default().attack(&large).apply(&graph);
        let prob_small = model.predict_proba(&p_small)[(victim, target_label)];
        let prob_large = model.predict_proba(&p_large)[(victim, target_label)];
        assert!(prob_large >= prob_small - 1e-9);
        // With 4 edges the prediction should move to (or at least toward) the target label.
        let _ = predicted_class(&model, &p_large, victim);
    }
}
