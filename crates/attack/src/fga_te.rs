//! FGA-T&E: the straightforward joint-attack baseline of the paper
//! (Appendix A.4).
//!
//! FGA-T&E first runs GNNExplainer on the *clean* graph to see which nodes already
//! participate in the explanation subgraph of the target, then runs FGA-T while
//! excluding those nodes from the candidate endpoints. The intuition is that edges
//! toward nodes the explainer already cares about would be conspicuous; as the
//! paper shows, this heuristic barely helps because the *newly inserted* edges
//! themselves become influential and are still picked up by the explainer.

use std::sync::Arc;

use geattack_explain::{Explainer, GnnExplainer, GnnExplainerConfig};
use geattack_gnn::BatchedForward;
use geattack_graph::Perturbation;

use crate::fga::FgaT;
use crate::{AttackContext, TargetedAttack};

/// Configuration of the FGA-T&E baseline.
#[derive(Clone, Debug)]
pub struct FgaTEConfig {
    /// Explanation size `L`: endpoints of the top-`L` clean-graph explanation edges
    /// are excluded from the candidate set.
    pub explanation_size: usize,
    /// GNNExplainer settings used for the clean-graph explanation.
    pub explainer: GnnExplainerConfig,
}

impl Default for FgaTEConfig {
    fn default() -> Self {
        Self {
            explanation_size: 20,
            explainer: GnnExplainerConfig::default(),
        }
    }
}

/// The FGA-T&E attacker.
#[derive(Clone, Debug, Default)]
pub struct FgaTE {
    /// Attack configuration.
    pub config: FgaTEConfig,
    clean_forward: Option<Arc<BatchedForward>>,
}

impl FgaTE {
    /// Creates an FGA-T&E attacker with the given configuration.
    pub fn new(config: FgaTEConfig) -> Self {
        Self {
            config,
            clean_forward: None,
        }
    }

    /// Attaches a shared clean-graph forward pass. The forward **must** be
    /// `BatchedForward::new(model, graph)` for the exact `(model, graph)` the
    /// attack contexts will carry (FGA-T&E always explains the clean graph);
    /// the per-victim clean prediction is then served from it instead of
    /// re-running a full forward per victim. Results are bit-identical.
    pub fn with_clean_forward(mut self, forward: Arc<BatchedForward>) -> Self {
        self.clean_forward = Some(forward);
        self
    }

    /// Endpoints of the clean-graph explanation's top edges (the exclusion set).
    pub fn excluded_endpoints(&self, ctx: &AttackContext<'_>) -> Vec<usize> {
        let explainer = GnnExplainer::new(self.config.explainer.clone());
        let explanation = match &self.clean_forward {
            Some(f) => {
                explainer.explain_class_with_forward(ctx.model, ctx.graph, ctx.target, f.predicted_class(ctx.target), f)
            }
            None => explainer.explain(ctx.model, ctx.graph, ctx.target),
        };
        let mut nodes: Vec<usize> = explanation
            .top_edges(self.config.explanation_size)
            .into_iter()
            .flat_map(|(u, v)| [u, v])
            .filter(|&n| n != ctx.target)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

impl TargetedAttack for FgaTE {
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation {
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Detail, "attack.fga-te");
        let exclude = self.excluded_endpoints(ctx);
        FgaT::default().attack_excluding(ctx, &exclude)
    }

    fn name(&self) -> &'static str {
        "FGA-T&E"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{pick_victim, small_setup};

    fn quick_config() -> FgaTEConfig {
        FgaTEConfig {
            explanation_size: 10,
            explainer: GnnExplainerConfig {
                epochs: 15,
                ..Default::default()
            },
        }
    }

    #[test]
    fn excluded_endpoints_come_from_explanation() {
        let (graph, model) = small_setup(51);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        let attack = FgaTE::new(quick_config());
        let excluded = attack.excluded_endpoints(&ctx);
        assert!(!excluded.contains(&victim));
        // The target's explanation covers its own neighborhood, so at least one
        // neighbor should be excluded.
        assert!(!excluded.is_empty());
    }

    #[test]
    fn clean_forward_routing_is_bit_identical() {
        let (graph, model) = small_setup(51);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        let attack = FgaTE::new(quick_config());
        let plain = attack.excluded_endpoints(&ctx);
        let routed = attack
            .clone()
            .with_clean_forward(Arc::new(BatchedForward::new(&model, &graph)))
            .excluded_endpoints(&ctx);
        assert_eq!(plain, routed, "shared clean forward changed the exclusion set");
    }

    #[test]
    fn attack_avoids_excluded_endpoints() {
        let (graph, model) = small_setup(52);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 3,
        };
        let attack = FgaTE::new(quick_config());
        let excluded = attack.excluded_endpoints(&ctx);
        let p = attack.attack(&ctx);
        assert!(!p.is_empty());
        for &(u, v) in p.added() {
            let other = if u == victim { v } else { u };
            assert!(!excluded.contains(&other), "attack used an excluded endpoint {other}");
        }
    }

    #[test]
    fn still_increases_target_probability() {
        let (graph, model) = small_setup(53);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext::with_degree_budget(&model, &graph, victim, target_label);
        let p = FgaTE::new(quick_config()).attack(&ctx);
        let attacked = p.apply(&graph);
        let before = model.predict_proba(&graph)[(victim, target_label)];
        let after = model.predict_proba(&attacked)[(victim, target_label)];
        assert!(after > before);
    }
}
