//! # geattack-attack
//!
//! Targeted structure attacks on GCN node classification — the baselines the paper
//! compares GEAttack against (Section 5.1 / Appendix A.4):
//!
//! * [`rna`] — Random attack toward nodes of the target label;
//! * [`fga`] — fast-gradient attack (FGA) and its targeted variant FGA-T;
//! * [`nettack`] — Nettack with the linearized surrogate and the
//!   degree-distribution unnoticeability test;
//! * [`ig`] — IG-Attack based on integrated gradients;
//! * [`fga_te`] — FGA-T&E, which avoids nodes already present in the clean-graph
//!   explanation.
//!
//! All attacks are **direct, addition-only, evasion** attacks: the model is frozen,
//! only edges incident to the target node are inserted, and the budget `Δ` equals
//! the target's degree (configurable). Every attack returns a
//! [`geattack_graph::Perturbation`] so the evaluation pipeline can later ask which
//! edges were adversarial.

use geattack_gnn::Gcn;
use geattack_graph::{Graph, Perturbation};
use geattack_tensor::{grad::grad_full, grad::grad_values, nn, Matrix, SparseMatrix, Tape};

pub mod fga;
pub mod fga_te;
pub mod ig;
pub mod nettack;
pub mod rna;

pub use fga::{Fga, FgaT};
pub use fga_te::{FgaTE, FgaTEConfig};
pub use ig::{IgAttack, IgConfig};
pub use nettack::{Nettack, NettackConfig};
pub use rna::RandomAttack;

/// Everything a targeted structure attack needs to know.
#[derive(Clone, Copy, Debug)]
pub struct AttackContext<'a> {
    /// The (frozen) victim model.
    pub model: &'a Gcn,
    /// The clean graph.
    pub graph: &'a Graph,
    /// The victim node.
    pub target: usize,
    /// The specific incorrect label the attacker wants the model to predict.
    pub target_label: usize,
    /// Maximum number of edge insertions `Δ`.
    pub budget: usize,
}

impl<'a> AttackContext<'a> {
    /// Creates a context with the paper's default budget `Δ = degree(target)`
    /// (at least 1).
    pub fn with_degree_budget(model: &'a Gcn, graph: &'a Graph, target: usize, target_label: usize) -> Self {
        let budget = graph.degree(target).max(1);
        Self {
            model,
            graph,
            target,
            target_label,
            budget,
        }
    }
}

/// A targeted structure attack: produce a set of edge insertions that should make
/// the model predict `target_label` for `target`.
pub trait TargetedAttack {
    /// Runs the attack and returns the chosen perturbation (at most `budget` edges).
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation;

    /// Name used in result tables.
    fn name(&self) -> &'static str;
}

/// Candidate endpoints for a direct attack on `target`: every node that is not the
/// target itself, not already a neighbor, and not excluded.
pub fn candidate_endpoints(graph: &Graph, target: usize, exclude: &[usize]) -> Vec<usize> {
    (0..graph.num_nodes())
        .filter(|&v| v != target && !graph.has_edge(target, v) && !exclude.contains(&v))
        .collect()
}

/// The adjacency gradient a direct attack actually consumes: the target's row
/// `∂L/∂A[target, ·]` and column `∂L/∂A[·, target]`, nothing else.
///
/// Every attack in this crate (and GEAttack's outer loop) only ever reads the
/// gradient at candidate endpoints of one target node, so materializing the full
/// `n×n` gradient is pure waste. The sparse backward produces exactly these `2n`
/// entries through a candidate-masked SDDMM at `O((nnz + n)·f)` instead of the
/// dense `O(n²·f)`.
#[derive(Clone, Debug, PartialEq)]
pub struct TargetGradient {
    target: usize,
    /// `∂L/∂A[target, v]` for every `v`.
    row: Vec<f64>,
    /// `∂L/∂A[v, target]` for every `v`.
    col: Vec<f64>,
}

impl TargetGradient {
    /// The target node this gradient slice belongs to.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.row.len()
    }

    /// Symmetrized score of inserting the undirected edge `(target, v)`:
    /// `∂L/∂A[target, v] + ∂L/∂A[v, target]`.
    pub fn undirected(&self, v: usize) -> f64 {
        self.row[v] + self.col[v]
    }

    /// Extracts the target's row and column from a dense gradient matrix (the
    /// dense-oracle path and tests).
    pub fn from_dense(grad: &Matrix, target: usize) -> Self {
        let n = grad.rows();
        Self {
            target,
            row: grad.row(target).to_vec(),
            col: (0..n).map(|v| grad[(v, target)]).collect(),
        }
    }

    /// Element-wise sum with another slice of the same target (IG accumulation).
    pub fn accumulated(&self, other: &TargetGradient) -> TargetGradient {
        assert_eq!(self.target, other.target, "cannot accumulate different targets");
        assert_eq!(self.row.len(), other.row.len());
        TargetGradient {
            target: self.target,
            row: self.row.iter().zip(&other.row).map(|(a, b)| a + b).collect(),
            col: self.col.iter().zip(&other.col).map(|(a, b)| a + b).collect(),
        }
    }

    /// Every entry multiplied by `s` (IG averaging).
    pub fn scaled(&self, s: f64) -> TargetGradient {
        TargetGradient {
            target: self.target,
            row: self.row.iter().map(|v| v * s).collect(),
            col: self.col.iter().map(|v| v * s).collect(),
        }
    }

    /// `true` if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.row.iter().chain(&self.col).any(|v| !v.is_finite())
    }
}

/// Dense-oracle gradient of a loss `±log f(A, X)^{class}_{target}` with respect
/// to the **full** raw adjacency matrix, with the GCN normalization inside the
/// tape. Kept (always compiled) as the reference the sparse path is tested
/// against; `negate` selects the untargeted `+log p` variant.
pub fn dense_adjacency_gradient(
    model: &Gcn,
    adjacency: &Matrix,
    features: &Matrix,
    target: usize,
    class: usize,
    negate: bool,
) -> Matrix {
    let tape = Tape::new();
    let a = tape.input(adjacency.clone());
    let x = tape.constant(features.clone());
    let params = model.insert_params_frozen(&tape);
    let log_probs = model.log_probs_from_raw_adj(&tape, a, x, &params);
    let nll = nn::node_class_nll(&tape, log_probs, target, class, model.num_classes());
    let loss = if negate { tape.mul_scalar(nll, -1.0) } else { nll };
    grad_values(&tape, loss, &[a]).remove(0)
}

/// Candidate-masked sparse gradient of `±log f(A, X)^{class}_{target}` with
/// respect to the **raw** adjacency, returned as the target's row and column.
///
/// The forward pass runs on the SpMM core over the sparse normalized adjacency
/// `Ã = D^{-1/2}(A + I)D^{-1/2}`; the backward requests `∂L/∂Ã` only at the
/// stored entries plus the target's full row and column (the candidate
/// endpoints), then applies the normalization chain rule in closed form:
///
/// ```text
/// ∂L/∂a_pq = G̃_pq·s_p·s_q − (r_p + c_p) / (2·d_p)
/// r_p = Σ_j G̃_pj·ã_pj ,  c_p = Σ_i G̃_ip·ã_ip ,  s_p = d_p^{-1/2}
/// ```
///
/// where `G̃ = ∂L/∂Ã` and the `r`/`c` sums run over stored entries only (`ã` is
/// zero elsewhere). This accounts exactly for the degree renormalization an edge
/// insertion causes — the same quantity the dense tape computes by
/// differentiating through `gcn_normalize` — at `O((nnz + n)·f)` cost.
pub fn sparse_adjacency_gradient(
    model: &Gcn,
    raw: &SparseMatrix,
    features: &Matrix,
    target: usize,
    class: usize,
    negate: bool,
) -> TargetGradient {
    let xw1 = features.matmul(&model.params().w1);
    sparse_adjacency_gradient_projected(model, raw, &xw1, target, class, negate)
}

/// [`sparse_adjacency_gradient`] with the adjacency-independent feature
/// projection `X·W₁` supplied by the caller — greedy attacks recompute the
/// gradient after every edge insertion, and the projection never changes.
pub fn sparse_adjacency_gradient_projected(
    model: &Gcn,
    raw: &SparseMatrix,
    xw1_value: &Matrix,
    target: usize,
    class: usize,
    negate: bool,
) -> TargetGradient {
    let n = raw.rows();
    let norm = geattack_graph::normalize_sparse(raw);

    // Gradient positions: every stored entry of Ã (row-major, needed by the
    // r/c sums), then the unstored entries of the target's row and column (the
    // candidate endpoints).
    let mut positions = norm.matrix.stored_positions();
    let nnz = positions.len();
    let target_row_stored: Vec<bool> = {
        let mut stored = vec![false; n];
        for &j in norm.matrix.row_indices(target) {
            stored[j] = true;
        }
        stored
    };
    for (v, &stored) in target_row_stored.iter().enumerate() {
        if !stored {
            positions.push((target, v));
            positions.push((v, target));
        }
    }

    let tape = Tape::new();
    let a = tape.sparse_input(norm.matrix.clone(), positions.clone());
    let xw1 = tape.constant(xw1_value.clone());
    let params = model.insert_params_frozen(&tape);
    let log_probs = model.log_probs_sparse_projected(&tape, a, xw1, &params);
    let nll = nn::node_class_nll(&tape, log_probs, target, class, model.num_classes());
    let loss = if negate { tape.mul_scalar(nll, -1.0) } else { nll };
    let (_, mut sparse_grads) = grad_full(&tape, loss, &[], &[a]);
    let gt = sparse_grads.pop().expect("one sparse operand was requested");

    // r_p / c_p over the stored entries (the first `nnz` positions, in the same
    // row-major order the CSR iterates).
    let mut r = vec![0.0; n];
    let mut c = vec![0.0; n];
    let mut idx = 0;
    for (i, r_i) in r.iter_mut().enumerate() {
        for (&j, &v) in norm.matrix.row_indices(i).iter().zip(norm.matrix.row_values(i)) {
            let g = gt[idx];
            idx += 1;
            *r_i += g * v;
            c[j] += g * v;
        }
    }
    debug_assert_eq!(idx, nnz);

    // G̃ on the target's full row and column (stored values from the first
    // block, candidate values from the tail).
    let mut row_gt = vec![0.0; n];
    let mut col_gt = vec![0.0; n];
    for (k, &(i, j)) in positions.iter().enumerate() {
        if i == target {
            row_gt[j] = gt[k];
        }
        if j == target {
            col_gt[i] = gt[k];
        }
    }

    let s = &norm.inv_sqrt;
    let d = &norm.degrees;
    let target_term = (r[target] + c[target]) / (2.0 * d[target]);
    let mut row = vec![0.0; n];
    let mut col = vec![0.0; n];
    for v in 0..n {
        if v == target {
            continue;
        }
        row[v] = row_gt[v] * s[target] * s[v] - target_term;
        col[v] = col_gt[v] * s[v] * s[target] - (r[v] + c[v]) / (2.0 * d[v]);
    }
    TargetGradient { target, row, col }
}

/// Re-usable state for repeated adjacency-gradient calls against one frozen
/// model and one feature matrix.
///
/// A greedy attack recomputes the loss gradient after every edge insertion, but
/// the feature projection `X·W₁` is independent of the adjacency — computing it
/// once here and reusing it removes an `n·d·h` matmul per gradient call.
/// Results are bit-identical to the one-shot [`targeted_loss_gradient`] /
/// [`untargeted_loss_gradient`] helpers, which are themselves thin wrappers
/// around this type.
pub struct LossGradients<'a> {
    model: &'a Gcn,
    features: &'a Matrix,
    xw1: Matrix,
}

impl<'a> LossGradients<'a> {
    /// Prepares the reusable state (one `X·W₁` projection).
    pub fn new(model: &'a Gcn, features: &'a Matrix) -> Self {
        Self {
            model,
            features,
            xw1: features.matmul(&model.params().w1),
        }
    }

    /// Gradient of `±log f(A, X)^{class}_{target}` for an arbitrary weighted raw
    /// adjacency, through the compiled-in compute core (sparse masked-SDDMM by
    /// default, dense under the `dense-oracle` feature).
    pub fn at_raw(&self, raw: &SparseMatrix, target: usize, class: usize, negate: bool) -> TargetGradient {
        #[cfg(feature = "dense-oracle")]
        {
            let _ = &self.xw1;
            let grad = dense_adjacency_gradient(self.model, &raw.to_dense(), self.features, target, class, negate);
            TargetGradient::from_dense(&grad, target)
        }
        #[cfg(not(feature = "dense-oracle"))]
        {
            let _ = self.features;
            sparse_adjacency_gradient_projected(self.model, raw, &self.xw1, target, class, negate)
        }
    }

    /// Targeted attack-loss gradient (Eq. 4) at `graph`'s candidate endpoints.
    pub fn targeted(&self, graph: &Graph, target: usize, target_label: usize) -> TargetGradient {
        self.at_raw(&graph.csr().to_sparse(), target, target_label, false)
    }

    /// Untargeted attack-loss gradient at `graph`'s candidate endpoints.
    pub fn untargeted(&self, graph: &Graph, target: usize) -> TargetGradient {
        self.at_raw(&graph.csr().to_sparse(), target, graph.label(target), true)
    }
}

/// Gradient of the targeted attack loss
/// `L_GNN = -log f(A, X)^{ŷ}_{target}` (Eq. 4) with respect to the raw adjacency
/// matrix at the target's candidate endpoints, evaluated at `graph`.
///
/// Because the loss is to be **minimized** by edge insertions, candidates with the
/// most negative gradient entries are the most attractive. Loops that call this
/// repeatedly for one model should hold a [`LossGradients`] instead.
pub fn targeted_loss_gradient(model: &Gcn, graph: &Graph, target: usize, target_label: usize) -> TargetGradient {
    LossGradients::new(model, graph.features()).targeted(graph, target, target_label)
}

/// Gradient of the *untargeted* attack loss `+log f(A, X)^{y_true}_{target}`
/// (maximizing the cross-entropy of the true label) with respect to the raw
/// adjacency matrix at the target's candidate endpoints. Candidates with the
/// most negative entries are most attractive.
pub fn untargeted_loss_gradient(model: &Gcn, graph: &Graph, target: usize) -> TargetGradient {
    LossGradients::new(model, graph.features()).untargeted(graph, target)
}

/// Combined (symmetrized) gradient score of inserting the undirected edge
/// `(target, v)`: the sum of the two directed entries.
pub fn undirected_entry(grad: &TargetGradient, target: usize, v: usize) -> f64 {
    debug_assert_eq!(target, grad.target(), "gradient slice belongs to a different target");
    grad.undirected(v)
}

/// Picks the candidate with the minimum symmetrized gradient entry (the edge whose
/// insertion most decreases the loss). Returns `None` if `candidates` is empty.
pub fn best_candidate_by_gradient(grad: &TargetGradient, target: usize, candidates: &[usize]) -> Option<usize> {
    candidates.iter().copied().min_by(|&a, &b| {
        undirected_entry(grad, target, a)
            .partial_cmp(&undirected_entry(grad, target, b))
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_gnn::{train, TrainConfig};
    use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
    use geattack_graph::stratified_split;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    pub(crate) fn small_setup(seed: u64) -> (Graph, Gcn) {
        let cfg = GeneratorConfig::at_scale(0.06, seed);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(
            &graph,
            &split,
            &TrainConfig {
                epochs: 80,
                patience: None,
                seed,
                ..Default::default()
            },
        );
        (graph, trained.model)
    }

    /// Picks a victim that the clean model classifies correctly, plus a target
    /// label different from the truth.
    pub(crate) fn pick_victim(graph: &Graph, model: &Gcn) -> (usize, usize) {
        let preds = model.predict_labels(graph);
        let victim = (0..graph.num_nodes())
            .find(|&i| preds[i] == graph.label(i) && graph.degree(i) >= 2)
            .expect("no correctly classified node found");
        let target_label = (graph.label(victim) + 1) % graph.num_classes();
        (victim, target_label)
    }

    #[test]
    fn candidate_endpoints_exclude_neighbors_and_self() {
        let (graph, _) = small_setup(1);
        let target = 0;
        let cands = candidate_endpoints(&graph, target, &[]);
        assert!(!cands.contains(&target));
        for &v in graph.neighbors(target) {
            assert!(!cands.contains(&v));
        }
        let excluded = cands[0];
        let cands2 = candidate_endpoints(&graph, target, &[excluded]);
        assert!(!cands2.contains(&excluded));
        assert_eq!(cands2.len(), cands.len() - 1);
    }

    #[test]
    fn targeted_gradient_identifies_helpful_edges() {
        let (graph, model) = small_setup(2);
        let (victim, target_label) = pick_victim(&graph, &model);
        let grad = targeted_loss_gradient(&model, &graph, victim, target_label);
        let cands = candidate_endpoints(&graph, victim, &[]);
        let best = best_candidate_by_gradient(&grad, victim, &cands).unwrap();
        // The chosen edge must have a negative score (it decreases the targeted loss)...
        assert!(undirected_entry(&grad, victim, best) < 0.0);
        // ...and actually increase the probability of the target label when added.
        let before = model.predict_proba(&graph)[(victim, target_label)];
        let mut attacked = graph.clone();
        attacked.add_edge(victim, best);
        let after = model.predict_proba(&attacked)[(victim, target_label)];
        assert!(
            after > before,
            "best gradient edge did not raise target-label probability ({before} -> {after})"
        );
    }

    #[test]
    fn sparse_gradient_matches_dense_oracle() {
        // The candidate-masked sparse gradient must agree with the full dense
        // tape (which differentiates through gcn_normalize) on every candidate
        // endpoint, for both the targeted and untargeted losses.
        let (graph, model) = small_setup(5);
        let (victim, target_label) = pick_victim(&graph, &model);

        let sparse = targeted_loss_gradient(&model, &graph, victim, target_label);
        let dense = dense_adjacency_gradient(&model, &graph.to_dense(), graph.features(), victim, target_label, false);
        let max_abs = (0..graph.num_nodes())
            .map(|v| dense[(victim, v)].abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        for v in 0..graph.num_nodes() {
            if v == victim {
                continue;
            }
            let expected = dense[(victim, v)] + dense[(v, victim)];
            let got = sparse.undirected(v);
            assert!(
                (got - expected).abs() < 1e-8 * (1.0 + max_abs),
                "targeted gradient mismatch at {v}: {got} vs {expected}"
            );
        }

        let sparse = untargeted_loss_gradient(&model, &graph, victim);
        let dense = dense_adjacency_gradient(
            &model,
            &graph.to_dense(),
            graph.features(),
            victim,
            graph.label(victim),
            true,
        );
        for v in 0..graph.num_nodes() {
            if v == victim {
                continue;
            }
            let expected = dense[(victim, v)] + dense[(v, victim)];
            assert!(
                (sparse.undirected(v) - expected).abs() < 1e-8,
                "untargeted gradient mismatch at {v}"
            );
        }
    }

    #[test]
    fn sparse_gradient_matches_finite_differences() {
        // Directly pin the masked sparse gradient against central differences of
        // the loss under symmetric edge-weight nudges — the same check gcn.rs
        // runs for the dense adjacency gradient.
        let (graph, model) = small_setup(6);
        let (victim, target_label) = pick_victim(&graph, &model);
        let sparse = targeted_loss_gradient(&model, &graph, victim, target_label);

        let loss_at = |adj: &Matrix| -> f64 {
            let tape = Tape::new();
            let a = tape.input(adj.clone());
            let x = tape.constant(graph.features().clone());
            let params = model.insert_params_frozen(&tape);
            let lp = model.log_probs_from_raw_adj(&tape, a, x, &params);
            tape.value(nn::node_class_nll(&tape, lp, victim, target_label, model.num_classes()))
                .scalar()
        };

        let eps = 1e-5;
        let dense_adj = graph.to_dense();
        let candidates: Vec<usize> = candidate_endpoints(&graph, victim, &[]).into_iter().take(4).collect();
        for &v in &candidates {
            // Symmetric nudge: the undirected score is the sum of the two
            // directed entries, matching d/dα L(A + α(e_tv + e_vt)).
            let mut plus = dense_adj.clone();
            plus[(victim, v)] += eps;
            plus[(v, victim)] += eps;
            let mut minus = dense_adj.clone();
            minus[(victim, v)] -= eps;
            minus[(v, victim)] -= eps;
            let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps);
            assert!(
                (sparse.undirected(v) - numeric).abs() < 1e-5,
                "finite-difference mismatch at candidate {v}: {} vs {numeric}",
                sparse.undirected(v)
            );
        }
    }

    #[test]
    fn untargeted_gradient_nonzero_on_candidates() {
        let (graph, model) = small_setup(3);
        let (victim, _) = pick_victim(&graph, &model);
        let grad = untargeted_loss_gradient(&model, &graph, victim);
        let cands = candidate_endpoints(&graph, victim, &[]);
        let any_nonzero = cands.iter().any(|&v| undirected_entry(&grad, victim, v).abs() > 1e-12);
        assert!(any_nonzero, "untargeted gradient is identically zero on candidates");
    }

    #[test]
    fn degree_budget_context() {
        let (graph, model) = small_setup(4);
        let ctx = AttackContext::with_degree_budget(&model, &graph, 0, 1);
        assert_eq!(ctx.budget, graph.degree(0).max(1));
        assert_eq!(ctx.target, 0);
    }
}
