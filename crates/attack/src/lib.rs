//! # geattack-attack
//!
//! Targeted structure attacks on GCN node classification — the baselines the paper
//! compares GEAttack against (Section 5.1 / Appendix A.4):
//!
//! * [`rna`] — Random attack toward nodes of the target label;
//! * [`fga`] — fast-gradient attack (FGA) and its targeted variant FGA-T;
//! * [`nettack`] — Nettack with the linearized surrogate and the
//!   degree-distribution unnoticeability test;
//! * [`ig`] — IG-Attack based on integrated gradients;
//! * [`fga_te`] — FGA-T&E, which avoids nodes already present in the clean-graph
//!   explanation.
//!
//! All attacks are **direct, addition-only, evasion** attacks: the model is frozen,
//! only edges incident to the target node are inserted, and the budget `Δ` equals
//! the target's degree (configurable). Every attack returns a
//! [`geattack_graph::Perturbation`] so the evaluation pipeline can later ask which
//! edges were adversarial.

use geattack_gnn::Gcn;
use geattack_graph::{Graph, Perturbation};
use geattack_tensor::{grad::grad_values, nn, Matrix, Tape};

pub mod fga;
pub mod fga_te;
pub mod ig;
pub mod nettack;
pub mod rna;

pub use fga::{Fga, FgaT};
pub use fga_te::{FgaTE, FgaTEConfig};
pub use ig::{IgAttack, IgConfig};
pub use nettack::{Nettack, NettackConfig};
pub use rna::RandomAttack;

/// Everything a targeted structure attack needs to know.
#[derive(Clone, Copy, Debug)]
pub struct AttackContext<'a> {
    /// The (frozen) victim model.
    pub model: &'a Gcn,
    /// The clean graph.
    pub graph: &'a Graph,
    /// The victim node.
    pub target: usize,
    /// The specific incorrect label the attacker wants the model to predict.
    pub target_label: usize,
    /// Maximum number of edge insertions `Δ`.
    pub budget: usize,
}

impl<'a> AttackContext<'a> {
    /// Creates a context with the paper's default budget `Δ = degree(target)`
    /// (at least 1).
    pub fn with_degree_budget(model: &'a Gcn, graph: &'a Graph, target: usize, target_label: usize) -> Self {
        let budget = graph.degree(target).max(1);
        Self {
            model,
            graph,
            target,
            target_label,
            budget,
        }
    }
}

/// A targeted structure attack: produce a set of edge insertions that should make
/// the model predict `target_label` for `target`.
pub trait TargetedAttack {
    /// Runs the attack and returns the chosen perturbation (at most `budget` edges).
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation;

    /// Name used in result tables.
    fn name(&self) -> &'static str;
}

/// Candidate endpoints for a direct attack on `target`: every node that is not the
/// target itself, not already a neighbor, and not excluded.
pub fn candidate_endpoints(graph: &Graph, target: usize, exclude: &[usize]) -> Vec<usize> {
    (0..graph.num_nodes())
        .filter(|&v| v != target && !graph.has_edge(target, v) && !exclude.contains(&v))
        .collect()
}

/// Gradient of the targeted attack loss
/// `L_GNN = -log f(A, X)^{ŷ}_{target}` (Eq. 4) with respect to the raw adjacency
/// matrix, evaluated at `graph`.
///
/// Because the loss is to be **minimized** by edge insertions, candidates with the
/// most negative gradient entries are the most attractive.
pub fn targeted_loss_gradient(model: &Gcn, graph: &Graph, target: usize, target_label: usize) -> Matrix {
    let tape = Tape::new();
    let a = tape.input(graph.adjacency().clone());
    let x = tape.constant(graph.features().clone());
    let params = model.insert_params_frozen(&tape);
    let log_probs = model.log_probs_from_raw_adj(&tape, a, x, &params);
    let loss = nn::node_class_nll(&tape, log_probs, target, target_label, model.num_classes());
    grad_values(&tape, loss, &[a]).remove(0)
}

/// Gradient of the *untargeted* attack loss `+log f(A, X)^{y_true}_{target}`
/// (maximizing the cross-entropy of the true label) with respect to the raw
/// adjacency matrix. Candidates with the most negative entries are most attractive.
pub fn untargeted_loss_gradient(model: &Gcn, graph: &Graph, target: usize) -> Matrix {
    let true_label = graph.label(target);
    let tape = Tape::new();
    let a = tape.input(graph.adjacency().clone());
    let x = tape.constant(graph.features().clone());
    let params = model.insert_params_frozen(&tape);
    let log_probs = model.log_probs_from_raw_adj(&tape, a, x, &params);
    // +log p(y_true): decreasing this is what the attacker wants.
    let nll = nn::node_class_nll(&tape, log_probs, target, true_label, model.num_classes());
    let loss = tape.mul_scalar(nll, -1.0);
    grad_values(&tape, loss, &[a]).remove(0)
}

/// Combined (symmetrized) gradient score of inserting the undirected edge
/// `(target, v)`: the sum of the two directed entries.
pub fn undirected_entry(grad: &Matrix, target: usize, v: usize) -> f64 {
    grad[(target, v)] + grad[(v, target)]
}

/// Picks the candidate with the minimum symmetrized gradient entry (the edge whose
/// insertion most decreases the loss). Returns `None` if `candidates` is empty.
pub fn best_candidate_by_gradient(grad: &Matrix, target: usize, candidates: &[usize]) -> Option<usize> {
    candidates.iter().copied().min_by(|&a, &b| {
        undirected_entry(grad, target, a)
            .partial_cmp(&undirected_entry(grad, target, b))
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geattack_gnn::{train, TrainConfig};
    use geattack_graph::datasets::{load, DatasetName, GeneratorConfig};
    use geattack_graph::stratified_split;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    pub(crate) fn small_setup(seed: u64) -> (Graph, Gcn) {
        let cfg = GeneratorConfig::at_scale(0.06, seed);
        let graph = load(DatasetName::Cora, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let split = stratified_split(graph.labels(), graph.num_classes(), 0.1, 0.1, &mut rng);
        let trained = train(
            &graph,
            &split,
            &TrainConfig {
                epochs: 80,
                patience: None,
                seed,
                ..Default::default()
            },
        );
        (graph, trained.model)
    }

    /// Picks a victim that the clean model classifies correctly, plus a target
    /// label different from the truth.
    pub(crate) fn pick_victim(graph: &Graph, model: &Gcn) -> (usize, usize) {
        let preds = model.predict_labels(graph);
        let victim = (0..graph.num_nodes())
            .find(|&i| preds[i] == graph.label(i) && graph.degree(i) >= 2)
            .expect("no correctly classified node found");
        let target_label = (graph.label(victim) + 1) % graph.num_classes();
        (victim, target_label)
    }

    #[test]
    fn candidate_endpoints_exclude_neighbors_and_self() {
        let (graph, _) = small_setup(1);
        let target = 0;
        let cands = candidate_endpoints(&graph, target, &[]);
        assert!(!cands.contains(&target));
        for v in graph.neighbors(target) {
            assert!(!cands.contains(&v));
        }
        let excluded = cands[0];
        let cands2 = candidate_endpoints(&graph, target, &[excluded]);
        assert!(!cands2.contains(&excluded));
        assert_eq!(cands2.len(), cands.len() - 1);
    }

    #[test]
    fn targeted_gradient_identifies_helpful_edges() {
        let (graph, model) = small_setup(2);
        let (victim, target_label) = pick_victim(&graph, &model);
        let grad = targeted_loss_gradient(&model, &graph, victim, target_label);
        let cands = candidate_endpoints(&graph, victim, &[]);
        let best = best_candidate_by_gradient(&grad, victim, &cands).unwrap();
        // The chosen edge must have a negative score (it decreases the targeted loss)...
        assert!(undirected_entry(&grad, victim, best) < 0.0);
        // ...and actually increase the probability of the target label when added.
        let before = model.predict_proba(&graph)[(victim, target_label)];
        let mut attacked = graph.clone();
        attacked.add_edge(victim, best);
        let after = model.predict_proba(&attacked)[(victim, target_label)];
        assert!(
            after > before,
            "best gradient edge did not raise target-label probability ({before} -> {after})"
        );
    }

    #[test]
    fn untargeted_gradient_nonzero_on_candidates() {
        let (graph, model) = small_setup(3);
        let (victim, _) = pick_victim(&graph, &model);
        let grad = untargeted_loss_gradient(&model, &graph, victim);
        let cands = candidate_endpoints(&graph, victim, &[]);
        let any_nonzero = cands.iter().any(|&v| undirected_entry(&grad, victim, v).abs() > 1e-12);
        assert!(any_nonzero, "untargeted gradient is identically zero on candidates");
    }

    #[test]
    fn degree_budget_context() {
        let (graph, model) = small_setup(4);
        let ctx = AttackContext::with_degree_budget(&model, &graph, 0, 1);
        assert_eq!(ctx.budget, graph.degree(0).max(1));
        assert_eq!(ctx.target, 0);
    }
}
