//! IG-Attack (Wu et al., IJCAI 2019): candidate edges scored with integrated
//! gradients instead of a single gradient snapshot.
//!
//! Vanilla gradients can be misleading for discrete 0→1 flips because the GCN's
//! response saturates. Integrated gradients average the gradient along the path
//! from the clean adjacency to the adjacency with the candidate edges switched on:
//! `IG_{tv} = (1/m) Σ_{k=1..m} ∂L/∂A_{tv} |_{A + (k/m)·E_cand}` where `E_cand`
//! switches on the target's candidate edges. Scoring all candidates from the same
//! `m` interpolation points keeps the cost at `m` backward passes per inserted edge
//! (the row-restricted variant of the original attack; see `DESIGN.md`).

use geattack_graph::{Graph, Perturbation};
use geattack_tensor::{grad::grad_values, nn, Matrix, Tape};

use crate::{candidate_endpoints, undirected_entry, AttackContext, TargetedAttack};

/// Configuration of IG-Attack.
#[derive(Clone, Debug)]
pub struct IgConfig {
    /// Number of interpolation steps for the integral approximation.
    pub steps: usize,
}

impl Default for IgConfig {
    fn default() -> Self {
        Self { steps: 10 }
    }
}

/// The integrated-gradients attacker.
#[derive(Clone, Debug, Default)]
pub struct IgAttack {
    /// Attack configuration.
    pub config: IgConfig,
}

impl IgAttack {
    /// Creates an IG attacker with the given configuration.
    pub fn new(config: IgConfig) -> Self {
        Self { config }
    }

    /// Integrated gradients of the targeted loss with respect to the adjacency
    /// matrix, along the path that switches the candidate edges `(target, v)` on.
    pub fn integrated_gradients(&self, ctx: &AttackContext<'_>, graph: &Graph, candidates: &[usize]) -> Matrix {
        let n = graph.num_nodes();
        let mut accumulated = Matrix::zeros(n, n);
        let steps = self.config.steps.max(1);
        for k in 1..=steps {
            let alpha = k as f64 / steps as f64;
            let mut interpolated = graph.adjacency().clone();
            for &v in candidates {
                interpolated[(ctx.target, v)] = alpha;
                interpolated[(v, ctx.target)] = alpha;
            }
            let tape = Tape::new();
            let a = tape.input(interpolated);
            let x = tape.constant(graph.features().clone());
            let params = ctx.model.insert_params_frozen(&tape);
            let log_probs = ctx.model.log_probs_from_raw_adj(&tape, a, x, &params);
            let loss = nn::node_class_nll(&tape, log_probs, ctx.target, ctx.target_label, ctx.model.num_classes());
            let grad = grad_values(&tape, loss, &[a]).remove(0);
            accumulated.add_assign(&grad);
        }
        accumulated.scale(1.0 / steps as f64)
    }
}

impl TargetedAttack for IgAttack {
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation {
        let mut perturbation = Perturbation::new();
        let mut working = ctx.graph.clone();

        for _ in 0..ctx.budget {
            let candidates = candidate_endpoints(&working, ctx.target, &[]);
            if candidates.is_empty() {
                break;
            }
            let ig = self.integrated_gradients(ctx, &working, &candidates);
            let best = candidates
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    undirected_entry(&ig, ctx.target, a)
                        .partial_cmp(&undirected_entry(&ig, ctx.target, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("candidates is non-empty");
            perturbation.add_edge(ctx.target, best);
            working.add_edge(ctx.target, best);
        }
        perturbation
    }

    fn name(&self) -> &'static str {
        "IG-Attack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fga::FgaT;
    use crate::tests::{pick_victim, small_setup};

    #[test]
    fn ig_attack_increases_target_probability() {
        let (graph, model) = small_setup(41);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext::with_degree_budget(&model, &graph, victim, target_label);
        let attack = IgAttack::new(IgConfig { steps: 5 });
        let p = attack.attack(&ctx);
        assert!(!p.is_empty());
        let attacked = p.apply(&graph);
        let before = model.predict_proba(&graph)[(victim, target_label)];
        let after = model.predict_proba(&attacked)[(victim, target_label)];
        assert!(after > before, "IG-Attack failed to raise target-label probability");
    }

    #[test]
    fn single_step_ig_agrees_with_endpoint_gradient_direction() {
        // With m=1 the integrated gradient is just the gradient at the far end of
        // the path; the edge it selects should still be a loss-decreasing edge.
        let (graph, model) = small_setup(42);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 1,
        };
        let attack = IgAttack::new(IgConfig { steps: 1 });
        let candidates = candidate_endpoints(&graph, victim, &[]);
        let ig = attack.integrated_gradients(&ctx, &graph, &candidates);
        let chosen = attack.attack(&ctx);
        let &(u, v) = &chosen.added()[0];
        let other = if u == victim { v } else { u };
        assert!(
            undirected_entry(&ig, victim, other) <= 0.0,
            "selected edge must have non-positive IG score"
        );
    }

    #[test]
    fn ig_and_fga_t_are_both_direct_attacks() {
        let (graph, model) = small_setup(43);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        for p in [IgAttack::default().attack(&ctx), FgaT::default().attack(&ctx)] {
            for &(u, v) in p.added() {
                assert!(u == victim || v == victim);
            }
            assert!(p.size() <= 2);
        }
    }

    #[test]
    fn more_steps_changes_but_does_not_break_scores() {
        let (graph, model) = small_setup(44);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 1,
        };
        let candidates = candidate_endpoints(&graph, victim, &[]);
        let coarse = IgAttack::new(IgConfig { steps: 2 }).integrated_gradients(&ctx, &graph, &candidates);
        let fine = IgAttack::new(IgConfig { steps: 8 }).integrated_gradients(&ctx, &graph, &candidates);
        assert_eq!(coarse.shape(), fine.shape());
        assert!(!coarse.has_non_finite());
        assert!(!fine.has_non_finite());
    }
}
