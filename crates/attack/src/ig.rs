//! IG-Attack (Wu et al., IJCAI 2019): candidate edges scored with integrated
//! gradients instead of a single gradient snapshot.
//!
//! Vanilla gradients can be misleading for discrete 0→1 flips because the GCN's
//! response saturates. Integrated gradients average the gradient along the path
//! from the clean adjacency to the adjacency with the candidate edges switched on:
//! `IG_{tv} = (1/m) Σ_{k=1..m} ∂L/∂A_{tv} |_{A + (k/m)·E_cand}` where `E_cand`
//! switches on the target's candidate edges. Scoring all candidates from the same
//! `m` interpolation points keeps the cost at `m` backward passes per inserted edge
//! (the row-restricted variant of the original attack; see `DESIGN.md`).

use geattack_graph::{Graph, Perturbation};
use geattack_tensor::SparseMatrix;

use crate::{candidate_endpoints, undirected_entry, AttackContext, LossGradients, TargetGradient, TargetedAttack};

/// Configuration of IG-Attack.
#[derive(Clone, Debug)]
pub struct IgConfig {
    /// Number of interpolation steps for the integral approximation.
    pub steps: usize,
}

impl Default for IgConfig {
    fn default() -> Self {
        Self { steps: 10 }
    }
}

/// The integrated-gradients attacker.
#[derive(Clone, Debug, Default)]
pub struct IgAttack {
    /// Attack configuration.
    pub config: IgConfig,
}

impl IgAttack {
    /// Creates an IG attacker with the given configuration.
    pub fn new(config: IgConfig) -> Self {
        Self { config }
    }

    /// Integrated gradients of the targeted loss with respect to the adjacency
    /// matrix, along the path that switches the candidate edges `(target, v)` on.
    ///
    /// Each interpolation point is a **weighted** sparse adjacency (the clean
    /// edges at `1.0` plus the candidate entries at `α`), so every one of the `m`
    /// backward passes runs through the candidate-masked sparse gradient instead
    /// of a dense `n×n` tape.
    pub fn integrated_gradients(&self, ctx: &AttackContext<'_>, graph: &Graph, candidates: &[usize]) -> TargetGradient {
        let gradients = LossGradients::new(ctx.model, graph.features());
        self.integrated_gradients_with(&gradients, ctx, graph, candidates)
    }

    fn integrated_gradients_with(
        &self,
        gradients: &LossGradients<'_>,
        ctx: &AttackContext<'_>,
        graph: &Graph,
        candidates: &[usize],
    ) -> TargetGradient {
        let n = graph.num_nodes();
        let steps = self.config.steps.max(1);
        let mut candidate_mask = vec![false; n];
        for &v in candidates {
            candidate_mask[v] = true;
        }
        let base = graph.csr();

        let mut accumulated: Option<TargetGradient> = None;
        for k in 1..=steps {
            let alpha = k as f64 / steps as f64;
            // Clean rows keep weight 1.0; the candidate entries (target, v) and
            // (v, target) are switched on at weight α (candidates are
            // non-neighbors, so insertion never collides with an edge).
            let rows: Vec<Vec<(usize, f64)>> = (0..n)
                .map(|i| {
                    let neighbors = base.neighbors(i);
                    let mut row: Vec<(usize, f64)> = Vec::with_capacity(neighbors.len() + 1);
                    if i == ctx.target {
                        let mut cursor = 0usize;
                        for (j, &is_candidate) in candidate_mask.iter().enumerate() {
                            if cursor < neighbors.len() && neighbors[cursor] == j {
                                row.push((j, 1.0));
                                cursor += 1;
                            } else if is_candidate {
                                row.push((j, alpha));
                            }
                        }
                    } else {
                        let mut inserted = !candidate_mask[i];
                        for &j in neighbors {
                            if !inserted && j >= ctx.target {
                                if j != ctx.target {
                                    row.push((ctx.target, alpha));
                                }
                                inserted = true;
                            }
                            row.push((j, 1.0));
                        }
                        if !inserted {
                            row.push((ctx.target, alpha));
                        }
                    }
                    row
                })
                .collect();
            let interpolated = SparseMatrix::from_rows(n, n, &rows);
            let grad = gradients.at_raw(&interpolated, ctx.target, ctx.target_label, false);
            accumulated = Some(match accumulated {
                None => grad,
                Some(acc) => acc.accumulated(&grad),
            });
        }
        accumulated.expect("at least one step").scaled(1.0 / steps as f64)
    }
}

impl TargetedAttack for IgAttack {
    fn attack(&self, ctx: &AttackContext<'_>) -> Perturbation {
        let _span = geattack_telemetry::span(geattack_telemetry::Level::Detail, "attack.ig");
        let mut perturbation = Perturbation::new();
        let mut working = ctx.graph.clone();
        let gradients = LossGradients::new(ctx.model, ctx.graph.features());

        for _ in 0..ctx.budget {
            let candidates = candidate_endpoints(&working, ctx.target, &[]);
            if candidates.is_empty() {
                break;
            }
            let ig = self.integrated_gradients_with(&gradients, ctx, &working, &candidates);
            let best = candidates
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    undirected_entry(&ig, ctx.target, a)
                        .partial_cmp(&undirected_entry(&ig, ctx.target, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("candidates is non-empty");
            perturbation.add_edge(ctx.target, best);
            working.add_edge(ctx.target, best);
        }
        perturbation
    }

    fn name(&self) -> &'static str {
        "IG-Attack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fga::FgaT;
    use crate::tests::{pick_victim, small_setup};

    #[test]
    fn ig_attack_increases_target_probability() {
        let (graph, model) = small_setup(41);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext::with_degree_budget(&model, &graph, victim, target_label);
        let attack = IgAttack::new(IgConfig { steps: 5 });
        let p = attack.attack(&ctx);
        assert!(!p.is_empty());
        let attacked = p.apply(&graph);
        let before = model.predict_proba(&graph)[(victim, target_label)];
        let after = model.predict_proba(&attacked)[(victim, target_label)];
        assert!(after > before, "IG-Attack failed to raise target-label probability");
    }

    #[test]
    fn single_step_ig_agrees_with_endpoint_gradient_direction() {
        // With m=1 the integrated gradient is just the gradient at the far end of
        // the path; the edge it selects should still be a loss-decreasing edge.
        let (graph, model) = small_setup(42);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 1,
        };
        let attack = IgAttack::new(IgConfig { steps: 1 });
        let candidates = candidate_endpoints(&graph, victim, &[]);
        let ig = attack.integrated_gradients(&ctx, &graph, &candidates);
        let chosen = attack.attack(&ctx);
        let &(u, v) = &chosen.added()[0];
        let other = if u == victim { v } else { u };
        assert!(
            undirected_entry(&ig, victim, other) <= 0.0,
            "selected edge must have non-positive IG score"
        );
    }

    #[test]
    fn ig_and_fga_t_are_both_direct_attacks() {
        let (graph, model) = small_setup(43);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 2,
        };
        for p in [IgAttack::default().attack(&ctx), FgaT::default().attack(&ctx)] {
            for &(u, v) in p.added() {
                assert!(u == victim || v == victim);
            }
            assert!(p.size() <= 2);
        }
    }

    #[test]
    fn more_steps_changes_but_does_not_break_scores() {
        let (graph, model) = small_setup(44);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 1,
        };
        let candidates = candidate_endpoints(&graph, victim, &[]);
        let coarse = IgAttack::new(IgConfig { steps: 2 }).integrated_gradients(&ctx, &graph, &candidates);
        let fine = IgAttack::new(IgConfig { steps: 8 }).integrated_gradients(&ctx, &graph, &candidates);
        assert_eq!(coarse.num_nodes(), fine.num_nodes());
        assert!(!coarse.has_non_finite());
        assert!(!fine.has_non_finite());
    }

    #[test]
    fn sparse_interpolation_matches_dense_interpolation() {
        // One IG step's interpolated adjacency gradient through the sparse core
        // must match the dense tape on the same weighted matrix.
        let (graph, model) = small_setup(45);
        let (victim, target_label) = pick_victim(&graph, &model);
        let ctx = AttackContext {
            model: &model,
            graph: &graph,
            target: victim,
            target_label,
            budget: 1,
        };
        let candidates: Vec<usize> = candidate_endpoints(&graph, victim, &[]).into_iter().take(6).collect();
        let sparse = IgAttack::new(IgConfig { steps: 1 }).integrated_gradients(&ctx, &graph, &candidates);

        // Dense oracle: α = 1 interpolation point.
        let mut interpolated = graph.to_dense();
        for &v in &candidates {
            interpolated[(victim, v)] = 1.0;
            interpolated[(v, victim)] = 1.0;
        }
        let dense =
            crate::dense_adjacency_gradient(&model, &interpolated, graph.features(), victim, target_label, false);
        for v in 0..graph.num_nodes() {
            if v == victim {
                continue;
            }
            let expected = dense[(victim, v)] + dense[(v, victim)];
            assert!(
                (sparse.undirected(v) - expected).abs() < 1e-8,
                "IG sparse/dense mismatch at candidate {v}: {} vs {expected}",
                sparse.undirected(v)
            );
        }
    }
}
